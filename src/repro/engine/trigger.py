"""Trigger runtimes: the in-memory form cached by the trigger cache.

A runtime bundles everything §5.1 says a cached trigger description holds —
the syntax tree (parsed statement), references to its data sources, and the
A-TREAT network skeleton — plus the per-tuple-variable event codes and the
group-by/having state for aggregate conditions.

Building a runtime performs §5.1 steps 1–4 (parse/validate, CNF + conjunct
grouping, condition graph, network); step 5 (signature registration and
constant-table updates) happens in :mod:`repro.engine.triggerman` because it
touches the shared predicate index and catalogs.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..condition.classify import (
    ConditionGraph,
    build_condition_graph,
    resolve_unqualified,
)
from ..condition.signature import (
    AnalyzedPredicate,
    DecomposedArm,
    analyze_selection,
    decompose_selection,
    generalize,
    instantiate,
)
from ..condition.windows import (
    WindowSpec,
    compile_incremental_having,
    window_spec_from_flags,
)
from ..errors import TriggerError
from ..lang import ast
from ..lang.evaluator import Bindings, Evaluator
from ..network.treat import ATreatNetwork
from ..predindex.index import INSERT_OR_UPDATE, make_operation_code
from .datasource import DataSourceRegistry


@dataclass
class TriggerRuntime:
    """One trigger, ready to run."""

    trigger_id: int
    name: str
    set_name: str
    statement: ast.CreateTriggerStatement
    text: str
    #: tuple variable -> data source name
    tvar_sources: Dict[str, str]
    #: tuple variable -> (operation base, update columns) event condition
    tvar_events: Dict[str, Tuple[str, Tuple[str, ...]]]
    graph: ConditionGraph
    network: ATreatNetwork
    action: ast.Action
    group_by: Tuple[ast.ColumnRef, ...]
    having: Optional[ast.Expr]
    #: bound on per-group aggregate state (the ``window N`` flag); None
    #: accumulates forever
    window: Optional[int] = None
    #: temporal window (the ``window N seconds [of col]`` flag); None for
    #: non-temporal triggers.  State lives in the engine's WindowStateStore
    #: (WAL-checkpointed), not on the runtime.
    window_spec: Optional[WindowSpec] = None
    #: compiled incremental having plan (None -> general evaluator fallback)
    window_plan: Optional[object] = field(default=None, repr=False, compare=False)
    #: columns whose running sums the incremental plan reads
    window_tracked: Tuple[str, ...] = ()
    #: group key -> accumulated bindings (aggregate trigger state)
    group_state: Dict[Tuple, List[Bindings]] = field(default_factory=dict)
    fire_count: int = 0
    #: serializes network activation and aggregate-state mutation: tokens
    #: for *different* triggers process in parallel, two tokens for the
    #: *same* trigger take turns (its memories are stateful)
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def tvars(self) -> Tuple[str, ...]:
        return self.graph.tvars

    def operation_code(self, tvar: str) -> str:
        base, columns = self.tvar_events[tvar]
        return make_operation_code(base, columns)

    def estimated_size(self) -> int:
        """Resident bytes of this description, deep-measured once and
        cached — the real quantity the cache's byte budget enforces (the
        paper's sizing example assumes ~4 KB per description).  Growth of
        mutable aggregate state after measurement is not re-counted."""
        cached = self.__dict__.get("_resident_bytes")
        if cached is None:
            cached = runtime_size_bytes(self)
            self.__dict__["_resident_bytes"] = cached
        return cached

    # -- aggregate (group by / having) handling ---------------------------------

    def aggregate_fire(
        self, bindings: Bindings, evaluator: Evaluator
    ) -> Optional[Bindings]:
        """Feed one complete match into the group state; returns bindings to
        fire with when the having condition holds for the group."""
        key = tuple(
            evaluator.evaluate(column, bindings) for column in self.group_by
        )
        group = self.group_state.setdefault(key, [])
        group.append(bindings)
        if self.window is not None and len(group) > self.window:
            del group[: len(group) - self.window]
        if self.having is None:
            return bindings
        result = evaluator.evaluate_aggregate(self.having, group, bindings)
        return bindings if result is True else None

    # -- temporal (sliding time-window) handling ---------------------------------

    def window_fire(
        self, bindings: Bindings, evaluator: Evaluator, windows, seq: int
    ) -> Optional[Bindings]:
        """Feed one complete match into the engine's window-state store;
        returns bindings to fire with when the threshold holds over the
        last ``window_spec.seconds`` of event time for this group."""
        spec = self.window_spec
        tvar = self.tvars[0]
        row = bindings.rows.get(tvar)
        ts = None if row is None else row.get(spec.ts_column)
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            windows.bad_timestamp()
            return None
        key = tuple(
            evaluator.evaluate(column, bindings) for column in self.group_by
        )
        window = windows.observe(
            self.name, key, float(ts), dict(row), seq,
            spec.seconds, self.window_tracked,
        )
        if self.window_plan is not None:
            result = self.window_plan(window.aggs)
        else:
            group = [
                Bindings(rows={tvar: entry_row})
                for _ts, _seq, entry_row in window.entries
            ]
            result = evaluator.evaluate_aggregate(self.having, group, bindings)
        return bindings if result is True else None


def _resolve_event(
    statement: ast.CreateTriggerStatement,
    tvar_sources: Dict[str, str],
) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
    """Assign each tuple variable its event condition.

    The ``on`` clause names at most one tuple variable (§4); every other
    tuple variable gets the implicit ``insert or update`` event (§5).
    """
    events: Dict[str, Tuple[str, Tuple[str, ...]]] = {
        tvar: (INSERT_OR_UPDATE, ()) for tvar in tvar_sources
    }
    event = statement.event
    if event is None:
        return events
    target: Optional[str] = None
    if event.source is not None:
        if event.source in tvar_sources:
            target = event.source
        else:
            owners = [
                tvar
                for tvar, source in tvar_sources.items()
                if source == event.source
            ]
            if len(owners) > 1:
                raise TriggerError(
                    f"event target {event.source!r} is ambiguous; use the "
                    "tuple variable"
                )
            if owners:
                target = owners[0]
        if target is None:
            raise TriggerError(
                f"event target {event.source!r} is not in the from list"
            )
    elif len(tvar_sources) == 1:
        target = next(iter(tvar_sources))
    else:
        raise TriggerError(
            "a multi-source trigger's ON clause must name its target"
        )
    events[target] = (event.operation, tuple(event.columns))
    return events


def _validate_event_columns(
    events: Dict[str, Tuple[str, Tuple[str, ...]]],
    tvar_sources: Dict[str, str],
    registry: DataSourceRegistry,
) -> None:
    for tvar, (base, columns) in events.items():
        if not columns:
            continue
        if base != "update":
            raise TriggerError(
                f"column list is only valid with UPDATE events, not {base!r}"
            )
        source = registry.get(tvar_sources[tvar])
        for column in columns:
            if not source.has_column(column):
                raise TriggerError(
                    f"data source {source.name!r} has no column {column!r}"
                )


@dataclass
class TriggerAnalysis:
    """§5.1 steps 1–3 output: validated statement, resolved condition, and
    condition graph — everything about a trigger that does *not* require a
    discrimination network.  The lazy creation path stops here: predicates
    install from the analysis, and the network is built on first pin."""

    statement: ast.CreateTriggerStatement
    text: str
    set_name: str
    tvar_sources: Dict[str, str]
    tvar_events: Dict[str, Tuple[str, Tuple[str, ...]]]
    graph: ConditionGraph
    having: Optional[ast.Expr]
    group_by: Tuple[ast.ColumnRef, ...]
    window: Optional[int]
    window_spec: Optional[WindowSpec]
    window_plan: Optional[object]
    window_tracked: Tuple[str, ...]

    @property
    def tvars(self) -> Tuple[str, ...]:
        return self.graph.tvars

    def operation_code(self, tvar: str) -> str:
        base, columns = self.tvar_events[tvar]
        return make_operation_code(base, columns)


def analyze_statement(
    statement: ast.CreateTriggerStatement,
    text: str,
    registry: DataSourceRegistry,
    set_name: str = "default",
) -> TriggerAnalysis:
    """§5.1 steps 1–3: validate, resolve, and graph the condition (no
    network is built — that is the expensive, lazily deferrable part)."""
    if not statement.from_list:
        raise TriggerError("a trigger needs at least one data source")
    tvar_sources: Dict[str, str] = {}
    for item in statement.from_list:
        if item.tvar in tvar_sources:
            raise TriggerError(f"duplicate tuple variable {item.tvar!r}")
        registry.get(item.source)  # raises for unknown sources
        tvar_sources[item.tvar] = item.source

    tvar_columns = {
        tvar: registry.get(source).columns
        for tvar, source in tvar_sources.items()
    }
    when = statement.when
    if when is not None:
        when = resolve_unqualified(when, tvar_columns)
    having = statement.having
    group_by = statement.group_by
    if group_by and not having:
        raise TriggerError("GROUP BY requires a HAVING condition")
    if having is not None:
        having = resolve_unqualified(having, tvar_columns)
    if group_by:
        group_by = tuple(
            resolve_unqualified(column, tvar_columns) for column in group_by
        )

    events = _resolve_event(statement, tvar_sources)
    _validate_event_columns(events, tvar_sources, registry)

    graph = build_condition_graph(list(tvar_sources), when)

    window: Optional[int] = None
    for flag in statement.flags:
        if flag.startswith("WINDOW:"):
            window = int(flag.split(":", 1)[1])
            if window <= 0:
                raise TriggerError("window size must be positive")

    window_spec = window_spec_from_flags(statement.flags)
    window_plan = None
    window_tracked: Tuple[str, ...] = ()
    if window_spec is not None:
        if window is not None:
            raise TriggerError(
                "a trigger cannot combine a count window and a time window"
            )
        if having is None:
            raise TriggerError(
                "a temporal window trigger needs a HAVING threshold"
            )
        if len(tvar_sources) > 1:
            raise TriggerError(
                "temporal window triggers take a single tuple variable"
            )
        only_source = registry.get(next(iter(tvar_sources.values())))
        if not only_source.has_column(window_spec.ts_column):
            raise TriggerError(
                f"data source {only_source.name!r} has no timestamp "
                f"column {window_spec.ts_column!r}"
            )
        window_plan, window_tracked = compile_incremental_having(having)

    return TriggerAnalysis(
        statement=statement,
        text=text,
        set_name=set_name,
        tvar_sources=tvar_sources,
        tvar_events=events,
        graph=graph,
        having=having,
        group_by=tuple(group_by),
        window=window,
        window_spec=window_spec,
        window_plan=window_plan,
        window_tracked=window_tracked,
    )


def build_runtime_from_analysis(
    trigger_id: int,
    analysis: TriggerAnalysis,
    registry: DataSourceRegistry,
    evaluator: Optional[Evaluator] = None,
    use_virtual_alpha: bool = True,
    network_type: str = "atreat",
) -> TriggerRuntime:
    """§5.1 step 4: build the discrimination network over a finished
    analysis and assemble the runtime.

    ``network_type`` selects the discrimination network: ``"atreat"`` (the
    paper's current implementation; virtual alpha memories over table
    sources) or ``"gator"`` (the planned optimization; materialized alpha
    and beta memories, primed from table sources at build time).
    """
    evaluator = evaluator or Evaluator()
    graph = analysis.graph
    tvar_sources = analysis.tvar_sources
    if network_type == "gator":
        network = _build_gator(
            trigger_id, graph, evaluator, tvar_sources, registry
        )
    elif network_type == "atreat":
        fetchers = {}
        if use_virtual_alpha and len(tvar_sources) > 1:
            for tvar, source_name in tvar_sources.items():
                fetch = registry.get(source_name).fetcher()
                if fetch is not None:
                    fetchers[tvar] = fetch
        network = ATreatNetwork(trigger_id, graph, evaluator, fetchers)
    else:
        raise TriggerError(f"unknown network type {network_type!r}")

    return TriggerRuntime(
        trigger_id=trigger_id,
        name=analysis.statement.name,
        set_name=analysis.set_name,
        statement=analysis.statement,
        text=analysis.text,
        tvar_sources=tvar_sources,
        tvar_events=analysis.tvar_events,
        graph=graph,
        network=network,
        action=analysis.statement.action,
        group_by=analysis.group_by,
        having=analysis.having,
        window=analysis.window,
        window_spec=analysis.window_spec,
        window_plan=analysis.window_plan,
        window_tracked=analysis.window_tracked,
    )


def build_runtime(
    trigger_id: int,
    statement: ast.CreateTriggerStatement,
    text: str,
    registry: DataSourceRegistry,
    evaluator: Optional[Evaluator] = None,
    set_name: str = "default",
    use_virtual_alpha: bool = True,
    network_type: str = "atreat",
) -> TriggerRuntime:
    """§5.1 steps 1–4 in one call (the eager path): validate, analyze the
    condition, build the network."""
    analysis = analyze_statement(statement, text, registry, set_name)
    return build_runtime_from_analysis(
        trigger_id,
        analysis,
        registry,
        evaluator,
        use_virtual_alpha=use_virtual_alpha,
        network_type=network_type,
    )


def _build_gator(trigger_id, graph, evaluator, tvar_sources, registry):
    """Build a Gator network and prime its materialized alpha memories from
    table sources (§5.1's 'prime the trigger to make it ready to run')."""
    from ..network.gator import GatorNetwork

    network = GatorNetwork(trigger_id, graph, evaluator)
    if len(graph.tvars) > 1:
        for tvar, source_name in tvar_sources.items():
            fetch = registry.get(source_name).fetcher()
            if fetch is None:
                continue  # stream sources start empty
            selection = graph.selection_expr(tvar)
            rows = (
                row
                for row in fetch()
                if selection is None
                or evaluator.matches(
                    selection, Bindings(rows={tvar: row})
                )
            )
            network.prime(tvar, rows)
    return network


def analyze_trigger(runtime) -> List[Tuple[str, AnalyzedPredicate]]:
    """§5.1 step 5 input: one analyzed selection predicate per tuple
    variable (the signature machinery keys on data source + op code).
    Accepts a :class:`TriggerRuntime` or a :class:`TriggerAnalysis` — the
    lazy path registers predicates before any runtime exists."""
    out: List[Tuple[str, AnalyzedPredicate]] = []
    for tvar in runtime.tvars:
        clauses = runtime.graph.selection_for(tvar)
        analyzed = analyze_selection(
            data_source=runtime.tvar_sources[tvar],
            operation=runtime.operation_code(tvar),
            clauses=clauses,
        )
        out.append((tvar, analyzed))
    return out


def analyze_trigger_arms(
    runtime, decompose: bool = True
) -> List[Tuple[str, DecomposedArm]]:
    """Like :func:`analyze_trigger` but with tagged-execution disjunct
    decomposition: a tuple variable whose predicate is unindexable as a
    whole may yield several arms (one registration each, sharing an arm
    tag) instead of one residual-scan entry.  ``decompose=False`` restores
    the single-registration behaviour exactly."""
    out: List[Tuple[str, DecomposedArm]] = []
    for tvar in runtime.tvars:
        clauses = runtime.graph.selection_for(tvar)
        source = runtime.tvar_sources[tvar]
        operation = runtime.operation_code(tvar)
        if decompose:
            for arm in decompose_selection(source, operation, clauses):
                out.append((tvar, arm))
        else:
            out.append(
                (
                    tvar,
                    DecomposedArm(
                        None, analyze_selection(source, operation, clauses)
                    ),
                )
            )
    return out


# -- trigger shapes (compact catalog descriptions) ---------------------------


def generalize_statement(
    statement: ast.CreateTriggerStatement,
) -> Tuple[ast.CreateTriggerStatement, List[Any]]:
    """Split a trigger statement into (shape template, constants).

    The template is the statement with its name and set blanked and every
    constant in the WHEN/HAVING conditions and raise-event arguments
    replaced by a numbered placeholder (continuous numbering across the
    three positions).  Triggers sharing a template differ only in their
    constant vector — the catalog stores the template once per shape and a
    compact constants row per trigger.  SQL action bodies and flags stay
    verbatim: they are part of the shape.
    """
    constants: List[Any] = []

    def gen(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        out, found = generalize(expr, start=len(constants) + 1)
        constants.extend(found)
        return out

    when = gen(statement.when)
    having = gen(statement.having)
    action = statement.action
    if isinstance(action, ast.RaiseEventAction) and action.args:
        action = ast.RaiseEventAction(
            action.event_name, tuple(gen(arg) for arg in action.args)
        )
    template = dataclasses.replace(
        statement,
        name="",
        set_name=None,
        when=when,
        having=having,
        action=action,
    )
    return template, constants


def instantiate_statement(
    template: ast.CreateTriggerStatement,
    constants: List[Any],
    name: str,
    set_name: Optional[str],
) -> ast.CreateTriggerStatement:
    """Inverse of :func:`generalize_statement`: rebuild a concrete trigger
    statement from its shape template and constant vector."""

    def inst(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        return None if expr is None else instantiate(expr, constants)

    action = template.action
    if isinstance(action, ast.RaiseEventAction) and action.args:
        action = ast.RaiseEventAction(
            action.event_name,
            tuple(instantiate(arg, constants) for arg in action.args),
        )
    return dataclasses.replace(
        template,
        name=name,
        set_name=set_name,
        when=inst(template.when),
        having=inst(template.having),
        action=action,
    )


# -- resident sizing ----------------------------------------------------------

_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes)


def runtime_size_bytes(runtime: TriggerRuntime) -> int:
    """Deep-measured resident bytes of one runtime's object graph.

    Shared structure is excluded: callables (compiled matchers, fetchers,
    window plans), classes/modules, and :class:`Evaluator` instances are
    process-wide, not per-trigger.  Identity-memoized, so internal sharing
    (the statement appearing as both ``statement`` and ``action`` owner)
    is counted once.
    """
    seen: set = set()
    total = 0
    stack: List[Any] = [runtime]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if (
            isinstance(obj, (type, types.ModuleType, Evaluator))
            or callable(obj)
        ):
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:
            continue
        if isinstance(obj, _ATOMIC_TYPES):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            for slot in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total
