"""The token pipeline: capture → update queue → task conversion.

The front half of the engine's dataflow.  Table capture listeners and the
data-source API push update descriptors in at :meth:`TokenPipeline.capture`;
driver threads pull work out through :meth:`refill_tasks`, which converts
pending descriptors (recovered replay tokens first) into PROCESS_TOKEN
tasks on the shared task queue.

The pipeline also owns :meth:`submit` — the single funnel every task takes
into the task queue, where trace stamping and task timing are applied — and
the ``converting`` count that lets :meth:`repro.engine.drivers.DriverPool.quiesce`
tell "queue momentarily empty" apart from "a driver is mid-conversion".
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .descriptors import UpdateDescriptor
from .locks import AtomicCounter
from .tasks import PROCESS_BATCH, PROCESS_TOKEN, Task


class TokenPipeline:
    """Capture sink, descriptor source, and the task-submission funnel."""

    def __init__(self, queue, tasks, obs, m_task_ns, batch_size: int = 1):
        self.queue = queue
        self.tasks = tasks
        self.obs = obs
        self._m_task_ns = m_task_ns
        #: tokens per PROCESS_BATCH task; 1 keeps the single-token path
        self.batch_size = max(1, batch_size)
        #: tokens actually grouped per batch task (depth-limited batches
        #: show up here; always-on would cost the single-token path, so the
        #: histogram only fills when metrics are enabled)
        self._m_batch_tokens = obs.metrics.histogram(
            "pipeline.batch_tokens",
            help="tokens per PROCESS_BATCH task",
        )
        #: drivers currently inside refill_tasks (descriptors may be out of
        #: the queue but not yet visible as tasks — quiesce must wait)
        self.converting = AtomicCounter()
        # Bound by the facade after the firing/matching layers exist:
        #: the firing engine (replay + in-flight registration)
        self.firing = None
        #: descriptor -> fired count (the match executor's process_token)
        self.process: Callable[[UpdateDescriptor], int] = lambda d: 0
        #: batch of descriptors -> fired count (the match executor's
        #: match_batch, bound by the facade like ``process``)
        self.process_batch: Callable[[List[UpdateDescriptor]], int] = (
            lambda ds: 0
        )

    # -- capture (the producer side) ---------------------------------------

    def capture(self, descriptor: UpdateDescriptor) -> None:
        """Sink for table capture listeners and the data-source API."""
        if self.obs.trace.enabled:
            descriptor = self.obs.trace.begin(descriptor)
        self.queue.enqueue(descriptor)
        # Wake any driver blocked in wait_for_work: new tokens mean new
        # type-1 tasks on its next refill.
        self.tasks.kick()

    # -- task submission ----------------------------------------------------

    def submit(self, task: Task, trace_id: Optional[int] = None) -> None:
        """Enqueue a task, stamped with (and wrapped to re-establish) the
        current trace so task.run/action.execute spans land on the token's
        trace even though the task runs later, possibly on another thread."""
        obs = self.obs
        if not obs.trace.enabled:
            trace_id = 0
        elif trace_id is None:
            trace_id = obs.trace.current_id()
        timing = obs.metrics.enabled
        if trace_id or timing:
            inner, kind, label = task.fn, task.kind, task.label
            task_ns = self._m_task_ns
            tracer = obs.trace

            def run_observed() -> None:
                start = tracer.clock()
                if trace_id:
                    with tracer.token(trace_id):
                        inner()
                else:
                    inner()
                end = tracer.clock()
                if timing:
                    task_ns.observe(end - start)
                if trace_id:
                    tracer.record(
                        "task.run",
                        start,
                        end,
                        {"kind": kind, "label": label},
                        trace_id=trace_id,
                    )

            task.fn = run_observed
            task.trace_id = trace_id
            if trace_id:
                obs.trace.event(
                    "task.enqueue", {"kind": kind, "label": label}
                )
        self.tasks.put(task)

    # -- the consumer side ---------------------------------------------------

    def next_descriptor(self) -> Optional[UpdateDescriptor]:
        """Recovered replay tokens first, then the live queue."""
        descriptor = self.firing.next_replay()
        if descriptor is None:
            descriptor = self.queue.dequeue()
            if descriptor is None:
                return None
        self.firing.register_inflight(descriptor)
        return descriptor

    def next_descriptors(self, n: int) -> List[UpdateDescriptor]:
        """Up to ``n`` descriptors: recovered replay tokens first, then one
        batched dequeue (a single queue lock + WAL group for the rest)."""
        batch: List[UpdateDescriptor] = []
        while len(batch) < n:
            descriptor = self.firing.next_replay()
            if descriptor is None:
                break
            batch.append(descriptor)
        if len(batch) < n:
            batch.extend(self.queue.dequeue_batch(n - len(batch)))
        for descriptor in batch:
            self.firing.register_inflight(descriptor)
        return batch

    def refill_tasks(
        self, batch: int = 64, batch_size: Optional[int] = None
    ) -> bool:
        """Convert pending update descriptors into type-1 tasks.

        ``batch`` caps how many descriptors one refill converts;
        ``batch_size`` (default: the pipeline's knob) groups them into
        PROCESS_BATCH tasks.  Tracing keeps the single-token path — spans
        and trace ids are per token.
        """
        if batch_size is None:
            batch_size = self.batch_size
        tracer = self.obs.trace
        if batch_size > 1 and not tracer.enabled:
            return self._refill_batched(batch, batch_size)
        added = False
        self.converting.inc()
        try:
            for _ in range(batch):
                descriptor = self.next_descriptor()
                if descriptor is None:
                    break
                if tracer.enabled:
                    tracer.record_dequeue(descriptor)
                self.submit(
                    Task(
                        PROCESS_TOKEN,
                        lambda d=descriptor: self.process(d),
                        label=(
                            f"{descriptor.data_source}:{descriptor.operation}"
                        ),
                    ),
                    trace_id=descriptor.trace_id,
                )
                added = True
        finally:
            self.converting.dec()
        return added

    def _refill_batched(self, batch: int, batch_size: int) -> bool:
        added = False
        observe_sizes = self.obs.metrics.enabled
        self.converting.inc()
        try:
            remaining = batch
            while remaining > 0:
                chunk = self.next_descriptors(min(batch_size, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
                if observe_sizes:
                    self._m_batch_tokens.observe(len(chunk))
                self.submit(
                    Task(
                        PROCESS_BATCH,
                        lambda ds=chunk: self.process_batch(ds),
                        label=f"batch[{len(chunk)}]",
                    )
                )
                added = True
        finally:
            self.converting.dec()
        return added
