"""The token pipeline: capture → update queue → task conversion.

The front half of the engine's dataflow.  Table capture listeners and the
data-source API push update descriptors in at :meth:`TokenPipeline.capture`;
driver threads pull work out through :meth:`refill_tasks`, which converts
pending descriptors (recovered replay tokens first) into PROCESS_TOKEN
tasks on the shared task queue.

The pipeline also owns :meth:`submit` — the single funnel every task takes
into the task queue, where trace stamping and task timing are applied — and
the ``converting`` count that lets :meth:`repro.engine.drivers.DriverPool.quiesce`
tell "queue momentarily empty" apart from "a driver is mid-conversion".
"""

from __future__ import annotations

from typing import Callable, Optional

from .descriptors import UpdateDescriptor
from .locks import AtomicCounter
from .tasks import PROCESS_TOKEN, Task


class TokenPipeline:
    """Capture sink, descriptor source, and the task-submission funnel."""

    def __init__(self, queue, tasks, obs, m_task_ns):
        self.queue = queue
        self.tasks = tasks
        self.obs = obs
        self._m_task_ns = m_task_ns
        #: drivers currently inside refill_tasks (descriptors may be out of
        #: the queue but not yet visible as tasks — quiesce must wait)
        self.converting = AtomicCounter()
        # Bound by the facade after the firing/matching layers exist:
        #: the firing engine (replay + in-flight registration)
        self.firing = None
        #: descriptor -> fired count (the match executor's process_token)
        self.process: Callable[[UpdateDescriptor], int] = lambda d: 0

    # -- capture (the producer side) ---------------------------------------

    def capture(self, descriptor: UpdateDescriptor) -> None:
        """Sink for table capture listeners and the data-source API."""
        if self.obs.trace.enabled:
            descriptor = self.obs.trace.begin(descriptor)
        self.queue.enqueue(descriptor)
        # Wake any driver blocked in wait_for_work: new tokens mean new
        # type-1 tasks on its next refill.
        self.tasks.kick()

    # -- task submission ----------------------------------------------------

    def submit(self, task: Task, trace_id: Optional[int] = None) -> None:
        """Enqueue a task, stamped with (and wrapped to re-establish) the
        current trace so task.run/action.execute spans land on the token's
        trace even though the task runs later, possibly on another thread."""
        obs = self.obs
        if not obs.trace.enabled:
            trace_id = 0
        elif trace_id is None:
            trace_id = obs.trace.current_id()
        timing = obs.metrics.enabled
        if trace_id or timing:
            inner, kind, label = task.fn, task.kind, task.label
            task_ns = self._m_task_ns
            tracer = obs.trace

            def run_observed() -> None:
                start = tracer.clock()
                if trace_id:
                    with tracer.token(trace_id):
                        inner()
                else:
                    inner()
                end = tracer.clock()
                if timing:
                    task_ns.observe(end - start)
                if trace_id:
                    tracer.record(
                        "task.run",
                        start,
                        end,
                        {"kind": kind, "label": label},
                        trace_id=trace_id,
                    )

            task.fn = run_observed
            task.trace_id = trace_id
            if trace_id:
                obs.trace.event(
                    "task.enqueue", {"kind": kind, "label": label}
                )
        self.tasks.put(task)

    # -- the consumer side ---------------------------------------------------

    def next_descriptor(self) -> Optional[UpdateDescriptor]:
        """Recovered replay tokens first, then the live queue."""
        descriptor = self.firing.next_replay()
        if descriptor is None:
            descriptor = self.queue.dequeue()
            if descriptor is None:
                return None
        self.firing.register_inflight(descriptor)
        return descriptor

    def refill_tasks(self, batch: int = 64) -> bool:
        """Convert pending update descriptors into type-1 tasks."""
        added = False
        tracer = self.obs.trace
        self.converting.inc()
        try:
            for _ in range(batch):
                descriptor = self.next_descriptor()
                if descriptor is None:
                    break
                if tracer.enabled:
                    tracer.record_dequeue(descriptor)
                self.submit(
                    Task(
                        PROCESS_TOKEN,
                        lambda d=descriptor: self.process(d),
                        label=(
                            f"{descriptor.data_source}:{descriptor.operation}"
                        ),
                    ),
                    trace_id=descriptor.trace_id,
                )
                added = True
        finally:
            self.converting.dec()
        return added
