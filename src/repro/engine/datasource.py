"""Connections and data sources (§2–§3 of the paper).

A *connection* names a database TriggerMan can reach (here: an in-process
:class:`repro.sql.Database`, standing in for a local or remote Informix /
Oracle / Sybase server).  A *data source* normally corresponds to a table on
some connection — update-capture listeners on the table play the role of the
per-table Informix capture triggers — or to a *stream*: a schema-carrying
feed driven through the data source API by an application program.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CatalogError, SchemaError
from ..sql.database import Database, Table
from .descriptors import Operation, UpdateDescriptor


class Connection:
    """A named database connection; one connection is the default (§2)."""

    def __init__(self, name: str, database: Database, is_default: bool = False):
        self.name = name
        self.database = database
        self.is_default = is_default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        default = " (default)" if self.is_default else ""
        return f"Connection({self.name}{default})"


class DataSource:
    """Base class: a stream of update descriptors with a known schema."""

    kind = "abstract"

    def __init__(self, ds_id: int, name: str, columns: Sequence[str]):
        self.ds_id = ds_id
        self.name = name
        self.columns = tuple(columns)

    def has_column(self, column: str) -> bool:
        return column in self.columns

    def fetcher(self) -> Optional[Callable[[], Iterator[Dict[str, Any]]]]:
        """Row-fetch callback for virtual alpha memories; None when the
        source has no queryable current state (pure streams)."""
        return None


class TableDataSource(DataSource):
    """A data source over a local table; updates are captured by a table
    listener installed by the engine."""

    kind = "table"

    def __init__(
        self,
        ds_id: int,
        name: str,
        connection: Connection,
        table: Table,
    ):
        super().__init__(ds_id, name, table.schema.column_names())
        self.connection = connection
        self.table = table

    def fetcher(self) -> Callable[[], Iterator[Dict[str, Any]]]:
        table = self.table

        def fetch() -> Iterator[Dict[str, Any]]:
            for row in table.rows():
                yield table.schema.row_to_dict(row)

        return fetch

    def install_capture(self, sink: Callable[[UpdateDescriptor], None]) -> None:
        """Attach the update-capture listener (the Informix-trigger stand-in)."""
        source_name = self.name

        def listener(op: str, old_row, new_row) -> None:
            if op == Operation.UPDATE:
                descriptor = UpdateDescriptor.for_update(
                    source_name, old_row, new_row
                )
            else:
                descriptor = UpdateDescriptor(
                    data_source=source_name,
                    operation=op,
                    new=new_row,
                    old=old_row,
                )
            sink(descriptor)

        self.table.listeners.append(listener)


class StreamDataSource(DataSource):
    """A generic data source program: tuples arrive through the data source
    API (:meth:`descriptor_for`) and have no backing table."""

    kind = "stream"

    def __init__(self, ds_id: int, name: str, columns: Sequence[Tuple[str, str]]):
        super().__init__(ds_id, name, [c for c, _t in columns])
        self.column_types = tuple(columns)

    def descriptor_for(
        self,
        operation: str,
        new: Optional[Dict[str, Any]] = None,
        old: Optional[Dict[str, Any]] = None,
    ) -> UpdateDescriptor:
        for image in (new, old):
            if image is None:
                continue
            unknown = set(image) - set(self.columns)
            if unknown:
                raise SchemaError(
                    f"stream {self.name!r} has no columns {sorted(unknown)}"
                )
        if operation == Operation.UPDATE and new is not None and old is not None:
            return UpdateDescriptor.for_update(self.name, old, new)
        return UpdateDescriptor(
            data_source=self.name, operation=operation, new=new, old=old
        )


class DataSourceRegistry:
    """Name → data source lookup plus id assignment."""

    def __init__(self) -> None:
        self._sources: Dict[str, DataSource] = {}
        self._next_id = 1

    def next_id(self) -> int:
        ds_id = self._next_id
        self._next_id += 1
        return ds_id

    def add(self, source: DataSource) -> None:
        if source.name in self._sources:
            raise CatalogError(f"data source {source.name!r} already defined")
        self._sources[source.name] = source
        self._next_id = max(self._next_id, source.ds_id + 1)

    def get(self, name: str) -> DataSource:
        try:
            return self._sources[name]
        except KeyError:
            raise CatalogError(f"no such data source {name!r}")

    def drop(self, name: str) -> DataSource:
        source = self.get(name)
        del self._sources[name]
        return source

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def names(self) -> List[str]:
        return sorted(self._sources)
