"""The TriggerMan client API (§3).

"Two libraries that come with TriggerMan allow writing of client
applications and data source programs."  This module is the client-side
library: connect to a TriggerMan instance, issue commands, create and drop
triggers, register for events, and receive notifications.  The data-source
API lives in :class:`DataSourceProgram`.

Both classes here run *in-process* against a :class:`TriggerMan` instance;
:mod:`repro.net.remote` provides wire-protocol twins
(``RemoteTriggerManClient`` / ``RemoteDataSourceProgram``) with the same
surface, so programs written against this API run unmodified against a
remote trigger processor.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..errors import CatalogError
from .descriptors import Operation
from .events import Notification
from .triggerman import TriggerMan

#: default bound on a client's notification inbox
DEFAULT_INBOX_LIMIT = 8192


class TriggerManClient:
    """A client application's handle on the trigger processor.

    The notification ``inbox`` is bounded (``inbox_limit``; ``None`` for
    unbounded): a slow or abandoned subscriber evicts its *oldest*
    notifications rather than growing memory forever, and ``inbox_drops``
    counts the evictions.
    """

    def __init__(
        self,
        tman: TriggerMan,
        name: str = "client",
        inbox_limit: Optional[int] = DEFAULT_INBOX_LIMIT,
    ):
        self.tman = tman
        self.name = name
        self.inbox_limit = inbox_limit
        self._subscriptions: List[int] = []
        #: notifications delivered to this client, oldest first
        self.inbox: Deque[Notification] = deque()
        #: oldest notifications evicted because the inbox was full
        self.inbox_drops = 0
        #: events arrive on driver threads; reads happen on the client's
        self._inbox_lock = threading.Lock()

    # -- commands -----------------------------------------------------------

    def command(self, text: str):
        """Issue any TriggerMan command (create trigger, drop trigger,
        define data source, ...)."""
        return self.tman.execute_command(text)

    def create_trigger(self, text: str) -> int:
        return self.tman.create_trigger(text)

    def drop_trigger(self, name: str) -> int:
        return self.tman.drop_trigger(name)

    def process(self) -> int:
        """Drain the update queue (one TmanTest-style pump); returns the
        number of tokens processed."""
        return self.tman.process_all()

    def console(self, line: str) -> str:
        """Run one console line; returns the printable text (mirrors
        ``RemoteTriggerManClient.console``)."""
        from .console import Console

        return Console(self.tman).execute(line)

    # -- observability -------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The engine's headline counters (``tman.metrics()``)."""
        return self.tman.metrics()

    def stats(self) -> Dict[str, Any]:
        """Full metrics-registry snapshot (obs subsystem)."""
        return self.tman.stats_snapshot()

    def explain_trigger(self, name: str) -> str:
        """EXPLAIN-style report: predicate analysis, signature equivalence
        class, and the §5.2 organization strategy currently in use."""
        return self.tman.explain(name)

    def set_tracing(self, enabled: bool) -> None:
        self.tman.set_tracing(enabled)

    def traces_json(self) -> str:
        """All held traces as ``triggerman-trace-v1`` JSON."""
        return self.tman.obs.trace.to_json()

    # -- events --------------------------------------------------------------

    def _inbox_sink(self, notification: Notification) -> None:
        with self._inbox_lock:
            if (
                self.inbox_limit is not None
                and len(self.inbox) >= self.inbox_limit
            ):
                self.inbox.popleft()
                self.inbox_drops += 1
            self.inbox.append(notification)

    def register_for_event(
        self,
        event_name: str,
        callback: Optional[Callable[[Notification], None]] = None,
    ) -> int:
        """Subscribe to an event; without a callback, notifications land in
        :attr:`inbox`."""
        sink = callback if callback is not None else self._inbox_sink
        subscription = self.tman.register_for_event(event_name, sink)
        self._subscriptions.append(subscription)
        return subscription

    def next_notification(self) -> Optional[Notification]:
        with self._inbox_lock:
            if not self.inbox:
                return None
            return self.inbox.popleft()

    def disconnect(self) -> None:
        """Unregister every subscription this client created.  On return no
        further notifications will be delivered (``EventManager.unregister``
        is a barrier against in-flight deliveries on other threads)."""
        subscriptions, self._subscriptions = self._subscriptions, []
        for subscription in subscriptions:
            self.tman.events.unregister(subscription)


class DataSourceProgram:
    """The data-source API: an application feeding a stream source."""

    def __init__(self, tman: TriggerMan, source_name: str):
        self.tman = tman
        self.source_name = source_name
        # validates that the source exists and is a stream
        source = tman.registry.get(source_name)
        if source.kind != "stream":
            raise CatalogError(
                f"DataSourceProgram feeds streams; {source_name!r} is a "
                f"{source.kind} source"
            )

    def insert(self, row: Dict[str, Any]) -> None:
        self.tman.push(self.source_name, Operation.INSERT, new=row)

    def delete(self, row: Dict[str, Any]) -> None:
        self.tman.push(self.source_name, Operation.DELETE, old=row)

    def update(self, old: Dict[str, Any], new: Dict[str, Any]) -> None:
        self.tman.push(self.source_name, Operation.UPDATE, new=new, old=old)
