"""Update descriptors — the tokens flowing through TriggerMan.

§5.4: "an update descriptor (token) consists of a data source ID, an
operation code, and an old tuple, new tuple, or old/new tuple pair."  We add
the set of changed columns (so ``on update(col)`` event conditions can be
tested) and a sequence number assigned by the queue.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

from ..errors import QueueError


class Operation:
    """Operation codes (string constants, matching signature op codes)."""

    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"

    ALL = (INSERT, DELETE, UPDATE)


@dataclass(frozen=True)
class UpdateDescriptor:
    """One captured update, en route to trigger condition testing."""

    data_source: str
    operation: str
    new: Optional[Dict[str, Any]] = None
    old: Optional[Dict[str, Any]] = None
    changed_columns: FrozenSet[str] = frozenset()
    seq: int = 0
    #: observability tag (0 = untraced); assigned by the TraceRecorder at
    #: capture time and carried through the queue
    trace_id: int = 0

    def __post_init__(self) -> None:
        if self.operation not in Operation.ALL:
            raise QueueError(f"unknown operation {self.operation!r}")
        if self.operation == Operation.INSERT and self.new is None:
            raise QueueError("insert descriptor requires a new image")
        if self.operation == Operation.DELETE and self.old is None:
            raise QueueError("delete descriptor requires an old image")
        if self.operation == Operation.UPDATE and (
            self.new is None or self.old is None
        ):
            raise QueueError("update descriptor requires old and new images")

    @property
    def match_row(self) -> Dict[str, Any]:
        """The image trigger conditions evaluate against: the new image for
        insert/update, the old image for delete."""
        if self.operation == Operation.DELETE:
            assert self.old is not None
            return self.old
        assert self.new is not None
        return self.new

    @staticmethod
    def for_update(
        data_source: str,
        old: Dict[str, Any],
        new: Dict[str, Any],
        seq: int = 0,
    ) -> "UpdateDescriptor":
        changed = frozenset(
            column
            for column in set(old) | set(new)
            if old.get(column) != new.get(column)
        )
        return UpdateDescriptor(
            data_source=data_source,
            operation=Operation.UPDATE,
            new=new,
            old=old,
            changed_columns=changed,
            seq=seq,
        )

    # -- persistence (queue table payloads) ---------------------------------

    def to_json(self) -> str:
        payload = {
            "new": self.new,
            "old": self.old,
            "changed": sorted(self.changed_columns),
        }
        if self.trace_id:
            payload["trace"] = self.trace_id
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_parts(
        cls,
        data_source: str,
        operation: str,
        payload: str,
        seq: int,
    ) -> "UpdateDescriptor":
        data = json.loads(payload)
        return cls(
            data_source=data_source,
            operation=operation,
            new=data.get("new"),
            old=data.get("old"),
            changed_columns=frozenset(data.get("changed", ())),
            seq=seq,
            trace_id=data.get("trace", 0),
        )
