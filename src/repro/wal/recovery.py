"""Crash recovery: analysis + redo from the last checkpoint.

Recovery runs when a database opens over an existing log, in two passes
over the durable records (the torn tail was already truncated by
:class:`~repro.wal.log.WriteAheadLog` on open):

**Analysis** finds the most recent CHECKPOINT record.  It carries the
page-LSN table (durable LSN per page as of the checkpoint) and the
in-flight token state (descriptors dequeued but not yet finished, with the
multiset of firings already durably executed for each).  Without a
checkpoint, analysis starts from the beginning of the log with an empty
page-LSN table.

**Redo** walks the records after the checkpoint in LSN order and
re-applies every PAGE_IMAGE whose LSN is newer than the page's durable
pageLSN — the pageLSN comparison that makes redo idempotent.  Images are
full page post-images, so re-applying one is byte-identical; running
recovery twice applies zero additional redo the second time (the engine
re-checkpoints after recovery, advancing the page-LSN table past every
record).  Redo writes through a *resolver* (``file name -> pager``) so the
same code serves real directories and the fault harness's simulated disks.

**Token analysis** folds the logical records into the exactly-once
contract the engine needs (see engine/triggerman.py):

* dequeued + TOKEN_DONE          → finished; never reprocess.
* dequeued, no TOKEN_DONE        → replay, skipping firings whose
  digests are already in the durable ledger (no duplicates), then
  executing the rest (no losses).
* still in the queue table       → redo restored the row; the queue's
  normal backlog scan re-delivers it.  TOKEN_DEQUEUE is logged *before*
  the row delete, so a durable deletion implies a durable dequeue record
  — a token can never vanish between the two.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .log import (
    ACTION_FIRED,
    CHECKPOINT,
    PAGE_IMAGE,
    TOKEN_DEQUEUE,
    TOKEN_DONE,
    TOKEN_ENQUEUE,
    WINDOW_EVENT,
    WalRecord,
    WriteAheadLog,
)

#: record types whose JSON body carries a token ``seq``
_TOKEN_RECORDS = (
    TOKEN_ENQUEUE, TOKEN_DEQUEUE, ACTION_FIRED, TOKEN_DONE, WINDOW_EVENT,
)


@dataclass
class TokenState:
    """One update descriptor that must be replayed after the crash."""

    seq: int
    data_source: str
    operation: str
    payload: str  #: JSON old/new images, as stored in the queue table
    #: digest -> count of firings already durably executed for this token
    fired: Counter = field(default_factory=Counter)

    def fired_total(self) -> int:
        return sum(self.fired.values())


@dataclass
class RecoveryResult:
    """What recovery did and what the engine still has to replay."""

    records_scanned: int = 0
    checkpoint_lsn: int = 0
    redo_applied: int = 0
    redo_skipped: int = 0
    files_touched: int = 0
    #: tokens dequeued but not finished, in seq order
    incomplete: List[TokenState] = field(default_factory=list)
    #: seqs that completed (TOKEN_DONE durable)
    done_seqs: set = field(default_factory=set)
    #: highest token seq with any durable evidence — the queue must mint
    #: fresh seqs above this, or a reused seq would alias a dead token's
    #: ledger entries
    max_seq: int = 0
    #: durable page-LSN table after redo (seeds WriteAheadLog.page_lsns)
    page_lsns: Dict[Tuple[str, int], int] = field(default_factory=dict)
    #: checkpoint-carried temporal window-state snapshot (None without one)
    windows: Optional[dict] = None
    #: post-checkpoint WINDOW_EVENT payloads, in LSN order — folded over
    #: ``windows`` by the engine's window store at restore time
    window_events: List[dict] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"scanned {self.records_scanned} record(s), "
            f"checkpoint at LSN {self.checkpoint_lsn}, "
            f"redo applied {self.redo_applied} / skipped {self.redo_skipped} "
            f"page image(s) across {self.files_touched} file(s), "
            f"{len(self.incomplete)} token(s) to replay"
        )


def _last_checkpoint(records: List[WalRecord]) -> Tuple[Optional[dict], int]:
    """Returns ``(checkpoint payload, index of first record after it)``."""
    for i in range(len(records) - 1, -1, -1):
        if records[i].rtype == CHECKPOINT:
            return records[i].json(), i
    return None, -1


def analyze_tokens(
    records: List[WalRecord], checkpoint: Optional[dict]
) -> Tuple[List[TokenState], set]:
    """Fold logical records (post-checkpoint) over the checkpointed
    in-flight state; returns ``(incomplete tokens in seq order, done seqs)``."""
    pending: Dict[int, TokenState] = {}
    done: set = set()
    if checkpoint:
        for entry in checkpoint.get("incomplete", []):
            state = TokenState(
                seq=entry["seq"],
                data_source=entry["dataSrc"],
                operation=entry["op"],
                payload=entry["payload"],
                fired=Counter(entry.get("fired", {})),
            )
            pending[state.seq] = state
    for record in records:
        if record.rtype == TOKEN_DEQUEUE:
            body = record.json()
            seq = body["seq"]
            if seq not in pending:
                pending[seq] = TokenState(
                    seq=seq,
                    data_source=body["dataSrc"],
                    operation=body["op"],
                    payload=body["payload"],
                )
        elif record.rtype == ACTION_FIRED:
            body = record.json()
            state = pending.get(body["seq"])
            if state is not None:
                state.fired[body["digest"]] += 1
        elif record.rtype == TOKEN_DONE:
            seq = record.json()["seq"]
            pending.pop(seq, None)
            done.add(seq)
    return sorted(pending.values(), key=lambda s: s.seq), done


def recover(
    wal: WriteAheadLog,
    resolver: Callable[[str], "PagerLike"],
    close_pagers: bool = False,
) -> RecoveryResult:
    """Run analysis + redo; seeds ``wal.page_lsns`` and returns the result.

    ``resolver`` maps a logged file name to a pager with ``redo_write`` /
    ``sync``.  With ``close_pagers=True`` every pager the resolver returns
    is synced and closed afterwards (directory-backed recovery opens its
    own short-lived handles; the fault harness keeps its simulated disks).
    """
    result = RecoveryResult()
    records = wal.scan()
    result.records_scanned = len(records)
    checkpoint, ckpt_index = _last_checkpoint(records)
    page_lsns: Dict[Tuple[str, int], int] = {}
    if checkpoint is not None:
        result.checkpoint_lsn = records[ckpt_index].lsn
        for name, page_no, lsn in checkpoint.get("page_lsns", []):
            page_lsns[(name, page_no)] = lsn
    after = records[ckpt_index + 1 :]
    pagers: Dict[str, "PagerLike"] = {}
    for record in after:
        if record.rtype != PAGE_IMAGE:
            continue
        name, page_no, data = record.page_image()
        if page_lsns.get((name, page_no), 0) >= record.lsn:
            result.redo_skipped += 1
            continue
        pager = pagers.get(name)
        if pager is None:
            pager = pagers[name] = resolver(name)
        pager.redo_write(page_no, data)
        page_lsns[(name, page_no)] = record.lsn
        result.redo_applied += 1
    result.files_touched = len(pagers)
    for pager in pagers.values():
        pager.sync()
        if close_pagers:
            pager.close()
    result.incomplete, result.done_seqs = analyze_tokens(after, checkpoint)
    if checkpoint is not None:
        result.windows = checkpoint.get("windows")
    result.window_events = [
        record.json() for record in after if record.rtype == WINDOW_EVENT
    ]
    max_seq = checkpoint.get("max_seq", 0) if checkpoint else 0
    for entry in (checkpoint or {}).get("incomplete", []):
        max_seq = max(max_seq, entry.get("seq", 0))
    for record in after:
        if record.rtype in _TOKEN_RECORDS:
            max_seq = max(max_seq, record.json().get("seq", 0))
    result.max_seq = max_seq
    result.page_lsns = page_lsns
    # Seed the live log's page-LSN table so the next checkpoint carries the
    # full durable picture, not just pages touched since this boot.
    wal.page_lsns.update(page_lsns)
    return result


class PagerLike:
    """Protocol: what recovery needs from a pager."""

    def redo_write(self, page_no: int, data: bytes) -> None:  # pragma: no cover
        raise NotImplementedError

    def sync(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover
        raise NotImplementedError
