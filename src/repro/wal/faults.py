"""Deterministic fault injection: simulated disks and counted crash points.

The crash model: a process dies at an arbitrary instant.  Everything in
memory — buffer-pool frames, the WAL's group-commit buffer, the engine's
task queue — vanishes; only what a backend had *synced* survives, plus
possibly a torn suffix (a page or log append cut off mid-write).

:class:`SimDisk` gives a database that exact physics without touching the
real filesystem: every "file" is a :class:`CrashingPager` (or the log's
:class:`CrashingLogStorage`) holding a *volatile* layer over a *durable*
layer.  Writes land in the volatile layer; ``sync`` promotes them;
:meth:`SimDisk.crash` discards every volatile layer.  Torn writes are
modeled on the durable path: a crash point during a log append keeps only
a prefix of the bytes, and one during a page sync leaves a half-old /
half-new page (recovery's full-image redo repairs it; the torn log tail is
truncated by CRC scan on reopen).

:class:`FaultInjector` arms *crash points*: named sites threaded through
the WAL (``wal.append``, ``wal.sync``), the simulated disk (``disk.sync``,
``disk.sync.torn``), and the engine (``queue.enqueue``, ``queue.dequeue``,
``engine.action``, ``engine.token_done``).  ``arm(site, at_hit)`` raises
:class:`SimulatedCrash` on the N-th hit of that site — fully deterministic
for a given workload, which is what lets the crash-loop test sweep
hundreds of seeds and still be debuggable.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`:
the engine isolates trigger-action failures with ``except Exception``, and
a simulated kill must cut through that like a real ``SIGKILL`` would.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sql.page import PAGE_SIZE
from ..sql.pager import Pager
from .log import MemoryLogStorage


class SimulatedCrash(BaseException):
    """The process 'died' at an injected crash point.

    A BaseException on purpose: it must pierce the engine's blanket
    ``except Exception`` action isolation, like a real kill signal.
    """

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"simulated crash at {site!r}")


class FaultInjector:
    """Counted, named crash points.

    ``arm("wal.append", 5)`` crashes on the 5th hit of that site after
    arming.  ``arm(site, n, torn=True)`` additionally asks the site to
    leave a torn write behind (only sites that can tear honor it).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self._armed: Dict[str, int] = {}
        self._torn: Dict[str, bool] = {}
        #: every site name ever hit, in order (lets tests enumerate sites)
        self.seen: List[str] = []
        self.crashes = 0

    def arm(self, site: str, at_hit: int, torn: bool = False) -> None:
        if at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {at_hit}")
        self._armed[site] = at_hit
        self._torn[site] = torn
        self.counters[site] = 0

    def disarm(self) -> None:
        self._armed.clear()
        self._torn.clear()

    def hit(self, site: str) -> None:
        count = self.counters.get(site, 0) + 1
        self.counters[site] = count
        if not self.counters.get(site + ".seen"):
            self.seen.append(site)
            self.counters[site + ".seen"] = 1
        if self._armed.get(site) == count:
            self.crashes += 1
            raise SimulatedCrash(site)

    def tearing(self, site: str) -> bool:
        """True when the *next* hit of ``site`` will crash and the site was
        armed to tear (backends consult this to cut a write short)."""
        return (
            self._torn.get(site, False)
            and self._armed.get(site) == self.counters.get(site, 0) + 1
        )


class CrashingPager(Pager):
    """A memory pager with a volatile layer over a durable layer.

    ``write`` touches only the volatile layer.  ``sync`` promotes dirty
    pages one at a time, hitting the ``disk.sync`` site between pages
    (partial flush) and honoring torn arming via ``disk.sync.torn``
    (half-promoted page).  ``crash`` resets volatile to durable.
    """

    def __init__(self, name: str, faults: Optional[FaultInjector] = None):
        super().__init__()
        self.name = name
        self.faults = faults
        self._volatile: List[bytearray] = []
        self._durable: List[bytes] = []
        self._dirty: set = set()

    @property
    def num_pages(self) -> int:
        return len(self._volatile)

    def _read_raw(self, page_no: int) -> bytearray:
        return bytearray(self._volatile[page_no])

    def _write_raw(self, page_no: int, data: bytes) -> None:
        if page_no == len(self._volatile):
            self._volatile.append(bytearray(data))
        else:
            self._volatile[page_no] = bytearray(data)
        self._dirty.add(page_no)

    def sync(self) -> None:
        while len(self._durable) < len(self._volatile):
            self._durable.append(bytes(PAGE_SIZE))
        for page_no in sorted(self._dirty):
            if self.faults is not None:
                if self.faults.tearing("disk.sync"):
                    # Promote half the page, then die: a torn page write.
                    half = PAGE_SIZE // 2
                    torn = (
                        bytes(self._volatile[page_no][:half])
                        + self._durable[page_no][half:]
                    )
                    self._durable[page_no] = torn
                self.faults.hit("disk.sync")
            self._durable[page_no] = bytes(self._volatile[page_no])
        self._dirty.clear()
        self.fsyncs += 1

    def crash(self) -> None:
        """Discard unsynced writes (the volatile layer)."""
        self._volatile = [bytearray(p) for p in self._durable]
        self._dirty.clear()

    def durable_page(self, page_no: int) -> bytes:
        return self._durable[page_no]


class CrashingLogStorage(MemoryLogStorage):
    """Log storage whose appends can tear.

    The WriteAheadLog only hands bytes down at flush time (its group-commit
    buffer is the 'process memory' that a crash wipes), so this layer is
    durable-on-append — except when an armed ``disk.log_append`` site cuts
    the append short, leaving the torn tail that the CRC scan truncates on
    the next open.
    """

    def __init__(self, faults: Optional[FaultInjector] = None):
        super().__init__()
        self.faults = faults

    def append(self, data: bytes) -> None:
        if self.faults is not None:
            if self.faults.tearing("disk.log_append"):
                cut = max(1, len(data) // 2)
                self.data += data[:cut]
            self.faults.hit("disk.log_append")
        self.data += data


class SimCatalogStore:
    """In-memory stand-in for the database's ``catalog.json``.

    The real catalog is written with write-temp-then-rename, which is
    atomic-and-durable on any sane filesystem; this mirrors that contract
    (``save`` is all-or-nothing, never torn), so the fault harness tests
    the WAL's guarantees rather than re-litigating ``os.replace``.
    """

    def __init__(self) -> None:
        self._durable: Optional[dict] = None
        self.saves = 0

    def save(self, desc: dict) -> None:
        import json

        # Round-trip through JSON like the file path does, so the stored
        # descriptor has no live references into the dying incarnation.
        self._durable = json.loads(json.dumps(desc))
        self.saves += 1

    def load(self) -> Optional[dict]:
        return self._durable


class SimDisk:
    """One simulated machine's stable storage: page files + the WAL file.

    A database incarnation is built over ``pager_factory`` /
    ``log_storage``; killing it is :meth:`crash` (volatile layers dropped,
    the dead incarnation's objects are simply abandoned) followed by
    constructing a fresh database over the same SimDisk.
    """

    def __init__(self, faults: Optional[FaultInjector] = None):
        self.faults = faults if faults is not None else FaultInjector()
        self.pagers: Dict[str, CrashingPager] = {}
        self.log = CrashingLogStorage(self.faults)
        self.catalog = SimCatalogStore()

    def pager_factory(self, name: str) -> CrashingPager:
        pager = self.pagers.get(name)
        if pager is None:
            pager = self.pagers[name] = CrashingPager(name, self.faults)
        return pager

    def crash(self) -> None:
        """Power-fail every device; armed sites stay armed."""
        for pager in self.pagers.values():
            pager.crash()
        # The log's durable bytes stay; there is no volatile log layer to
        # drop because the WAL's own buffer dies with the process object.

    def durable_bytes(self) -> int:
        return len(self.log.data) + sum(
            len(p._durable) * PAGE_SIZE for p in self.pagers.values()
        )
