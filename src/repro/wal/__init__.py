"""Durability: write-ahead logging, crash recovery, and fault injection.

The paper's asynchronous trigger model leans on "the safety of persistent
update queuing" (§4): the host transaction commits once its update
descriptors are durably queued, and TriggerMan processes them later.  That
promise is empty unless the queue — and everything trigger processing
mutates — survives being killed at any instant.  This package closes the
gap DESIGN.md §7 used to concede ("no ARIES-style WAL"):

* :mod:`repro.wal.log` — an append-only write-ahead log
  (``triggerman-wal-v1``): LSN-stamped, CRC-protected records with
  torn-tail detection on open and group-commit batching.  Physical page
  post-images from the storage engine and logical token-lifecycle records
  from the trigger engine share one totally-ordered log, so every durable
  prefix of it is a consistent state.
* :mod:`repro.wal.recovery` — analysis + redo from the last checkpoint.
  Page redo is idempotent (pageLSN comparison skips pages already durable
  at or beyond a record's LSN; full-image redo makes re-application safe),
  and token analysis reconstructs which update descriptors were dequeued
  but not finished so the engine replays them exactly once.
* :mod:`repro.wal.checkpoint` — fuzzy checkpoints: flush dirty pages under
  the WAL rule, record the durable page-LSN table plus in-flight token
  state, then compact the log.
* :mod:`repro.wal.faults` — a deterministic fault-injection harness:
  simulated disks whose unsynced writes vanish on :meth:`SimDisk.crash`,
  torn page/log writes, and counted crash points threaded through the
  engine's enqueue / dequeue / action sites.  ``tests/wal`` uses it to
  kill and recover the engine hundreds of times while checking firing-set
  equivalence against an uncrashed oracle run.
"""

from .log import (
    ACTION_FIRED,
    CHECKPOINT,
    PAGE_IMAGE,
    SYNC_ALWAYS,
    SYNC_GROUP,
    SYNC_OFF,
    TOKEN_DEQUEUE,
    TOKEN_DONE,
    TOKEN_ENQUEUE,
    FileLogStorage,
    MemoryLogStorage,
    WalRecord,
    WriteAheadLog,
)
from .recovery import RecoveryResult, TokenState, recover
from .checkpoint import take_checkpoint
from .faults import (
    CrashingLogStorage,
    CrashingPager,
    FaultInjector,
    SimCatalogStore,
    SimDisk,
    SimulatedCrash,
)

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "FileLogStorage",
    "MemoryLogStorage",
    "PAGE_IMAGE",
    "CHECKPOINT",
    "TOKEN_ENQUEUE",
    "TOKEN_DEQUEUE",
    "ACTION_FIRED",
    "TOKEN_DONE",
    "SYNC_OFF",
    "SYNC_GROUP",
    "SYNC_ALWAYS",
    "recover",
    "RecoveryResult",
    "TokenState",
    "take_checkpoint",
    "FaultInjector",
    "SimDisk",
    "SimulatedCrash",
    "CrashingPager",
    "CrashingLogStorage",
    "SimCatalogStore",
]
