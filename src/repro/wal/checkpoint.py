"""Fuzzy checkpoints: bound recovery work and let the log be compacted.

A checkpoint:

1. flushes every dirty, unpinned buffer frame (the buffer pool enforces
   the WAL rule — the log is durable through a frame's pageLSN before the
   page itself is written);
2. appends a CHECKPOINT record carrying the durable page-LSN table and
   the engine's in-flight token state (descriptors dequeued but not yet
   finished, each with the multiset of firing digests already durably
   executed);
3. forces the log, then (optionally) compacts it — records before the
   checkpoint can never be needed again, because every page is durable at
   or beyond their LSNs and every finished token's records are subsumed.

The checkpoint is *fuzzy* in the classical sense: it does not quiesce the
engine's queue — tokens may sit half-processed, which is exactly what the
``incomplete`` state in the record preserves.  Pinned dirty frames are
skipped (their pins are transient; the next checkpoint or flush catches
them) so a checkpoint never blocks on in-flight page accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .log import CHECKPOINT, WriteAheadLog


def take_checkpoint(
    pool,
    wal: WriteAheadLog,
    incomplete: Optional[List[dict]] = None,
    compact: bool = True,
    max_seq: int = 0,
    extra: Optional[Dict] = None,
) -> Dict[str, int]:
    """Checkpoint ``pool``'s dirty pages against ``wal``; returns a report
    dict (pages flushed, checkpoint LSN, log bytes before/after).

    ``incomplete`` is the engine-provided in-flight token state — a list of
    ``{"seq", "dataSrc", "op", "payload", "fired": {digest: count}}``
    entries (empty for a bare storage-level checkpoint).  ``max_seq`` is
    the queue's seq high-water mark; carrying it across compaction keeps
    seqs unique for the life of the log even after the records proving a
    seq was used are discarded.  ``extra`` merges additional engine state
    into the record (e.g. the temporal window-state snapshot under
    ``"windows"`` — compaction drops the WINDOW_EVENT records that built
    it, so the checkpoint must carry the equivalent state).
    """
    bytes_before = wal.size()
    pages_flushed = pool.flush()
    payload = {
        "v": 1,
        "page_lsns": [
            [name, page_no, lsn]
            for (name, page_no), lsn in sorted(wal.page_lsns.items())
        ],
        "incomplete": incomplete or [],
        "max_seq": max_seq,
    }
    if extra:
        payload.update(extra)
    lsn = wal.append_json(CHECKPOINT, payload)
    wal.flush()
    bytes_after = wal.size()
    if compact:
        bytes_after = wal.compact(keep_from_lsn=lsn)
    return {
        "pages_flushed": pages_flushed,
        "checkpoint_lsn": lsn,
        "log_bytes_before": bytes_before,
        "log_bytes_after": bytes_after,
        "incomplete_tokens": len(incomplete or []),
    }
