"""The write-ahead log proper (format ``triggerman-wal-v1``).

File layout::

    offset 0   8-byte magic  b"TWALv1\\x00\\n"
    then, per record:
        u32  payload length
        u32  crc32 over (lsn || type || payload)
        u64  LSN (monotonically increasing, never reused, survives restarts
             and compaction)
        u8   record type
        ...  payload bytes

A record is valid only if its header fits, its payload fits, and its CRC
matches — anything else marks the *torn tail* left by a crash mid-append,
and :class:`WriteAheadLog` truncates the log back to the last valid record
on open.  Because page images and logical token records share this one
totally-ordered log, every durable prefix is a consistent snapshot: a
token's dequeue record can never be durable without the page images it
depends on, and vice versa (see recovery.py for the ordering contract).

Appends are buffered for *group commit*: ``sync="always"`` makes every
append durable immediately (one fsync per record), ``sync="group"``
batches up to ``group_size`` records per fsync, ``sync="off"`` defers to
explicit flushes (checkpoint / close / the WAL rule).  The buffer lives
above the storage backend, so a crash simply drops it — exactly the
semantics the fault harness needs.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import WalError

MAGIC = b"TWALv1\x00\n"
_REC = struct.Struct("<IIQB")  # payload_len, crc32, lsn, type

#: record types
PAGE_IMAGE = 1  # physical page post-image (file name, page no, bytes)
CHECKPOINT = 2  # fuzzy checkpoint: page-LSN table + in-flight token state
TOKEN_ENQUEUE = 3  # informational: an update descriptor entered the queue
TOKEN_DEQUEUE = 4  # a descriptor left the queue (payload carried for replay)
ACTION_FIRED = 5  # one trigger firing executed (the durable firing ledger)
TOKEN_DONE = 6  # a descriptor finished processing (all firings executed)
WINDOW_EVENT = 7  # a token entered a temporal window (sliding-window state)

TYPE_NAMES = {
    PAGE_IMAGE: "page_image",
    CHECKPOINT: "checkpoint",
    TOKEN_ENQUEUE: "token_enqueue",
    TOKEN_DEQUEUE: "token_dequeue",
    ACTION_FIRED: "action_fired",
    TOKEN_DONE: "token_done",
    WINDOW_EVENT: "window_event",
}

SYNC_OFF = "off"
SYNC_GROUP = "group"
SYNC_ALWAYS = "always"
SYNC_MODES = (SYNC_OFF, SYNC_GROUP, SYNC_ALWAYS)

_PAGE_HDR = struct.Struct("<HI")  # file-name length, page number


@dataclass
class WalRecord:
    """One decoded log record."""

    lsn: int
    rtype: int
    payload: bytes

    def json(self) -> dict:
        return json.loads(self.payload.decode("utf-8"))

    def page_image(self) -> Tuple[str, int, bytes]:
        """Decode a PAGE_IMAGE payload to ``(file_name, page_no, data)``."""
        if self.rtype != PAGE_IMAGE:
            raise WalError(f"record {self.lsn} is not a page image")
        name_len, page_no = _PAGE_HDR.unpack_from(self.payload, 0)
        offset = _PAGE_HDR.size
        name = self.payload[offset : offset + name_len].decode("utf-8")
        data = zlib.decompress(self.payload[offset + name_len :])
        return name, page_no, data


def _crc(lsn: int, rtype: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<QB", lsn, rtype) + payload) & 0xFFFFFFFF


def encode_record(lsn: int, rtype: int, payload: bytes) -> bytes:
    return _REC.pack(len(payload), _crc(lsn, rtype, payload), lsn, rtype) + payload


def scan_records(data: bytes) -> Tuple[List[WalRecord], int]:
    """Decode every valid record; returns ``(records, valid_byte_count)``.

    Stops at the first structural or CRC mismatch — the torn tail a crash
    mid-append leaves behind.  ``valid_byte_count`` is where the log should
    be truncated to repair it.
    """
    if data[: len(MAGIC)] != MAGIC:
        if not data:
            return [], 0
        raise WalError("not a triggerman-wal-v1 log (bad magic)")
    records: List[WalRecord] = []
    offset = len(MAGIC)
    last_lsn = 0
    while True:
        if offset + _REC.size > len(data):
            break
        length, crc, lsn, rtype = _REC.unpack_from(data, offset)
        end = offset + _REC.size + length
        if end > len(data):
            break  # torn: payload cut short
        payload = bytes(data[offset + _REC.size : end])
        if _crc(lsn, rtype, payload) != crc:
            break  # torn or corrupt: stop here
        if lsn <= last_lsn:
            break  # LSNs are strictly increasing; garbage after compaction
        records.append(WalRecord(lsn, rtype, payload))
        last_lsn = lsn
        offset = end
    return records, offset


def scan_file(path: str) -> List[WalRecord]:
    """Offline scan of a log file (read-only, tolerates a torn tail).

    For auditing tools and tests that compare durable ledgers across
    processes — e.g. checking a cluster's per-shard ``ACTION_FIRED``
    records against a single-process oracle — without opening the log
    for appends."""
    with open(path, "rb") as fh:
        records, _valid = scan_records(fh.read())
    return records


class LogStorage:
    """Backend byte store for the log.  ``append`` must be durable once
    ``sync`` returns; implementations may buffer before that."""

    def read_all(self) -> bytes:
        raise NotImplementedError

    def append(self, data: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def truncate_to(self, size: int) -> None:
        raise NotImplementedError

    def replace(self, data: bytes) -> None:
        """Atomically replace the whole log (compaction)."""
        raise NotImplementedError

    def size(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        pass


class FileLogStorage(LogStorage):
    """A real file; ``sync`` is an ``fsync``."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "ab+")

    def read_all(self) -> bytes:
        self._fh.seek(0)
        return self._fh.read()

    def append(self, data: bytes) -> None:
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(data)

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate_to(self, size: int) -> None:
        self._fh.truncate(size)

    def replace(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab+")

    def size(self) -> int:
        self._fh.seek(0, os.SEEK_END)
        return self._fh.tell()

    def close(self) -> None:
        try:
            self._fh.flush()
        finally:
            self._fh.close()


class MemoryLogStorage(LogStorage):
    """Bytes held in memory (in-memory databases and unit tests; the fault
    harness subclasses this with crash/torn-write semantics)."""

    def __init__(self) -> None:
        self.data = bytearray()

    def read_all(self) -> bytes:
        return bytes(self.data)

    def append(self, data: bytes) -> None:
        self.data += data

    def sync(self) -> None:
        pass

    def truncate_to(self, size: int) -> None:
        del self.data[size:]

    def replace(self, data: bytes) -> None:
        self.data = bytearray(data)

    def size(self) -> int:
        return len(self.data)


class WriteAheadLog:
    """The log manager: LSN assignment, group commit, page-LSN tracking.

    One instance serves one database (and the trigger engine above it).
    Thread-safe: appends and flushes are serialized by an internal lock.
    """

    def __init__(
        self,
        storage: LogStorage,
        sync: str = SYNC_GROUP,
        group_size: int = 128,
        faults: Optional["FaultInjectorProtocol"] = None,
    ):
        if sync not in SYNC_MODES:
            raise WalError(f"unknown sync mode {sync!r} (want one of {SYNC_MODES})")
        self.storage = storage
        self.sync_mode = sync
        self.group_size = max(1, group_size)
        self.faults = faults
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        #: True while one leader thread is inside storage append+sync
        self._flushing = False
        self._buffer: List[bytes] = []
        #: last LSN handed out (buffered or durable)
        self.last_lsn = 0
        #: last LSN guaranteed on stable storage
        self.durable_lsn = 0
        #: durable LSN per (file name, page no) — the page-LSN table.
        #: Seeded from the last checkpoint by recovery, updated on every
        #: page-image append, snapshotted into the next checkpoint.
        self.page_lsns: Dict[Tuple[str, int], int] = {}
        #: accounting (exposed as registry gauges by the engine)
        self.appends = 0
        self.fsyncs = 0
        self.bytes_appended = 0
        self.page_images = 0
        #: flush calls that piggybacked on another thread's in-flight fsync
        #: (group commit under concurrent drivers)
        self.group_commit_waits = 0
        # Repair the torn tail (if any) and resume LSN assignment.
        existing = storage.read_all()
        if existing:
            records, valid = scan_records(existing)
            if valid < len(existing):
                storage.truncate_to(valid)
            if records:
                self.last_lsn = self.durable_lsn = records[-1].lsn
        else:
            storage.append(MAGIC)
            storage.sync()

    # -- fault-injection hook ------------------------------------------------

    def fault(self, site: str) -> None:
        """Hit a named crash point (no-op without an injector)."""
        if self.faults is not None:
            self.faults.hit(site)

    # -- appending -----------------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> int:
        """Buffer one record; returns its LSN.  Durability follows the sync
        mode (``always`` flushes now, ``group`` flushes every
        ``group_size`` records, ``off`` waits for an explicit flush)."""
        with self._lock:
            lsn = self._append_locked(rtype, payload)
            self._maybe_flush_locked(lsn)
            return lsn

    def _append_locked(self, rtype: int, payload: bytes) -> int:
        self.fault("wal.append")
        self.last_lsn += 1
        lsn = self.last_lsn
        encoded = encode_record(lsn, rtype, payload)
        self._buffer.append(encoded)
        self.appends += 1
        self.bytes_appended += len(encoded)
        return lsn

    def _maybe_flush_locked(self, lsn: int) -> None:
        if self.sync_mode == SYNC_ALWAYS or (
            self.sync_mode == SYNC_GROUP
            and len(self._buffer) >= self.group_size
        ):
            self._flush_locked(lsn)

    def append_many(self, rtype: int, payloads: List[bytes]) -> List[int]:
        """Buffer a batch of records of one type under a single lock
        acquisition; returns their LSNs in order.

        Each record still passes the ``wal.append`` crash point (a fault
        armed mid-batch loses the batch's unappended suffix, like a loop of
        single appends would), but at most one group-commit flush runs —
        covering the whole batch — instead of one per record under
        ``sync="always"``.
        """
        if not payloads:
            return []
        with self._lock:
            lsns = [self._append_locked(rtype, p) for p in payloads]
            self._maybe_flush_locked(lsns[-1])
            return lsns

    def append_json(self, rtype: int, obj: dict) -> int:
        return self.append(rtype, json.dumps(obj, sort_keys=True).encode("utf-8"))

    def append_json_many(self, rtype: int, objs: List[dict]) -> List[int]:
        return self.append_many(
            rtype,
            [json.dumps(o, sort_keys=True).encode("utf-8") for o in objs],
        )

    def log_page(self, file_name: str, page_no: int, data: bytes) -> int:
        """Append a physical page post-image; returns its LSN (the page's
        new pageLSN, stamped onto the buffer frame by the caller)."""
        name_bytes = file_name.encode("utf-8")
        payload = (
            _PAGE_HDR.pack(len(name_bytes), page_no)
            + name_bytes
            + zlib.compress(bytes(data), 1)
        )
        with self._lock:
            lsn = self._append_locked(PAGE_IMAGE, payload)
            self.page_lsns[(file_name, page_no)] = lsn
            self.page_images += 1
            self._maybe_flush_locked(lsn)
            return lsn

    # -- durability ----------------------------------------------------------

    def flush(self, upto: Optional[int] = None) -> None:
        """Make every buffered record durable (group commit: one write, one
        fsync).  ``upto`` is an optimization hint: a no-op when the log is
        already durable through that LSN."""
        with self._lock:
            if upto is not None and self.durable_lsn >= upto:
                return
            self._flush_locked(self.last_lsn if upto is None else upto)

    def _flush_locked(self, target: Optional[int] = None) -> None:
        """Single-writer group commit (call with the log lock held).

        One *leader* thread at a time owns the storage append+fsync; it
        releases the log lock for the I/O so concurrent appends keep
        accumulating into the next group.  *Followers* whose records are
        covered by an in-flight flush park on the condition variable and
        return once ``durable_lsn`` passes their target — one fsync commits
        the whole group."""
        if target is None:
            target = self.last_lsn
        while self._flushing:
            if self.durable_lsn >= target:
                return
            self.group_commit_waits += 1
            self._cv.wait()
        if self.durable_lsn >= target or not self._buffer:
            return
        data = b"".join(self._buffer)
        # The buffer is dropped first: if the storage crashes mid-append
        # (fault injection), the unwritten suffix is lost — exactly what a
        # real crash does to an OS-buffered write.
        self._buffer = []
        pending_lsn = self.last_lsn
        self._flushing = True
        self._lock.release()
        try:
            try:
                self.storage.append(data)
                self.fault("wal.sync")
                self.storage.sync()
            finally:
                self._lock.acquire()
        finally:
            self._flushing = False
            self._cv.notify_all()
        self.fsyncs += 1
        self.durable_lsn = pending_lsn

    # -- reading / maintenance -----------------------------------------------

    def scan(self) -> List[WalRecord]:
        """Every durable record, in LSN order (used by recovery and the
        console's ``recover`` dry run — the unsynced buffer is excluded)."""
        records, _valid = scan_records(self.storage.read_all())
        return records

    def compact(self, keep_from_lsn: int) -> int:
        """Drop durable records with LSN < ``keep_from_lsn`` (everything
        before the latest checkpoint).  Returns the new byte size."""
        with self._lock:
            self._flush_locked()
            kept = [
                encode_record(r.lsn, r.rtype, r.payload)
                for r in self.scan()
                if r.lsn >= keep_from_lsn
            ]
            self.storage.replace(MAGIC + b"".join(kept))
            return self.storage.size()

    def size(self) -> int:
        return self.storage.size()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self.storage.close()


class FaultInjectorProtocol:
    """Anything with a ``hit(site)`` method (see faults.FaultInjector)."""

    def hit(self, site: str) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError
