"""Reproduction of "Scalable Trigger Processing" (Hanson et al., ICDE 1999).

The public API re-exports the TriggerMan facade and the pieces a downstream
user typically touches:

>>> from repro import TriggerMan
>>> tman = TriggerMan.in_memory()
>>> tman.define_table("emp", [("name", "varchar(40)"), ("salary", "float")])
>>> tman.execute_command(
...     "create trigger bigSalary from emp on insert "
...     "when emp.salary > 80000 do raise event BigSalary(emp.name)"
... )
>>> tman.insert("emp", {"name": "Ada", "salary": 120000.0})
>>> tman.process_all()

See README.md for the architecture overview and DESIGN.md for the full
system inventory.  Top-level names resolve lazily (PEP 562) so that using
one subsystem (say :mod:`repro.sql`) does not import the rest.
"""

__version__ = "1.0.0"

_LAZY = {
    "TriggerMan": ("repro.engine.triggerman", "TriggerMan"),
    "Operation": ("repro.engine.descriptors", "Operation"),
    "UpdateDescriptor": ("repro.engine.descriptors", "UpdateDescriptor"),
    "Database": ("repro.sql.database", "Database"),
    "TriggerManServer": ("repro.net.server", "TriggerManServer"),
    "RemoteTriggerManClient": ("repro.net.remote", "RemoteTriggerManClient"),
    "RemoteDataSourceProgram": ("repro.net.remote", "RemoteDataSourceProgram"),
    "ClusterCoordinator": ("repro.cluster.coordinator", "ClusterCoordinator"),
    "ClusterClient": ("repro.cluster.client", "ClusterClient"),
    "ClusterDataSourceProgram": (
        "repro.cluster.client", "ClusterDataSourceProgram",
    ),
    "HashRing": ("repro.cluster.ring", "HashRing"),
}

__all__ = list(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
