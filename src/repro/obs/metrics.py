"""The metrics registry: counters, gauges, histograms, ns timers.

Design constraints (ISSUE 1):

* **near-zero overhead when disabled** — every mutator starts with one
  attribute read (``registry.enabled``); disabled timer contexts are a
  shared singleton, so the fast path allocates nothing;
* **one stats story** — existing ad-hoc counters (``IndexStats``,
  ``CacheStats``, ``BufferStats``, ``EngineStats``) are folded in as
  *callback gauges*: they keep their cheap dataclass increments on the hot
  path, and the registry reads them only at snapshot time;
* **process-global default registry plus per-instance registries** —
  library users share :func:`default_registry`; every ``TriggerMan`` owns
  its own :class:`MetricsRegistry` so two engines in one process do not
  mix numbers.

Histograms keep a bounded window of recent samples (default 8192) plus
exact count/sum/min/max, so percentiles are over the recent window while
totals stay exact.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TIMER",
    "default_registry",
]


class _NullTimer:
    """Shared no-op timer context (the disabled-mode zero-allocation path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_TIMER = _NullTimer()


class Metric:
    """Base: a named metric owned by one registry."""

    __slots__ = ("registry", "name", "help")
    kind = "abstract"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def value_snapshot(self) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing counter.

    ``always=True`` makes the counter count even while the registry is
    disabled — the thread-safe backing store for accounting that must never
    lose updates (e.g. ``EngineStats`` under concurrent drivers), replacing
    bare ``int`` increments that drop under interleaving.
    """

    __slots__ = ("_value", "_lock", "_always")
    kind = "counter"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        always: bool = False,
    ):
        super().__init__(registry, name, help)
        self._value = 0
        self._lock = threading.Lock()
        self._always = always

    def inc(self, amount: int = 1) -> None:
        if not (self._always or self.registry.enabled):
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def value_snapshot(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(Metric):
    """A point-in-time value: either set explicitly or read from a callback.

    Callback gauges are the bridge to the pre-existing stats dataclasses:
    the callback runs only at snapshot time, so the observed hot path pays
    nothing.  Callback gauges report even when the registry is disabled
    (their sources are always-on counters); settable gauges respect the
    enabled flag like counters do.
    """

    __slots__ = ("_value", "_callback")
    kind = "gauge"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        callback: Optional[Callable[[], Any]] = None,
    ):
        super().__init__(registry, name, help)
        self._value: Any = 0
        self._callback = callback

    def set(self, value: Any) -> None:
        if not self.registry.enabled:
            return
        self._value = value

    @property
    def value(self) -> Any:
        if self._callback is not None:
            return self._callback()
        return self._value

    def value_snapshot(self) -> Any:
        try:
            return self.value
        except Exception:  # noqa: BLE001 - a broken callback must not sink stats
            return None

    def reset(self) -> None:
        if self._callback is None:
            self._value = 0


class Histogram(Metric):
    """Sample distribution: exact count/sum/min/max, windowed percentiles."""

    __slots__ = ("_lock", "_samples", "count", "total", "min", "max")
    kind = "histogram"

    #: recent-sample window used for percentile estimates
    WINDOW = 8192

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._lock = threading.Lock()
        self._samples: Deque[float] = deque(maxlen=self.WINDOW)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if not self.registry.enabled:
            return
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def time(self) -> Any:
        """A context manager that observes the elapsed nanoseconds."""
        if not self.registry.enabled:
            return NULL_TIMER
        return _Timer(self)

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0 <= q <= 100) over the recent window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        if len(samples) == 1:
            return samples[0]
        # Linear interpolation between closest ranks.
        rank = (q / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        fraction = rank - low
        return samples[low] + (samples[high] - samples[low]) * fraction

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def value_snapshot(self) -> Dict[str, Any]:
        return self.summary()

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


class _Timer:
    """Times one block and records the elapsed time in nanoseconds."""

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.histogram.observe(time.perf_counter_ns() - self._start)
        return False


class MetricsRegistry:
    """A named collection of metrics with a single enable switch.

    Metric accessors are create-or-return: ``registry.counter("x")`` always
    hands back the same object, so callers can pre-bind metrics once and
    mutate them without per-call dict lookups.
    """

    def __init__(self, enabled: bool = True, namespace: str = ""):
        self.enabled = enabled
        self.namespace = namespace
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.RLock()

    # -- switches ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- metric accessors --------------------------------------------------

    def _get(self, cls: type, name: str, **kwargs: Any) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{cls.kind}"  # type: ignore[attr-defined]
                )
            return metric

    def counter(
        self, name: str, help: str = "", always: bool = False
    ) -> Counter:
        counter = self._get(Counter, name, help=help)
        if always:
            counter._always = True  # type: ignore[attr-defined]
        return counter  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], Any]] = None,
    ) -> Gauge:
        gauge = self._get(Gauge, name, help=help)  # type: ignore[assignment]
        if callback is not None:
            gauge._callback = callback  # type: ignore[attr-defined]
        return gauge  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help=help)  # type: ignore[return-value]

    def timer(self, name: str) -> Any:
        """Shorthand: a timing context over ``histogram(name)``."""
        if not self.enabled:
            return NULL_TIMER
        return self.histogram(name).time()

    # -- introspection -----------------------------------------------------

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """A flat ``name -> value`` dict (histograms become summary dicts)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.value_snapshot() for name, metric in metrics}

    def reset(self) -> None:
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


_DEFAULT = MetricsRegistry(enabled=False, namespace="default")


def default_registry() -> MetricsRegistry:
    """The process-global registry (disabled until someone enables it)."""
    return _DEFAULT
