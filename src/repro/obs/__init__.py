"""Observability: metrics, token tracing, and EXPLAIN-style introspection.

The paper's scalability story (§5–§6) is about *where tokens spend time* —
signature matching, constant-set probes, rest-of-predicate tests, network
joins, task dispatch.  This package gives every one of those stages a
uniform way to be observed:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with nanosecond timer contexts.  Near-zero overhead when
  disabled; a process-global default registry plus per-``TriggerMan``
  instance registries.
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` that tags each update
  descriptor with a trace id and records spans as the token moves
  queue → predicate-index probe → constant-set organization →
  rest-of-predicate → trigger cache pin → network nodes → task queue →
  action execution.  Exportable as JSON and as a human-readable tree.
* :mod:`repro.obs.explain` — ``explain trigger <name>`` and ``stats``
  renderings for the console and client.
* :mod:`repro.obs.export` — machine-readable benchmark export
  (``BENCH_PR*.json``: throughput, p50/p99 latencies, per-stage shares).

:class:`Observability` bundles one metrics registry and one trace recorder;
every engine component holds (or is handed) one of these bundles and guards
its instrumentation with cheap ``enabled`` checks.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry, default_registry
from .trace import TraceRecorder


class Observability:
    """One engine's observability bundle: metrics + tracing.

    Both halves start disabled unless requested, so an un-observed engine
    pays only boolean guard checks on its hot paths.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        *,
        enable_metrics: bool = False,
        enable_trace: bool = False,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=enable_metrics
        )
        self.trace = trace if trace is not None else TraceRecorder(
            enabled=enable_trace
        )

    def enable(self) -> None:
        """Turn on both metrics timing and token tracing."""
        self.metrics.enable()
        self.trace.enable()

    def disable(self) -> None:
        self.metrics.disable()
        self.trace.disable()

    @property
    def any_enabled(self) -> bool:
        return self.metrics.enabled or self.trace.enabled


__all__ = [
    "Observability",
    "MetricsRegistry",
    "TraceRecorder",
    "default_registry",
]
