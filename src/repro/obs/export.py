"""Machine-readable benchmark export: the ``BENCH_PR*.json`` trajectory.

Benchmarks call :func:`record` with whatever they measured (throughput,
latency percentiles, per-stage time shares); the benchmark session's
conftest calls :func:`write` once at session end to produce one JSON file
that future PRs diff against.

Schema (``triggerman-bench-v1``)::

    {"schema": "triggerman-bench-v1",
     "created": "<iso8601>",
     "python": "3.11.x", "platform": "...",
     "records": [{"experiment": "E10", "...": ...}, ...],
     "tables": {"<experiment>": {"header": [...], "rows": [[...], ...]}}}

Helpers:

* :func:`latency_summary` — p50/p99/mean out of a metrics histogram;
* :func:`stage_shares` — per-stage time shares from the ``*_ns`` stage
  histograms, relative to the whole-token histogram.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
import threading
from typing import Any, Dict, List, Optional

from .metrics import Histogram, MetricsRegistry

SCHEMA = "triggerman-bench-v1"

#: stage histogram -> share label (relative to engine.token_ns)
STAGE_HISTOGRAMS = {
    "index.match_ns": "index_probe",
    "cache.pin_ns": "cache_pin",
    "network.activate_ns": "network",
    "task.run_ns": "task",
    "action.run_ns": "action",
}

_RECORDS: List[Dict[str, Any]] = []
_LOCK = threading.Lock()


def record(experiment: str, **fields: Any) -> Dict[str, Any]:
    """Add one benchmark record to the session export."""
    entry = {"experiment": experiment, **fields}
    with _LOCK:
        _RECORDS.append(entry)
    return entry


def records() -> List[Dict[str, Any]]:
    with _LOCK:
        return list(_RECORDS)


def reset() -> None:
    with _LOCK:
        _RECORDS.clear()


def latency_summary(histogram: Histogram) -> Dict[str, Any]:
    """p50/p90/p99/mean (ns) of one timing histogram."""
    summary = histogram.summary()
    return {
        "count": summary["count"],
        "mean_ns": summary["mean"],
        "p50_ns": summary["p50"],
        "p90_ns": summary["p90"],
        "p99_ns": summary["p99"],
        "max_ns": summary["max"],
    }


def stage_shares(
    registry: MetricsRegistry, total_name: str = "engine.token_ns"
) -> Dict[str, float]:
    """Fraction of total token time spent in each instrumented stage.

    Stages overlap (the network span nests inside the token span), so the
    shares describe where time goes, not a partition summing to 1.0.
    """
    total = registry.get(total_name)
    if not isinstance(total, Histogram) or not total.total:
        return {}
    shares: Dict[str, float] = {}
    for name, label in STAGE_HISTOGRAMS.items():
        metric = registry.get(name)
        if isinstance(metric, Histogram) and metric.count:
            shares[label] = metric.total / total.total
    return shares


def build_payload(
    tables: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "records": records(),
        "tables": tables or {},
    }
    if extra:
        payload.update(extra)
    return payload


def write(
    path: str,
    tables: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Serialize the session's records to ``path``; returns the path."""
    payload = build_payload(tables, extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return path
