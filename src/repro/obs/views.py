"""Registry views over the engine's component stats.

Folds the pre-existing stat structures (IndexStats, CacheStats,
BufferStats, queue/task/WAL accounting) into one TriggerMan instance's
metrics registry as *callback gauges*: one stats story, zero hot-path cost
— the callbacks run only at snapshot time.

The three headline counters (``engine.tokens_processed``,
``engine.triggers_fired``, ``engine.actions_executed``) are NOT gauges:
:class:`repro.engine.firing.EngineStats` registers them directly as
always-on counters in the same registry, so they appear in snapshots
without a view here (registering a gauge under a counter's name would be a
kind mismatch).
"""

from __future__ import annotations


def register_cluster_views(coordinator) -> None:
    """Bind cluster-shape gauges to the coordinator's metrics registry.

    Same callback-gauge pattern as the engine views: membership, epoch,
    failure-detector verdicts, and journal size are read only at snapshot
    time.  Per-shard liveness appears as ``cluster.shard.<id>.up`` so a
    scrape can tell *which* member the detector distrusts, not just how
    many."""
    gauge = coordinator.metrics.gauge
    shards = coordinator.shards
    gauge("cluster.shards", "cluster members", callback=lambda: len(shards))
    gauge(
        "cluster.epoch", "current shard-map epoch",
        callback=lambda: coordinator.epoch,
    )
    gauge(
        "cluster.shards_up", "members the failure detector trusts",
        callback=lambda: sum(1 for s in shards.values() if s.up),
    )
    gauge(
        "cluster.triggers_tracked", "journaled trigger placements",
        callback=lambda: len(coordinator.triggers),
    )
    for shard_id in shards:
        gauge(
            f"cluster.shard.{shard_id}.up",
            "1 while the failure detector trusts this member",
            callback=lambda sid=shard_id: int(
                sid in shards and shards[sid].up
            ),
        )


def register_engine_views(tman) -> None:
    """Bind every component-stats view to ``tman.obs.metrics``."""
    gauge = tman.obs.metrics.gauge
    index, cache = tman.index, tman.cache
    firing = tman.firing
    gauge("engine.action_failures", callback=lambda: len(tman.actions.failures))
    gauge("index.tokens", callback=lambda: index.stats.tokens)
    gauge("index.groups_probed", callback=lambda: index.stats.groups_probed)
    gauge("index.entries_probed", callback=lambda: index.stats.entries_probed)
    gauge("index.residual_tests", callback=lambda: index.stats.residual_tests)
    gauge("index.matches", callback=lambda: index.stats.matches)
    gauge(
        "index.or_arm_hits",
        "matches served through a decomposed disjunct arm",
        callback=lambda: index.stats.or_arm_hits,
    )
    gauge(
        "index.or_arm_dedups",
        "sibling-arm matches suppressed by the per-token tag dedupe",
        callback=lambda: index.stats.or_arm_dedups,
    )
    gauge(
        "index.groups_pruned",
        "emptied signature groups unregistered from the index",
        callback=lambda: index.stats.groups_pruned,
    )
    gauge("index.signatures", callback=index.signature_count)
    gauge("index.entries", callback=index.entry_count)
    from ..lang.compiler import STATS as compiler_stats
    from ..predindex import entry as predindex_entry

    gauge("compiler.enabled", callback=lambda: int(index.compile_predicates))
    gauge("compiler.compiles", callback=lambda: compiler_stats.compiles)
    gauge(
        "compiler.compile_failures",
        callback=lambda: compiler_stats.compile_failures,
    )
    gauge("compiler.cache_hits", callback=lambda: compiler_stats.cache_hits)
    gauge(
        "compiler.cache_misses", callback=lambda: compiler_stats.cache_misses
    )
    gauge(
        "compiler.runtime_fallbacks",
        callback=lambda: compiler_stats.runtime_fallbacks,
    )
    gauge(
        "compiler.cached_matchers",
        callback=lambda: len(predindex_entry._MATCHER_CACHE),
    )
    gauge(
        "compiler.cached_templates",
        callback=lambda: len(predindex_entry._TEMPLATE_CACHE),
    )
    gauge(
        "compiler.cache_entries",
        "live entries across both compiled-residual cache levels",
        callback=predindex_entry.compiled_cache_entries,
    )
    gauge("cache.hits", callback=lambda: cache.stats.hits)
    gauge("cache.misses", callback=lambda: cache.stats.misses)
    gauge("cache.evictions", callback=lambda: cache.stats.evictions)
    gauge("cache.pins", callback=lambda: cache.stats.pins)
    gauge("cache.unpins", callback=lambda: cache.stats.unpins)
    gauge("cache.load_waits", callback=lambda: cache.stats.load_waits)
    gauge("cache.dropped_pins", callback=lambda: cache.stats.dropped_pins)
    gauge("cache.resident", callback=lambda: len(cache))
    gauge("cache.resident_bytes", callback=cache.resident_bytes)
    gauge("cache.pinned", callback=cache.pinned_count)
    # -- memory-scale views (interning, spill, re-hydration) ----------------
    from ..condition.signature import interned_signature_count

    runtimes = tman.runtimes
    gauge(
        "signatures.interned",
        "process-wide interned expression signatures",
        callback=interned_signature_count,
    )
    gauge(
        "cache.spills",
        "descriptions evicted to their compact catalog form",
        callback=lambda: cache.stats.evictions,
    )
    gauge(
        "cache.rehydrates",
        "loads served by shape+description instantiation",
        callback=lambda: runtimes.rehydrates,
    )
    gauge(
        "cache.reparses",
        "loads that re-parsed the full trigger text",
        callback=lambda: runtimes.reparses,
    )
    gauge(
        "catalog.shapes",
        "trigger shape rows (one per structural class)",
        callback=tman.catalog.shape_count,
    )
    gauge(
        "catalog.descriptions",
        "compact per-trigger description rows",
        callback=tman.catalog.description_count,
    )
    pool = tman.catalog_db.pool
    gauge("buffer.hits", callback=lambda: pool.stats.hits)
    gauge("buffer.misses", callback=lambda: pool.stats.misses)
    gauge("buffer.evictions", callback=lambda: pool.stats.evictions)
    gauge("buffer.writebacks", callback=lambda: pool.stats.writebacks)
    gauge("buffer.flush_pages", callback=lambda: dict(pool.flush_pages))
    gauge("buffer.fsyncs", callback=pool.total_fsyncs)
    wal = tman.catalog_db.wal
    if wal is not None:
        gauge("wal.appends", callback=lambda: wal.appends)
        gauge("wal.fsyncs", callback=lambda: wal.fsyncs)
        gauge("wal.bytes_appended", callback=lambda: wal.bytes_appended)
        gauge("wal.page_images", callback=lambda: wal.page_images)
        gauge("wal.last_lsn", callback=lambda: wal.last_lsn)
        gauge("wal.durable_lsn", callback=lambda: wal.durable_lsn)
        gauge(
            "wal.group_commit_waits",
            callback=lambda: wal.group_commit_waits,
        )
        gauge("wal.inflight_tokens", callback=lambda: len(firing.inflight))
        gauge("wal.replay_tokens", callback=lambda: len(firing.replay))
    recovery = tman.catalog_db.recovery
    if recovery is not None:
        gauge("recovery.records_scanned",
              callback=lambda: recovery.records_scanned)
        gauge("recovery.redo_applied",
              callback=lambda: recovery.redo_applied)
        gauge("recovery.redo_skipped",
              callback=lambda: recovery.redo_skipped)
        gauge("recovery.tokens_replayed",
              callback=lambda: len(recovery.incomplete))
