"""Token tracing: spans for one update descriptor's trip through the engine.

When tracing is on, :meth:`TraceRecorder.begin` tags each captured
:class:`~repro.engine.descriptors.UpdateDescriptor` with a trace id; the
engine then records *spans* — named, nanosecond-stamped stages — as the
token moves::

    queue  →  index.probe  →  org.probe  →  residual.test
           →  cache.pin    →  network.<node>  →  task.run  →  action.execute

Spans nest (depth is tracked per thread), so the export renders both as a
flat JSON list and as an indented tree.  The recorder keeps a bounded
number of recent traces (oldest evicted) and records nothing when disabled
or when no trace is current, so untraced processing pays only a boolean
check.

Trace JSON schema (see API.md)::

    {"schema": "triggerman-trace-v1",
     "traces": [
       {"trace_id": 7, "data_source": "emp", "operation": "insert",
        "seq": 12, "started_ns": 123, "spans": [
          {"stage": "queue", "start_ns": 123, "end_ns": 456,
           "depth": 0, "detail": {"seq": 12}} ... ]}]}
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "TraceRecorder"]


@dataclass
class Span:
    """One stage of one token's journey."""

    stage: str
    start_ns: int
    end_ns: int
    depth: int = 0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "depth": self.depth,
            "detail": self.detail,
        }


@dataclass
class Trace:
    """All spans recorded for one update descriptor."""

    trace_id: int
    data_source: str
    operation: str
    seq: int
    started_ns: int
    spans: List[Span] = field(default_factory=list)

    def stages(self) -> List[str]:
        """Stage names in start order (ties broken by recording order)."""
        return [s.stage for s in sorted(self.spans, key=lambda s: s.start_ns)]

    def duration_ns(self) -> int:
        if not self.spans:
            return 0
        return max(s.end_ns for s in self.spans) - self.started_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "data_source": self.data_source,
            "operation": self.operation,
            "seq": self.seq,
            "started_ns": self.started_ns,
            "spans": [s.to_dict() for s in self.spans],
        }


class TraceRecorder:
    """Records per-token spans; disabled by default.

    ``begin()`` stamps descriptors at capture time; the engine makes the
    stamped id *current* for a thread with :meth:`token` while it processes
    that token, and every component in between calls :meth:`span` /
    :meth:`record` without needing the id threaded through its signature.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_traces: int = 256,
        clock=time.perf_counter_ns,
    ):
        self.enabled = enabled
        self.max_traces = max_traces
        self.clock = clock
        self._traces: "OrderedDict[int, Trace]" = OrderedDict()
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- switches ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; already-collected traces stay readable."""
        self.enabled = False

    # -- trace lifecycle ---------------------------------------------------

    def begin(self, descriptor):
        """Tag a descriptor with a fresh trace id; returns the stamped copy.

        No-op (returns the descriptor unchanged) when disabled.
        """
        if not self.enabled:
            return descriptor
        import dataclasses

        with self._lock:
            trace_id = self._next_id
            self._next_id += 1
            self._traces[trace_id] = Trace(
                trace_id=trace_id,
                data_source=descriptor.data_source,
                operation=descriptor.operation,
                seq=descriptor.seq,
                started_ns=self.clock(),
            )
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        return dataclasses.replace(descriptor, trace_id=trace_id)

    def current_id(self) -> int:
        """The trace id current on this thread (0 when none)."""
        return getattr(self._local, "current", 0)

    @contextmanager
    def token(self, trace_id: int) -> Iterator[None]:
        """Make ``trace_id`` current for the calling thread."""
        previous = getattr(self._local, "current", 0)
        previous_depth = getattr(self._local, "depth", 0)
        self._local.current = trace_id
        self._local.depth = 0
        try:
            yield
        finally:
            self._local.current = previous
            self._local.depth = previous_depth

    # -- span recording ----------------------------------------------------

    def record(
        self,
        stage: str,
        start_ns: int,
        end_ns: int,
        detail: Optional[Dict[str, Any]] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        """Append one finished span to a trace (current trace by default)."""
        if not self.enabled:
            return
        tid = trace_id if trace_id is not None else self.current_id()
        if not tid:
            return
        span = Span(
            stage=stage,
            start_ns=start_ns,
            end_ns=end_ns,
            depth=getattr(self._local, "depth", 0),
            detail=detail or {},
        )
        with self._lock:
            trace = self._traces.get(tid)
            if trace is not None:
                trace.spans.append(span)

    def event(
        self,
        stage: str,
        detail: Optional[Dict[str, Any]] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        """A zero-duration span stamped 'now'."""
        now = self.clock()
        self.record(stage, now, now, detail, trace_id)

    @contextmanager
    def span(self, stage: str, **detail: Any) -> Iterator[None]:
        """Record a nested span around a block (no-op without a current
        trace)."""
        if not self.enabled or not self.current_id():
            yield
            return
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self._local.depth = depth
            self.record(stage, start, end, detail or None)

    def record_dequeue(self, descriptor) -> None:
        """The 'queue' span: capture/enqueue time → dequeue time."""
        if not self.enabled or not descriptor.trace_id:
            return
        with self._lock:
            trace = self._traces.get(descriptor.trace_id)
        if trace is None:
            return
        self.record(
            "queue",
            trace.started_ns,
            self.clock(),
            {"seq": descriptor.seq},
            trace_id=descriptor.trace_id,
        )

    # -- export ------------------------------------------------------------

    def traces(self) -> List[Trace]:
        with self._lock:
            return list(self._traces.values())

    def get(self, trace_id: int) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def last(self) -> Optional[Trace]:
        with self._lock:
            if not self._traces:
                return None
            return next(reversed(self._traces.values()))

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "schema": "triggerman-trace-v1",
                "traces": [t.to_dict() for t in self.traces()],
            },
            indent=indent,
            default=str,
        )

    def render(self, trace_id: Optional[int] = None) -> str:
        """Human-readable tree of one trace (the last one by default)."""
        trace = self.get(trace_id) if trace_id is not None else self.last()
        if trace is None:
            return "(no traces recorded)"
        out = [
            f"trace {trace.trace_id}  {trace.data_source}:{trace.operation}"
            f"  seq={trace.seq}  total={_fmt_ns(trace.duration_ns())}"
        ]
        for span in sorted(trace.spans, key=lambda s: (s.start_ns, s.depth)):
            pad = "  " * (span.depth + 1)
            detail = ""
            if span.detail:
                detail = "  " + ", ".join(
                    f"{k}={v}" for k, v in span.detail.items()
                )
            out.append(
                f"{pad}{span.stage:<24} {_fmt_ns(span.duration_ns):>10}{detail}"
            )
        return "\n".join(out)


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1_000_000_000:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1_000:.1f}µs"
    return f"{ns}ns"
