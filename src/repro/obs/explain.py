"""EXPLAIN-style introspection: ``explain trigger <name>`` and ``stats``.

``explain_trigger`` renders everything §5.1 computed for a trigger: the
condition graph, the per-tuple-variable analyzed predicate (its expression
signature, the chosen most-selective indexable conjunct, the extracted
constants, and the rest-of-predicate residual), the signature equivalence
class each predicate landed in, and — crucially for §5.2 — the constant-set
organization strategy *actually in use* right now (the AutoOrganization
migrates classes between strategies as they grow).

``render_stats`` renders one engine's merged metrics snapshot: the
registry-backed views over the legacy stat dataclasses plus any timing
histograms collected while metrics were enabled.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: §5.2 strategy numbers for the four constant-set organizations.
STRATEGY_NUMBERS = {
    "memory_list": 1,
    "memory_index": 2,
    "db_table": 3,
    "db_table_indexed": 4,
}


def describe_strategy(name: str) -> str:
    number = STRATEGY_NUMBERS.get(name)
    if number is None:
        return name
    return f"{name} (§5.2 strategy {number})"


def _describe_indexable(signature) -> str:
    """One line on E_I: which conjunct the analyzer picked and how it
    probes (§5.1's 'most selective conjunct' choice for ranges)."""
    part = signature.indexable
    constants = ", ".join(f"CONSTANT_{n}" for n in part.constant_numbers)
    if part.kind == "equality":
        return (
            f"equality on ({', '.join(part.columns)}) = ({constants}) "
            "[composite hash key]"
        )
    if part.kind == "range":
        return (
            f"range {part.columns[0]} {part.op} {constants} "
            "[most selective conjunct]"
        )
    if part.kind == "interval":
        return (
            f"interval {part.columns[0]} BETWEEN {constants} "
            "[most selective conjunct]"
        )
    if part.kind == "set":
        return f"set {part.columns[0]} IN ({constants})"
    return "none (every probe falls through to the residual test)"


def explain_trigger(tman, name: str) -> str:
    """Describe one trigger: condition graph, predicate analysis, signature
    equivalence classes (with their live §5.2 organization strategy), the
    discrimination network layout, and run counters."""
    from ..engine.trigger import analyze_trigger

    trigger_id = tman.catalog.trigger_id(name)
    # Observe residency BEFORE pinning: the pin below would load a spilled
    # trigger and hide the very state being reported.
    resident = trigger_id in tman.cache
    description = tman.catalog.description(trigger_id)
    runtime = tman.cache.pin(trigger_id)
    try:
        out = [f"trigger {name} (id {trigger_id})"]
        out.append(f"  network: {type(runtime.network).__name__}")
        catalog_form = (
            f"compact description (shape {description[0]})"
            if description is not None
            else "full text only"
        )
        out.append(
            f"  cache: {'resident' if resident else 'spilled'}; "
            f"{runtime.estimated_size():,} bytes when resident; "
            f"catalog form: {catalog_form}"
        )
        out.append("  tuple variables:")
        for tvar in runtime.tvars:
            source = runtime.tvar_sources[tvar]
            operation = runtime.operation_code(tvar)
            selection = runtime.graph.selection_expr(tvar)
            selection_text = (
                selection.render() if selection is not None else "TRUE"
            )
            entry_node = runtime.network.entry_node_id(tvar)
            out.append(
                f"    {tvar} -> {source} [{operation}] "
                f"when {selection_text}  (entry: {entry_node})"
            )
        edges = [
            f"    {' ⋈ '.join(sorted(pair))}: "
            f"{runtime.graph.join_expr(*sorted(pair)).render()}"
            for pair in runtime.graph.edges
        ]
        if edges:
            out.append("  join predicates:")
            out.extend(sorted(edges))
        if runtime.graph.catch_all:
            out.append(f"  catch-all clauses: {len(runtime.graph.catch_all)}")

        out.append("  predicate analysis (§5.1 step 5):")
        for tvar, analyzed in analyze_trigger(runtime):
            signature = analyzed.signature
            group = tman.index.find_group(signature)
            out.append(f"    {tvar}: signature {signature.describe()}")
            out.append(f"      indexable: {_describe_indexable(signature)}")
            if analyzed.constants:
                out.append(f"      constants: {analyzed.constants}")
            residual = analyzed.residual
            out.append(
                "      residual: "
                + (residual.render() if residual is not None else "(none)")
            )
            if group is not None:
                out.append(
                    f"      organization: "
                    f"{describe_strategy(group.organization.name)}, "
                    f"class size {group.organization.size()}"
                )

        out.append("  signature groups used:")
        for group in tman.index.groups():
            entries = [
                e
                for _c, e in group.organization.entries()
                if e.trigger_id == trigger_id
            ]
            if entries:
                out.append(
                    f"    sig {group.sig_id}: "
                    f"{group.signature.describe()} "
                    f"[{group.organization.name}, "
                    f"class size {group.organization.size()}]"
                )
        out.append(f"  action: {runtime.action.render()}")
        out.append(f"  fired {runtime.fire_count} time(s)")
        fan_out = _describe_fan_out(tman, runtime)
        if fan_out is not None:
            out.append(fan_out)
        return "\n".join(out)
    finally:
        tman.cache.unpin(trigger_id)


def _describe_fan_out(tman, runtime) -> "str | None":
    """One line on where this trigger's notifications go when a network
    server is up: how many remote subscriptions each fired event fans out
    to, and through which front end."""
    server = getattr(tman, "server", None)
    event_name = getattr(runtime.action, "event_name", None)
    if server is None or event_name is None:
        return None
    subscribers = 0
    for connection in list(server._connections.values()):
        for subscribed in connection.subscriptions.values():
            if subscribed == event_name:
                subscribers += 1
    status = server.status()
    line = (
        f"  fan-out: event {event_name!r} -> {subscribers} remote "
        f"subscription(s) over {status['connections']} connection(s) "
        f"({status['mode']} front end"
    )
    if status.get("mode") == "async":
        line += (
            f"; loop lag p99 {status['loop_lag_p99_ns']:,} ns, "
            f"outbox hwm {status['outbox_hwm']}"
        )
    return line + ")"


def render_stats(tman) -> str:
    """The engine's full metrics snapshot, grouped and human-readable."""
    snapshot: Dict[str, Any] = tman.stats_snapshot()
    scalars: List[str] = []
    histograms: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram summary
            if not value.get("count"):
                continue
            mean = value.get("mean") or 0
            p50 = value.get("p50") or 0
            p99 = value.get("p99") or 0
            histograms.append(
                f"  {name}: count={value['count']} mean={mean:,.0f}ns "
                f"p50={p50:,.0f}ns p99={p99:,.0f}ns"
            )
        else:
            scalars.append(f"  {name}: {value}")
    out = ["counters and gauges:"] + (scalars or ["  (none)"])
    if histograms:
        out.append("timings:")
        out.extend(histograms)
    from ..condition.signature import interned_signature_count

    cache = tman.cache
    budget = (
        f" of {cache.capacity_bytes:,} budget"
        if cache.capacity_bytes is not None
        else " (no byte budget)"
    )
    out.append("memory:")
    out.append(
        f"  interned signatures: {interned_signature_count()}"
    )
    out.append(
        f"  trigger cache: {len(cache)} resident, "
        f"{cache.resident_bytes():,} bytes{budget}, "
        f"{cache.stats.evictions} spills"
    )
    out.append(
        f"  loads: {tman.runtimes.rehydrates} re-hydrated, "
        f"{tman.runtimes.reparses} re-parsed"
    )
    server = getattr(tman, "server", None)
    if server is not None:
        status = server.status()
        out.append("network:")
        out.append(
            "  serving on {address[0]}:{address[1]} ({mode}): "
            "{connections} open connection(s), {bytes_in:,} bytes in, "
            "{bytes_out:,} bytes out".format(**status)
        )
        out.append(
            "  backpressure: {ingest_rejected} ingest(s) rejected, "
            "{notifications_dropped} notification(s) dropped, "
            "{slow_consumer_disconnects} slow consumer(s) "
            "disconnected".format(**status)
        )
        if status.get("mode") == "async":
            out.append(
                "  event loop: lag p99 {loop_lag_p99_ns:,} ns, outbox hwm "
                "{outbox_hwm}, {wakeups} wakeup(s) for {frames_flushed} "
                "frame(s) flushed, {reads_paused} read pause(s)".format(
                    **status
                )
            )
    metrics_state = "on" if tman.obs.metrics.enabled else "off"
    trace_state = "on" if tman.obs.trace.enabled else "off"
    out.append(f"observability: metrics {metrics_state}, trace {trace_state}")
    return "\n".join(out)
