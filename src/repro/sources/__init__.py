"""Trigger-source adapters: external events onto the ingest path.

The engine core consumes :class:`~repro.engine.descriptors.UpdateDescriptor`
tokens from its update queue and does not care who produced them (§3's
asynchronous capture boundary).  This package supplies the producers — a
:class:`~repro.sources.registry.SourceRegistry` of pluggable
:class:`~repro.sources.base.SourceAdapter` instances, each converting one
external event feed into stream tokens:

* :class:`~repro.sources.webhook.WebhookSource` — an HMAC-authenticated
  HTTP endpoint (push);
* :class:`~repro.sources.cron.CronSource` — an interval scheduler (pull);
* :class:`~repro.sources.filewatch.FileWatchSource` — a JSONL file tailer
  (pull).

Every adapter runs against an injectable :mod:`~repro.sources.clock`, so
tests drive schedules, backoff, and cooldown deterministically — no test
ever sleeps.  Failures feed a per-adapter retry/backoff/cooldown state
machine owned by the registry (see base.py); delivered events carry their
own timestamps, which is what keeps the temporal window triggers downstream
(:mod:`repro.condition.windows`) replayable and cluster-deterministic.
"""

from .base import (
    BACKOFF,
    COOLDOWN,
    FAILED,
    NEW,
    RUNNING,
    STOPPED,
    RetryPolicy,
    SourceAdapter,
    SourceEvent,
)
from .clock import Clock, ManualClock, SystemClock
from .cron import CronSource
from .filewatch import FileWatchSource
from .registry import SourceRegistry
from .webhook import SIGNATURE_HEADER, WebhookSource, sign_payload

__all__ = [
    "BACKOFF",
    "SIGNATURE_HEADER",
    "COOLDOWN",
    "Clock",
    "CronSource",
    "FAILED",
    "FileWatchSource",
    "ManualClock",
    "NEW",
    "RUNNING",
    "RetryPolicy",
    "STOPPED",
    "SourceAdapter",
    "SourceEvent",
    "SourceRegistry",
    "SystemClock",
    "WebhookSource",
    "sign_payload",
]
