"""Adapter base: lifecycle, events, and the retry/backoff/cooldown machine.

An adapter's life is a small state machine, driven entirely by the
injectable clock (never by sleeps):

    NEW --start--> RUNNING --error--> BACKOFF --retries exhausted--> COOLDOWN
                      ^                  |                              |
                      +---success--------+<----cooldown elapsed---------+
    any state --stop--> STOPPED          (a fresh retry round)

* RUNNING: polls run; events deliver.
* BACKOFF: after a poll/delivery error — the next attempt waits
  ``policy.delay(attempt)`` (exponential, capped).  Undelivered events
  stay in the adapter's pending queue and are retried *in order* before
  any new poll output, so a transient sink failure reorders nothing.
* COOLDOWN: after ``max_retries`` consecutive failures the adapter rests
  for ``policy.cooldown`` seconds, then starts a fresh retry round.
  Cooldown is an adapter-level circuit breaker, not a terminal state —
  only ``stop()`` is terminal (-> STOPPED).
* FAILED: ``start()`` itself raised (e.g. the webhook port is taken);
  a later ``start()`` may retry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from .clock import Clock, SystemClock

__all__ = [
    "BACKOFF",
    "COOLDOWN",
    "FAILED",
    "NEW",
    "RUNNING",
    "STOPPED",
    "RetryPolicy",
    "SourceAdapter",
    "SourceEvent",
]

# -- adapter status values (strings: they travel through console/JSON) ------
NEW = "new"
RUNNING = "running"
BACKOFF = "backoff"
COOLDOWN = "cooldown"
STOPPED = "stopped"
FAILED = "failed"


@dataclass(frozen=True)
class SourceEvent:
    """One external event, normalized: a stream mutation-to-be."""

    stream: str
    new: Dict[str, Any]
    operation: str = "insert"
    old: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Per-adapter recovery knobs (defaults suit tests and demos)."""

    #: consecutive failures tolerated before entering cooldown
    max_retries: int = 3
    #: first backoff delay, seconds
    backoff_base: float = 0.5
    #: exponential growth per consecutive failure
    backoff_factor: float = 2.0
    #: backoff ceiling, seconds
    backoff_cap: float = 30.0
    #: circuit-breaker rest after retries are exhausted, seconds
    cooldown: float = 60.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )


class SourceAdapter:
    """Base class for trigger-source adapters.

    Subclasses implement ``_start``/``_stop`` (resource lifecycle; may
    raise) and ``poll`` (return new :class:`SourceEvent` s; may raise).
    Push-style adapters (webhook) instead enqueue via :meth:`enqueue`
    from their own threads and keep ``poll`` empty.  All recovery logic —
    retries, backoff, cooldown, pending-event preservation — lives here
    and in the registry, not in subclasses.
    """

    #: subclass tag shown in status output ("webhook", "cron", ...)
    kind = "adapter"

    def __init__(
        self,
        name: str,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.name = name
        #: back-reference set by SourceRegistry.add (push-side delivery)
        self.registry = None
        self.policy = policy or RetryPolicy()
        #: None inherits the registry's clock at add(); an explicit clock
        #: (ManualClock in tests) always wins
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._clock_explicit = clock is not None
        self.status = NEW
        #: consecutive failures in the current retry round
        self.attempts = 0
        #: clock time before which pump() must not retry (backoff/cooldown)
        self.not_before = 0.0
        #: events produced but not yet accepted by the sink, oldest first
        self.pending: Deque[SourceEvent] = deque()
        self.delivered = 0
        self.failures = 0
        self.last_error: Optional[str] = None

    # -- subclass surface ---------------------------------------------------

    def _start(self) -> None:
        """Acquire resources (sockets, offsets).  May raise."""

    def _stop(self) -> None:
        """Release resources.  Must not raise."""

    def poll(self) -> List[SourceEvent]:
        """Produce any newly available events.  May raise."""
        return []

    # -- push-side entry (webhook threads) ----------------------------------

    def enqueue(self, events: List[SourceEvent]) -> None:
        self.pending.extend(events)

    # -- state machine (driven by the registry) -----------------------------

    def startable(self) -> bool:
        return self.status in (NEW, STOPPED, FAILED)

    def active(self) -> bool:
        """Started and not stopped: pump() should consider this adapter."""
        return self.status in (RUNNING, BACKOFF, COOLDOWN)

    def due(self) -> bool:
        """Active and past any backoff/cooldown gate."""
        return self.active() and self.clock.now() >= self.not_before

    def record_success(self) -> None:
        self.status = RUNNING
        self.attempts = 0
        self.not_before = 0.0
        self.last_error = None

    def record_failure(self, error: Exception) -> str:
        """Advance the recovery machine after a poll/delivery error;
        returns the state entered (BACKOFF or COOLDOWN)."""
        self.failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        if self.status == COOLDOWN:
            # The retry that ends a cooldown failed: start a new round.
            self.attempts = 1
        else:
            self.attempts += 1
        if self.attempts > self.policy.max_retries:
            self.status = COOLDOWN
            self.not_before = self.clock.now() + self.policy.cooldown
            self.attempts = 0
        else:
            self.status = BACKOFF
            self.not_before = self.clock.now() + self.policy.delay(
                self.attempts
            )
        return self.status

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "not_before": self.not_before,
            "pending": len(self.pending),
            "delivered": self.delivered,
            "failures": self.failures,
            "last_error": self.last_error,
        }
