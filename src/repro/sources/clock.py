"""Injectable time: the one seam that keeps every source test sleepless.

Adapters and the registry never call ``time.time()`` directly — they read
the clock they were built with.  Production uses :class:`SystemClock`;
tests use :class:`ManualClock` and *advance* it, so cron schedules,
backoff windows, and cooldown expiries all run instantly and
deterministically.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "ManualClock", "SystemClock"]


class Clock:
    """Protocol: what the sources layer needs from time."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time (production)."""

    def now(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A clock that only moves when told to (tests)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds
        return self._now

    def set(self, now: float) -> float:
        if now < self._now:
            raise ValueError("time only moves forward")
        self._now = float(now)
        return self._now
