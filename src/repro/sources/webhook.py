"""The webhook adapter: an HMAC-authenticated HTTP ingest endpoint.

External systems POST JSON events; the adapter authenticates each request
with an HMAC-SHA256 signature over the raw body (GitHub-webhook style:
``X-TriggerMan-Signature: sha256=<hexdigest>``), applies the same
backpressure rule as the wire server (refuse ingest while the engine's
update queue is over the high water), and hands accepted events to the
registry for delivery.  Responses reuse the wire protocol's stable error
codes (:mod:`repro.net.protocol`) in its JSON error shape, so a client
that already speaks ``triggerman-wire-v1`` errors can reuse its retry
logic verbatim: E_UNAUTHORIZED (401, not retryable), E_PARSE (400, not
retryable), E_BACKPRESSURE (503, retryable).

The request logic lives in :meth:`WebhookSource.handle`, a pure
``(body, signature) -> (status, response)`` function — unit tests
exercise authentication, parsing, and backpressure without opening a
socket; the stdlib HTTP server is a thin shell around it.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..net.protocol import E_BACKPRESSURE, E_PARSE, E_UNAUTHORIZED
from .base import RetryPolicy, SourceAdapter, SourceEvent
from .clock import Clock

__all__ = ["SIGNATURE_HEADER", "WebhookSource", "sign_payload"]

SIGNATURE_HEADER = "X-TriggerMan-Signature"


def sign_payload(secret: bytes, body: bytes) -> str:
    """The signature header value a well-behaved sender attaches."""
    digest = hmac.new(secret, body, hashlib.sha256).hexdigest()
    return f"sha256={digest}"


def _error(code: str, message: str, retryable: bool) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": {"code": code, "message": message, "retryable": retryable},
    }


class WebhookSource(SourceAdapter):
    """POST JSON events onto ``stream`` over HTTP, HMAC-validated.

    Bodies may be a single object, a list of objects, or
    ``{"rows": [...]}``.  Rows missing ``ts_column`` are stamped with the
    adapter clock (disable with ``stamp_missing_ts=False`` when senders
    always timestamp).  ``port=0`` binds an ephemeral port — read
    ``adapter.address`` after start.
    """

    kind = "webhook"

    def __init__(
        self,
        name: str,
        stream: str,
        secret: bytes,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        high_water: int = 10_000,
        ts_column: str = "ts",
        stamp_missing_ts: bool = True,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        super().__init__(name, policy=policy, clock=clock)
        self.stream = stream
        self.secret = secret if isinstance(secret, bytes) else secret.encode()
        self.host = host
        self.port = port
        self.high_water = high_water
        self.ts_column = ts_column
        self.stamp_missing_ts = stamp_missing_ts
        self.rejected = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """Bound (host, port) while serving; None when stopped."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]

    @property
    def url(self) -> Optional[str]:
        address = self.address
        if address is None:
            return None
        return f"http://{address[0]}:{address[1]}/"

    # -- request logic (socket-free; unit-testable) --------------------------

    def verify(self, body: bytes, signature: Optional[str]) -> bool:
        """Constant-time HMAC check of ``signature`` against ``body``."""
        if not signature:
            return False
        return hmac.compare_digest(sign_payload(self.secret, body), signature)

    def handle(
        self, body: bytes, signature: Optional[str]
    ) -> Tuple[int, Dict[str, Any]]:
        """One request: authenticate, gate, parse, deliver.  Returns
        ``(http status, response json)``.  A rejected request produces no
        events — nothing reaches the ingest path."""
        registry = getattr(self, "registry", None)
        if not self.verify(body, signature):
            self.rejected += 1
            if registry is not None:
                registry.reject("bad-signature")
            return 401, _error(
                E_UNAUTHORIZED, "missing or invalid signature", False
            )
        depth = registry.queue_depth() if registry is not None else None
        if depth is not None and depth > self.high_water:
            return 503, _error(
                E_BACKPRESSURE,
                f"ingest queue depth {depth} over high water "
                f"{self.high_water}",
                True,
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self.rejected += 1
            if registry is not None:
                registry.reject("bad-body")
            return 400, _error(E_PARSE, f"unparseable body: {error}", False)
        if isinstance(payload, dict) and "rows" in payload:
            rows = payload["rows"]
        elif isinstance(payload, dict):
            rows = [payload]
        else:
            rows = payload
        if not isinstance(rows, list) or not all(
            isinstance(r, dict) for r in rows
        ):
            self.rejected += 1
            if registry is not None:
                registry.reject("bad-rows")
            return 400, _error(
                E_PARSE, "body must be an object, a list of objects, "
                'or {"rows": [...]}', False,
            )
        events: List[SourceEvent] = []
        for row in rows:
            row = dict(row)
            if self.stamp_missing_ts:
                row.setdefault(self.ts_column, self.clock.now())
            events.append(SourceEvent(self.stream, row))
        delivered = 0
        if events and registry is not None:
            delivered = registry.deliver(self, events)
        return 202, {
            "ok": True, "accepted": len(events), "delivered": delivered,
        }

    # -- HTTP shell ----------------------------------------------------------

    def _start(self) -> None:
        adapter = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                signature = self.headers.get(SIGNATURE_HEADER)
                status, response = adapter.handle(body, signature)
                payload = json.dumps(response).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # quiet
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"webhook-{self.name}",
            daemon=True,
        )
        self._thread.start()

    def _stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=2.0)
