"""The file watcher: tail a JSONL file into a stream.

Polls by size/offset (no OS-specific watch APIs): new complete lines
since the last poll become events; a shrunken file means rotation or
truncation and restarts the tail from the top.  Partial trailing lines
(a writer mid-append) stay unconsumed until their newline arrives, so a
line is never parsed half-written.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from .base import RetryPolicy, SourceAdapter, SourceEvent
from .clock import Clock

__all__ = ["FileWatchSource"]


class FileWatchSource(SourceAdapter):
    """Tail ``path`` (one JSON object per line) onto ``stream``.

    Rows missing ``ts_column`` are stamped with the adapter clock's now
    (set ``stamp_missing_ts=False`` to forward rows untouched).  A
    missing file is not an error — the tail simply waits for it.
    Malformed JSON *is* an error and runs the normal retry/backoff
    machinery (the offset does not advance past the bad line until the
    writer fixes or rotates the file).
    """

    kind = "filewatch"

    def __init__(
        self,
        name: str,
        stream: str,
        path: str,
        *,
        ts_column: str = "ts",
        stamp_missing_ts: bool = True,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        super().__init__(name, policy=policy, clock=clock)
        self.stream = stream
        self.path = path
        self.ts_column = ts_column
        self.stamp_missing_ts = stamp_missing_ts
        self._offset = 0

    def poll(self) -> List[SourceEvent]:
        if not os.path.exists(self.path):
            return []
        size = os.path.getsize(self.path)
        if size < self._offset:  # rotated/truncated: start over
            self._offset = 0
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read(size - self._offset)
        end = data.rfind(b"\n")
        if end < 0:  # only a partial line so far
            return []
        consumed = data[: end + 1]
        events: List[SourceEvent] = []
        for line in consumed.splitlines():
            line = line.strip()
            if not line:
                continue
            row = json.loads(line.decode("utf-8"))
            if not isinstance(row, dict):
                raise ValueError(f"{self.path}: JSONL rows must be objects")
            if self.stamp_missing_ts:
                row.setdefault(self.ts_column, self.clock.now())
            events.append(SourceEvent(self.stream, row))
        # Advance only after every line parsed: a bad line re-polls the
        # same span after backoff instead of silently skipping data.
        self._offset += len(consumed)
        return events
