"""Adapter configuration: declarative JSON -> live adapters.

The console's ``sources add <file>`` and the CLI's ``--sources <file>``
both feed a config file through :func:`load_config`::

    {
      "adapters": [
        {"kind": "webhook", "name": "hook", "stream": "errors",
         "secret": "s3cret", "port": 8088},
        {"kind": "cron", "name": "tick", "stream": "heartbeat",
         "interval": 5, "payload": {"source": "cron"}},
        {"kind": "filewatch", "name": "tail", "stream": "logs",
         "path": "events.jsonl"}
      ],
      "start": true
    }

Unknown keys in an adapter spec are rejected (a typo'd knob should fail
loudly, not silently run with defaults).  An optional ``"policy"`` object
per adapter overrides :class:`~repro.sources.base.RetryPolicy` fields.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from ..errors import TriggerError
from .base import RetryPolicy, SourceAdapter
from .clock import Clock
from .cron import CronSource
from .filewatch import FileWatchSource
from .webhook import WebhookSource

__all__ = ["build_adapter", "load_config"]

_COMMON_KEYS = {"kind", "name", "stream", "policy"}
_KIND_KEYS = {
    "webhook": {"secret", "host", "port", "high_water", "ts_column",
                "stamp_missing_ts"},
    "cron": {"interval", "payload", "ts_column", "count", "start_at"},
    "filewatch": {"path", "ts_column", "stamp_missing_ts"},
}


def build_adapter(
    spec: Dict[str, Any], clock: Optional[Clock] = None
) -> SourceAdapter:
    """One adapter from one JSON spec dict."""
    kind = spec.get("kind")
    if kind not in _KIND_KEYS:
        raise TriggerError(
            f"unknown adapter kind {kind!r} "
            f"(want one of {sorted(_KIND_KEYS)})"
        )
    for key in ("name", "stream"):
        if not spec.get(key):
            raise TriggerError(f"adapter spec needs a {key!r}")
    unknown = set(spec) - _COMMON_KEYS - _KIND_KEYS[kind]
    if unknown:
        raise TriggerError(
            f"unknown key(s) {sorted(unknown)} in {kind} adapter "
            f"{spec['name']!r}"
        )
    policy = None
    if "policy" in spec:
        try:
            policy = RetryPolicy(**spec["policy"])
        except TypeError as error:
            raise TriggerError(f"bad retry policy: {error}")
    kwargs = {
        key: spec[key] for key in _KIND_KEYS[kind] - {"secret", "interval",
                                                      "path"}
        if key in spec
    }
    kwargs["policy"] = policy
    kwargs["clock"] = clock
    if kind == "webhook":
        secret = spec.get("secret")
        if not secret:
            raise TriggerError(
                f"webhook adapter {spec['name']!r} needs a 'secret'"
            )
        return WebhookSource(
            spec["name"], spec["stream"], secret.encode("utf-8")
            if isinstance(secret, str) else secret, **kwargs
        )
    if kind == "cron":
        interval = spec.get("interval")
        if not interval:
            raise TriggerError(
                f"cron adapter {spec['name']!r} needs an 'interval'"
            )
        return CronSource(spec["name"], spec["stream"], interval, **kwargs)
    path = spec.get("path")
    if not path:
        raise TriggerError(
            f"filewatch adapter {spec['name']!r} needs a 'path'"
        )
    return FileWatchSource(spec["name"], spec["stream"], path, **kwargs)


def load_config(
    registry, config: Union[str, Dict[str, Any]],
    clock: Optional[Clock] = None,
) -> List[str]:
    """Build and register every adapter in ``config`` (a dict or a path to
    a JSON file); starts them when the config says ``"start": true``.
    Returns the added adapter names."""
    if isinstance(config, str):
        with open(config, "r", encoding="utf-8") as handle:
            config = json.load(handle)
    if not isinstance(config, dict) or not isinstance(
        config.get("adapters"), list
    ):
        raise TriggerError('sources config must be {"adapters": [...]}')
    names: List[str] = []
    for spec in config["adapters"]:
        adapter = build_adapter(spec, clock=clock)
        registry.add(adapter)
        names.append(adapter.name)
    if config.get("start"):
        for name in names:
            registry.start(name)
    return names
