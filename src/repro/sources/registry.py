"""The source registry: adapter lifecycle + scheduling + delivery.

One registry fronts one engine-like sink — anything with
``push(source, operation, new=..., old=...)``: a
:class:`~repro.engine.triggerman.TriggerMan` (tokens enter the local
batched ingest path) or a
:class:`~repro.cluster.coordinator.ClusterCoordinator` (tokens route to
the shard whose ring slice owns the stream's triggers) — which is how
adapters are cluster-aware without knowing the cluster exists.

``pump()`` is the single scheduling round: for every started adapter past
its backoff/cooldown gate, flush pending events (oldest first), poll for
new ones, deliver.  Everything is clock-driven; tests call ``pump()``
around a :class:`~repro.sources.clock.ManualClock` and never sleep.
Production callers either pump from their own loop (the ``--sources``
headless mode) or start the built-in pumper thread.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..errors import TriggerError
from .base import COOLDOWN, FAILED, STOPPED, SourceAdapter, SourceEvent
from .clock import Clock, SystemClock

__all__ = ["SourceRegistry"]


class SourceRegistry:
    """Named adapters over one token sink; owns start/stop and recovery."""

    def __init__(
        self, engine, obs=None, clock: Optional[Clock] = None, metrics=None
    ):
        self.engine = engine
        self.clock = clock or SystemClock()
        self._adapters: Dict[str, SourceAdapter] = {}
        self._lock = threading.RLock()
        self._pump_thread: Optional[threading.Thread] = None
        self._pump_stop: Optional[threading.Event] = None
        if metrics is None:
            metrics = obs.metrics if obs is not None else None
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False, namespace="sources")
        self._m_delivered = metrics.counter(
            "sources.events_delivered",
            "events accepted by the ingest path", always=True,
        )
        self._m_failures = metrics.counter(
            "sources.failures", "adapter poll/delivery errors", always=True,
        )
        self._m_retries = metrics.counter(
            "sources.retries", "failures that entered backoff", always=True,
        )
        self._m_cooldowns = metrics.counter(
            "sources.cooldowns",
            "retry rounds exhausted into cooldown", always=True,
        )
        self._m_rejected = metrics.counter(
            "sources.rejected",
            "webhook requests refused (bad signature/body)", always=True,
        )
        self._m_poll_events = metrics.histogram(
            "sources.poll_events", "events returned per successful poll"
        )

    # -- membership ---------------------------------------------------------

    def add(self, adapter: SourceAdapter) -> SourceAdapter:
        with self._lock:
            if adapter.name in self._adapters:
                raise TriggerError(
                    f"source adapter {adapter.name!r} already exists"
                )
            if not adapter._clock_explicit:
                adapter.clock = self.clock
            adapter.registry = self
            self._adapters[adapter.name] = adapter
            return adapter

    def get(self, name: str) -> SourceAdapter:
        with self._lock:
            adapter = self._adapters.get(name)
            if adapter is None:
                raise TriggerError(f"unknown source adapter {name!r}")
            return adapter

    def names(self) -> List[str]:
        with self._lock:
            return list(self._adapters)

    def remove(self, name: str) -> SourceAdapter:
        """Stop (if needed) and forget one adapter."""
        with self._lock:
            adapter = self.get(name)
            self.stop(name)
            del self._adapters[name]
            return adapter

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._adapters

    def __len__(self) -> int:
        with self._lock:
            return len(self._adapters)

    # -- lifecycle (idempotent) ---------------------------------------------

    def start(self, name: str) -> bool:
        """Start one adapter; returns False (no-op) if already active.
        A failing ``_start`` marks the adapter FAILED and re-raises."""
        with self._lock:
            adapter = self.get(name)
            if adapter.active():
                return False
            try:
                adapter._start()
            except Exception as error:
                adapter.status = FAILED
                adapter.last_error = f"{type(error).__name__}: {error}"
                self._m_failures.inc()
                raise
            adapter.record_success()
            return True

    def stop(self, name: str) -> bool:
        """Stop one adapter; returns False (no-op) if not active."""
        with self._lock:
            adapter = self.get(name)
            if not adapter.active():
                return False
            adapter._stop()
            adapter.status = STOPPED
            adapter.not_before = 0.0
            return True

    def start_all(self) -> int:
        started = 0
        for name in self.names():
            if self.start(name):
                started += 1
        return started

    def stop_all(self) -> int:
        self.stop_pumping()
        stopped = 0
        for name in self.names():
            if self.stop(name):
                stopped += 1
        return stopped

    # -- scheduling ---------------------------------------------------------

    def pump(self) -> int:
        """One scheduling round over every due adapter; returns the number
        of events delivered to the sink."""
        total = 0
        for name in self.names():
            with self._lock:
                adapter = self._adapters.get(name)
                if adapter is None or not adapter.due():
                    continue
                total += self._pump_adapter(adapter)
        return total

    def _pump_adapter(self, adapter: SourceAdapter) -> int:
        """Caller holds the registry lock."""
        delivered = 0
        try:
            events = adapter.poll()
            if events:
                self._m_poll_events.observe(len(events))
                adapter.pending.extend(events)
            delivered = self._drain(adapter)
        except Exception as error:
            self._record_failure(adapter, error)
            return delivered
        adapter.record_success()
        return delivered

    def deliver(self, adapter: SourceAdapter, events: List[SourceEvent]) -> int:
        """Push-side entry (webhook threads): enqueue and attempt immediate
        delivery unless the adapter is gated by backoff/cooldown; returns
        the number of events that reached the sink now (queued-but-gated
        events flow on a later pump)."""
        with self._lock:
            adapter.pending.extend(events)
            if not adapter.due():
                return 0
            try:
                delivered = self._drain(adapter)
            except Exception as error:
                self._record_failure(adapter, error)
                return 0
            adapter.record_success()
            return delivered

    def _drain(self, adapter: SourceAdapter) -> int:
        """Deliver pending events oldest-first; leaves the failing event
        (and everything after it) queued on error."""
        delivered = 0
        while adapter.pending:
            event = adapter.pending[0]
            self.engine.push(
                event.stream, event.operation, new=event.new, old=event.old
            )
            adapter.pending.popleft()
            adapter.delivered += 1
            self._m_delivered.inc()
            delivered += 1
        return delivered

    def _record_failure(self, adapter: SourceAdapter, error: Exception) -> None:
        state = adapter.record_failure(error)
        self._m_failures.inc()
        if state == COOLDOWN:
            self._m_cooldowns.inc()
        else:
            self._m_retries.inc()

    def reject(self, reason: str) -> None:
        """A webhook request was refused before producing events."""
        self._m_rejected.inc()

    # -- the pumper thread (production convenience) --------------------------

    def start_pumping(self, interval: float = 0.2) -> None:
        """Run ``pump()`` every ``interval`` seconds on a daemon thread
        (interactive/serve mode; tests pump manually instead)."""
        with self._lock:
            if self._pump_thread is not None and self._pump_thread.is_alive():
                return
            stop = self._pump_stop = threading.Event()

            def loop() -> None:
                while not stop.wait(interval):
                    self.pump()

            self._pump_thread = threading.Thread(
                target=loop, name="source-pumper", daemon=True
            )
            self._pump_thread.start()

    def stop_pumping(self) -> None:
        thread, stop = self._pump_thread, self._pump_stop
        self._pump_thread = self._pump_stop = None
        if stop is not None:
            stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)

    # -- introspection ------------------------------------------------------

    def status(self, name: Optional[str] = None):
        """One adapter's status dict, or all of them (console ``sources
        status``)."""
        if name is not None:
            return self.get(name).describe()
        with self._lock:
            return [a.describe() for a in self._adapters.values()]

    def queue_depth(self) -> Optional[int]:
        """The sink's ingest queue depth, when it exposes one (webhook
        backpressure); None for sinks without a visible queue."""
        queue = getattr(self.engine, "queue", None)
        if queue is None:
            return None
        try:
            return len(queue)
        except TypeError:  # pragma: no cover - exotic sinks
            return None
