"""The interval scheduler: synthetic events on a fixed period.

Every firing's event row is stamped with the *scheduled* time, not the
time ``poll()`` happened to run — so a pump that arrives late emits the
whole backlog with exactly the timestamps an on-time pump would have
produced, and downstream temporal windows see identical streams either
way.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from .base import RetryPolicy, SourceAdapter, SourceEvent
from .clock import Clock

__all__ = ["CronSource"]


class CronSource(SourceAdapter):
    """Emit one event onto ``stream`` every ``interval`` seconds.

    ``payload`` is either a template dict (copied per firing) or a
    callable ``(index, scheduled_ts) -> row``.  The scheduled time lands
    in ``ts_column`` unless the payload already set it.  ``count`` bounds
    the total firings (None runs forever); ``start_at`` pins the first
    firing (default: one interval after start).
    """

    kind = "cron"

    def __init__(
        self,
        name: str,
        stream: str,
        interval: float,
        payload: Union[None, Dict[str, Any], Callable[[int, float], Dict]] = None,
        *,
        ts_column: str = "ts",
        count: Optional[int] = None,
        start_at: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        super().__init__(name, policy=policy, clock=clock)
        if interval <= 0:
            raise ValueError("cron interval must be positive")
        self.stream = stream
        self.interval = float(interval)
        self.payload = payload
        self.ts_column = ts_column
        self.count = count
        self.start_at = start_at
        self._next: Optional[float] = None
        self._emitted = 0

    def _start(self) -> None:
        if self._next is None:  # a restart resumes the original schedule
            self._next = (
                self.start_at
                if self.start_at is not None
                else self.clock.now() + self.interval
            )

    def poll(self) -> List[SourceEvent]:
        events: List[SourceEvent] = []
        now = self.clock.now()
        while (
            self._next is not None
            and self._next <= now
            and (self.count is None or self._emitted < self.count)
        ):
            ts = self._next
            if callable(self.payload):
                row = dict(self.payload(self._emitted, ts))
            else:
                row = dict(self.payload or {})
            row.setdefault(self.ts_column, ts)
            events.append(SourceEvent(self.stream, row))
            self._emitted += 1
            self._next += self.interval
        return events
