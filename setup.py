"""Legacy setup shim so editable installs work without the `wheel` package
(this environment is offline).  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
