"""The paper's §2 real-estate scenario, scaled up.

One join trigger per salesperson ("notify me when a house is listed in a
neighborhood I represent") — hundreds of triggers, but because they differ
only in the salesperson-name constant they all share ONE expression
signature per data source.  This is the paper's central scalability claim
made visible.

Run with::

    python examples/realestate_alerts.py
"""

import random

from repro import TriggerMan
from repro.workloads import populate_realestate

# Modest demo scale: every new house joins (nested-loop) against the
# salesperson/represents tables once per trigger, so hundreds of join
# triggers × thousands of rows takes minutes — the signature count (the
# point of this example) is identical at any scale.
SALESPEOPLE = 60
NEIGHBORHOODS = 10


def main() -> None:
    random.seed(42)
    tman = TriggerMan.in_memory()
    populate_realestate(
        tman, houses=50, salespeople=SALESPEOPLE,
        neighborhoods=NEIGHBORHOODS,
    )

    print(f"creating one join trigger per salesperson ({SALESPEOPLE})...")
    for i in range(SALESPEOPLE):
        tman.execute_command(
            f"create trigger alert_sp{i} on insert to house "
            f"from salesperson s, house h, represents r "
            f"when s.name = 'sp{i}' and s.spno = r.spno and r.nno = h.nno "
            f"do raise event HouseForSp{i}(h.hno, h.address)"
        )

    print("\nexpression signatures (note: count does NOT grow with triggers):")
    for line in tman.index.describe():
        print(f"  {line}")

    # Subscribe a few salespeople.
    delivered = []
    for i in (0, 1, 2):
        tman.register_for_event(
            f"HouseForSp{i}",
            lambda n, i=i: delivered.append((f"sp{i}", n.args)),
        )

    print("\nlisting 5 new houses...")
    for h in range(1000, 1005):
        tman.insert(
            "house",
            {
                "hno": h,
                "address": f"{h} Paper Ave",
                "price": 350_000.0,
                "nno": random.randrange(NEIGHBORHOODS),
                "spno": random.randrange(SALESPEOPLE),
            },
        )
    tman.process_all()

    print(f"\ntrigger firings: {tman.stats.triggers_fired}")
    print(f"notifications delivered to sp0..sp2: {len(delivered)}")
    for who, args in delivered:
        print(f"  {who}: house {args[0]} at {args[1]!r}")

    metrics = tman.metrics()
    print(
        f"\n{metrics['predicate_entries']} predicate entries across "
        f"{metrics['signatures']} signatures; "
        f"cache hit ratio {tman.cache.stats.hit_ratio():.2f}"
    )


if __name__ == "__main__":
    main()
