"""Ops alerting end to end: webhooks in, temporal windows, alerts out.

A monitoring pipeline built from the PR-7 pieces: external systems POST
error events to an HMAC-authenticated webhook endpoint; a sliding-window
trigger watches each host for a burst (``>= K`` failures within ``W``
seconds of *event time*); matching bursts raise an ``Incident`` event
delivered to a subscribed client.

The same program runs against one in-process engine or a worker fleet::

    python examples/ops_alerts.py                 # in-process engine
    python examples/ops_alerts.py --cluster 3     # 3 worker processes
                                                  # behind a coordinator

The event stream is generated deterministically (seeded, timestamped at
the source — ``repro.workloads.event_stream``), so both modes print the
**same notification digest**: sharding the triggers changes where the
window state lives, not what fires.

Environment knobs: ``OPS_EVENTS`` (stream size, default 400),
``OPS_BURST`` (failures per window to alert on, default 3),
``OPS_WINDOW`` (window seconds, default 8).
"""

import hashlib
import json
import os
import sys
import time
import urllib.request

from repro.sources import SIGNATURE_HEADER, sign_payload
from repro.workloads import event_stream

EVENTS = int(os.environ.get("OPS_EVENTS", "400"))
BURST = int(os.environ.get("OPS_BURST", "3"))
WINDOW = float(os.environ.get("OPS_WINDOW", "8"))
SECRET = b"ops-demo-secret"

SCHEMA = (
    "define data source events as stream "
    "(host varchar(40), code integer, latency float, ts float)"
)
TRIGGER = (
    f"create trigger ops_incident window {WINDOW:g} seconds from events "
    f"when events.code >= 500 group by events.host "
    f"having count(*) >= {BURST} do raise event Incident(events.host)"
)


def post_batch(url, rows):
    body = json.dumps({"rows": rows}).encode()
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={SIGNATURE_HEADER: sign_payload(SECRET, body)},
    )
    with urllib.request.urlopen(request, timeout=10) as reply:
        return json.loads(reply.read())


def drain_notifications(client):
    notifications = []
    idle_since = time.monotonic()
    while time.monotonic() - idle_since < 0.5:
        notification = client.next_notification()
        if notification is None:
            time.sleep(0.02)
            continue
        notifications.append(notification)
        idle_since = time.monotonic()
    return notifications


def run(client, registry) -> None:
    from repro.sources import WebhookSource

    client.command(SCHEMA)
    client.command(TRIGGER)
    client.register_for_event("Incident")

    registry.add(WebhookSource("ops-hook", "events", SECRET, port=0))
    registry.start("ops-hook")
    url = registry.get("ops-hook").url
    print(f"webhook listening on {url}")

    rows = list(event_stream(EVENTS, hosts=6, interval=0.9, error_rate=0.35))
    print(f"POSTing {len(rows)} monitoring events "
          f"({sum(r['code'] >= 500 for r in rows)} are 5xx)...")
    accepted = 0
    for start in range(0, len(rows), 50):
        reply = post_batch(url, rows[start:start + 50])
        accepted += reply["accepted"]
    print(f"webhook accepted {accepted} events")

    client.process()
    notifications = drain_notifications(client)
    digest = hashlib.sha256()
    for line in sorted(
        f"{n.event_name}:{list(n.args)}:{n.trigger_name}"
        for n in notifications
    ):
        digest.update(line.encode())
    hosts = sorted({n.args[0] for n in notifications})
    print(f"\nincidents raised : {len(notifications)} "
          f"(hosts: {', '.join(hosts) or 'none'})")
    print(f"alert rule       : >= {BURST} failures within {WINDOW:g}s "
          "of event time, per host")
    print(f"notification digest: {digest.hexdigest()[:16]}")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--cluster":
        if len(argv) != 2 or not argv[1].isdigit():
            print("usage: ops_alerts.py [--cluster N]")
            return 2
        from repro.cluster import ClusterClient, ClusterCoordinator

        coordinator = ClusterCoordinator(int(argv[1])).start()
        print(f"spawned {argv[1]} workers:", coordinator.status()["shards"])
        client = ClusterClient(coordinator, inbox_limit=None)
        try:
            # the coordinator's registry routes webhook events to the
            # shard whose ring slice owns the stream's triggers
            run(client, coordinator.sources)
        finally:
            client.close()
            coordinator.close()
        return 0
    if argv:
        print("usage: ops_alerts.py [--cluster N]")
        return 2

    from repro import TriggerMan
    from repro.engine.client import TriggerManClient

    tman = TriggerMan.in_memory()
    client = TriggerManClient(tman, inbox_limit=None)
    try:
        run(client, tman.sources)
    finally:
        tman.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
