"""Inventory management: execSQL cascades and windowed aggregate triggers.

Three cooperating triggers over an orders/stock schema:

1. ``deductStock`` — every order decrements stock via execSQL (a cascade:
   the stock update is captured and processed asynchronously, §3);
2. ``reorder``    — when stock drops below a threshold, file a reorder;
3. ``hotItem``    — a windowed aggregate (``window 5``): raise an event
   when the average quantity of an item's last five orders exceeds 8
   (demand-spike detection with bounded per-group state, §9 direction).

Run with::

    python examples/inventory_reorder.py
"""

import random

from repro import TriggerMan


def main() -> None:
    random.seed(3)
    tman = TriggerMan.in_memory()
    tman.define_table(
        "orders",
        [("oid", "integer"), ("item", "varchar(20)"), ("qty", "integer")],
    )
    tman.define_table(
        "stock", [("item", "varchar(20)"), ("on_hand", "integer")]
    )
    tman.define_table(
        "reorders", [("item", "varchar(20)"), ("level", "integer")]
    )
    for item, on_hand in (("widget", 60), ("gadget", 45), ("doohickey", 200)):
        tman.insert("stock", {"item": item, "on_hand": on_hand})
    tman.process_all()

    tman.execute_command(
        "create trigger deductStock from orders on insert "
        "do execSQL 'update stock set on_hand = on_hand - :NEW.orders.qty "
        "where item = :NEW.orders.item'"
    )
    tman.execute_command(
        "create trigger reorder from stock on update(stock.on_hand) "
        "when stock.on_hand < 20 "
        "do execSQL 'insert into reorders values (:NEW.stock.item, "
        ":NEW.stock.on_hand)'"
    )
    tman.execute_command(
        "create trigger hotItem window 5 from orders on insert "
        "group by orders.item having avg(orders.qty) > 8 "
        "do raise event HotItem(orders.item)"
    )

    hot = set()
    tman.register_for_event("HotItem", lambda n: hot.add(n.args[0]))

    print("placing 40 orders...")
    for oid in range(40):
        item = random.choice(["widget", "gadget", "doohickey"])
        qty = random.randrange(1, 6)
        if item == "gadget" and oid > 25:
            qty = random.randrange(9, 14)  # demand spike
        tman.insert("orders", {"oid": oid, "item": item, "qty": qty})
    tman.process_all()

    print("\nstock after cascades:")
    for item, on_hand in tman.execute_sql("select item, on_hand from stock"):
        print(f"  {item:<10} {on_hand}")
    print("\nreorders filed:")
    for item, level in tman.execute_sql("select item, level from reorders"):
        print(f"  {item:<10} at level {level}")
    print(f"\nhot items (windowed avg qty > 8): {sorted(hot)}")
    print(
        "\norder stats: "
        + str(
            tman.execute_sql(
                "select item, count(*), avg(qty) from orders "
                "group by item order by item"
            )
        )
    )
    metrics = tman.metrics()
    print(
        f"\n{metrics['tokens_processed']} tokens processed, "
        f"{metrics['triggers_fired']} firings, "
        f"{metrics['action_failures']} action failures"
    )


if __name__ == "__main__":
    main()
