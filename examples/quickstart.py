"""Quickstart: define a table, create triggers, push updates, see firings.

Run with::

    python examples/quickstart.py
"""

from repro import TriggerMan


def main() -> None:
    # An in-memory TriggerMan instance: catalogs, predicate index, trigger
    # cache, and update queue all live in this process.
    tman = TriggerMan.in_memory()

    # A local table data source.  Update capture (the paper's per-table
    # Informix triggers) is installed automatically.
    tman.define_table(
        "emp",
        [("name", "varchar(40)"), ("salary", "float"), ("dept", "varchar(20)")],
    )

    # Triggers use the paper's command language.
    tman.execute_command(
        "create trigger bigSalary from emp on insert "
        "when emp.salary > 80000 "
        "do raise event BigSalary(emp.name, emp.salary)"
    )
    tman.execute_command(
        "create trigger raiseWatch from emp on update(emp.salary) "
        "do raise event SalaryChanged(emp.name, emp.salary)"
    )

    # Clients register for events raised by trigger actions.
    tman.register_for_event(
        "BigSalary",
        lambda n: print(f"  [BigSalary] {n.args[0]} earns {n.args[1]:,.0f}"),
    )
    tman.register_for_event(
        "SalaryChanged",
        lambda n: print(f"  [SalaryChanged] {n.args[0]} -> {n.args[1]:,.0f}"),
    )

    print("inserting employees...")
    tman.insert("emp", {"name": "Ada", "salary": 120000.0, "dept": "eng"})
    tman.insert("emp", {"name": "Bob", "salary": 40000.0, "dept": "toys"})

    print("updating Bob's salary...")
    tman.update_rows("emp", {"name": "Bob"}, {"salary": 45000.0})

    # Trigger processing is asynchronous (§3): nothing has fired yet.
    print(f"queued update descriptors: {tman.metrics()['queue_depth']}")
    print("processing...")
    tman.process_all()

    print("\nengine metrics:")
    for key, value in sorted(tman.metrics().items()):
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
