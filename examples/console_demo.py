"""Drive the TriggerMan console programmatically (§3's console program).

Run with::

    python examples/console_demo.py          # scripted demo
    python examples/console_demo.py -i       # interactive REPL
"""

import sys

from repro import TriggerMan
from repro.engine.console import Console, run_interactive

SCRIPT = [
    "sql create table emp (name varchar(40), salary float)",
    "define data source emp from emp",
    "create trigger set payroll comment 'salary monitoring'",
    "create trigger bigSalary in payroll from emp on insert "
    "when emp.salary > 80000 do raise event BigSalary(emp.name)",
    "show triggers",
    "show signatures",
    "sql insert into emp values ('Ada', 120000.0)",
    "sql insert into emp values ('Bob', 30000.0)",
    "process",
    "show stats",
    "disable trigger bigSalary",
    "sql insert into emp values ('Eve', 999999.0)",
    "process",
    "show stats",
]


def main() -> None:
    tman = TriggerMan.in_memory()
    if "-i" in sys.argv[1:]:
        run_interactive(tman)
        return
    console = Console(tman)
    for line in SCRIPT:
        print(f"tman> {line}")
        output = console.execute(line)
        if output:
            print("\n".join(f"  {row}" for row in output.splitlines()))


if __name__ == "__main__":
    main()
