"""Web-scale trigger creation over a stream (§1's motivating scenario).

Thousands of users create threshold alerts against a stock-tick stream
through the data source API.  Watch the constant-set organizations migrate
automatically (memory list → memory index → indexed database table) as the
per-signature equivalence classes grow, exactly as §5.2 prescribes.

Run with::

    python examples/stock_alerts.py
"""

import random

from repro import TriggerMan
from repro.engine.client import DataSourceProgram
from repro.predindex.costmodel import Limits

USERS = 4000
SYMBOLS = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "WAYNE", "STARK"]


def main() -> None:
    random.seed(7)
    # Small limits so the organization migrations are visible at demo scale.
    tman = TriggerMan.in_memory(limits=Limits(list_max=16, memory_max=1000))
    tman.execute_command(
        "define data source ticks as stream (symbol varchar(8), price float)"
    )

    print(f"{USERS} users creating price alerts...")
    for user in range(USERS):
        symbol = random.choice(SYMBOLS)
        threshold = random.randrange(10, 500)
        kind = random.random()
        if kind < 0.5:
            condition = (
                f"ticks.symbol = '{symbol}' and ticks.price > {threshold}"
            )
        elif kind < 0.8:
            condition = f"ticks.price > {threshold}"
        else:
            low = threshold
            condition = f"ticks.price between {low} and {low + 50}"
        tman.execute_command(
            f"create trigger user{user}_alert from ticks on insert "
            f"when {condition} do raise event Alert{user}(ticks.price)"
        )

    print("\nsignature catalog (constantSetOrganization chosen by size):")
    for sig in tman.catalog.list_signatures():
        print(
            f"  sig {sig['sigID']}: {sig['signatureDesc']!r} "
            f"size={sig['constantSetSize']} "
            f"org={sig['constantSetOrganization']}"
        )

    # Feed ticks through the data source API.
    feed = DataSourceProgram(tman, "ticks")
    print("\nfeeding 100 ticks...")
    for _ in range(100):
        feed.insert(
            {
                "symbol": random.choice(SYMBOLS),
                "price": float(random.randrange(5, 600)),
            }
        )
    tman.process_all()

    metrics = tman.metrics()
    print(f"\ntokens processed : {metrics['tokens_processed']}")
    print(f"triggers fired   : {metrics['triggers_fired']}")
    print(f"actions executed : {metrics['actions_executed']}")
    stats = tman.index.stats
    print(
        f"index work       : {stats.entries_probed} entries probed, "
        f"{stats.residual_tests} residual tests "
        f"for {stats.matches} matches"
    )
    naive_work = USERS * metrics["tokens_processed"]
    print(
        f"naive ECA would have evaluated {naive_work:,} conditions "
        f"({naive_work / max(1, stats.entries_probed):.0f}x more probes)"
    )


if __name__ == "__main__":
    main()
