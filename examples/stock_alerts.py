"""Web-scale trigger creation over a stream (§1's motivating scenario).

Thousands of users create threshold alerts against a stock-tick stream
through the data source API.  Watch the constant-set organizations migrate
automatically (memory list → memory index → indexed database table) as the
per-signature equivalence classes grow, exactly as §5.2 prescribes.

The whole workload runs through the *client* surface, so the same program
works in-process or against a remote trigger processor:

    python examples/stock_alerts.py                    # in-process engine
    python -m repro --serve 127.0.0.1:7437             # in one terminal
    python examples/stock_alerts.py --connect 127.0.0.1:7437   # in another
    python examples/stock_alerts.py --cluster 4        # 4 worker processes
                                                       # behind a coordinator

The notification digest printed at the end is an order-independent hash
of *what fired* (event, args, trigger) — per-engine sequence numbers and
arrival order are excluded — so all three modes print the **same digest**
for the same seed: the cluster partitions the work without changing the
answer.

Environment knobs: ``STOCK_USERS`` (triggers, default 4000),
``STOCK_TICKS`` (stream inserts, default 100), ``STOCK_WATCH`` (alert
events subscribed to for notification delivery, default 200).
"""

import hashlib
import os
import random
import sys
import time

USERS = int(os.environ.get("STOCK_USERS", "4000"))
TICKS = int(os.environ.get("STOCK_TICKS", "100"))
WATCH = int(os.environ.get("STOCK_WATCH", "200"))
SYMBOLS = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "WAYNE", "STARK"]


def build_triggers(client) -> None:
    random.seed(7)
    client.command(
        "define data source ticks as stream (symbol varchar(8), price float)"
    )
    print(f"{USERS} users creating price alerts...")
    for user in range(USERS):
        symbol = random.choice(SYMBOLS)
        threshold = random.randrange(10, 500)
        kind = random.random()
        if kind < 0.5:
            condition = (
                f"ticks.symbol = '{symbol}' and ticks.price > {threshold}"
            )
        elif kind < 0.8:
            condition = f"ticks.price > {threshold}"
        else:
            low = threshold
            condition = f"ticks.price between {low} and {low + 50}"
        client.command(
            f"create trigger user{user}_alert from ticks on insert "
            f"when {condition} do raise event Alert{user}(ticks.price)"
        )


def drain_notifications(client):
    """Collect the inbox, waiting for in-flight (remote) pushes to settle."""
    notifications = []
    idle_since = time.monotonic()
    while time.monotonic() - idle_since < 0.5:
        notification = client.next_notification()
        if notification is None:
            time.sleep(0.02)
            continue
        notifications.append(notification)
        idle_since = time.monotonic()
    return notifications


def run(client, make_feed) -> None:
    build_triggers(client)

    print("\nsignature catalog (constantSetOrganization chosen by size):")
    print(client.console("show signatures"))

    for user in range(min(WATCH, USERS)):
        client.register_for_event(f"Alert{user}")

    feed = make_feed()
    print(f"\nfeeding {TICKS} ticks...")
    for _ in range(TICKS):
        feed.insert(
            {
                "symbol": random.choice(SYMBOLS),
                "price": float(random.randrange(5, 600)),
            }
        )
    client.process()

    metrics = client.metrics()
    notifications = drain_notifications(client)
    digest = hashlib.sha256()
    for line in sorted(
        f"{n.event_name}:{list(n.args)}:{n.trigger_name}"
        for n in notifications
    ):
        digest.update(line.encode())
    print(f"\ntokens processed : {metrics['tokens_processed']}")
    print(f"triggers fired   : {metrics['triggers_fired']}")
    print(f"actions executed : {metrics['actions_executed']}")
    print(
        f"notifications    : {len(notifications)} delivered to this client "
        f"(watching {min(WATCH, USERS)} of {USERS} alert events)"
    )
    print(f"notification digest: {digest.hexdigest()[:16]}")
    naive_work = USERS * metrics["tokens_processed"]
    print(f"naive ECA would have evaluated {naive_work:,} conditions")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--cluster":
        if len(argv) != 2 or not argv[1].isdigit():
            print("usage: stock_alerts.py [--cluster N]")
            return 2
        from repro.cluster import (
            ClusterClient,
            ClusterCoordinator,
            ClusterDataSourceProgram,
        )

        coordinator = ClusterCoordinator(int(argv[1])).start()
        print(f"spawned {argv[1]} workers:", coordinator.status()["shards"])
        client = ClusterClient(coordinator, inbox_limit=None)
        try:
            run(client, lambda: ClusterDataSourceProgram(client, "ticks"))
        finally:
            client.close()
            coordinator.close()
        return 0
    if argv and argv[0] == "--connect":
        if len(argv) != 2:
            print("usage: stock_alerts.py [--connect HOST:PORT]")
            return 2
        from repro.net.remote import (
            RemoteDataSourceProgram,
            RemoteTriggerManClient,
        )

        client = RemoteTriggerManClient(argv[1], inbox_limit=None)
        print("connected to", argv[1], client.ping())
        try:
            run(client, lambda: RemoteDataSourceProgram(client, "ticks"))
        finally:
            client.disconnect()
            client.close()
        return 0

    from repro import TriggerMan
    from repro.engine.client import DataSourceProgram, TriggerManClient
    from repro.predindex.costmodel import Limits

    # Small limits so the organization migrations are visible at demo scale.
    tman = TriggerMan.in_memory(limits=Limits(list_max=16, memory_max=1000))
    client = TriggerManClient(tman, inbox_limit=None)
    run(client, lambda: DataSourceProgram(tman, "ticks"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
