"""Unit tests for A-TREAT networks: alpha memories, join search, P-nodes."""

import pytest

from repro.condition.classify import build_condition_graph
from repro.errors import NetworkError
from repro.lang.evaluator import Evaluator
from repro.lang.exprparser import parse_expression_text as parse
from repro.network.nodes import AlphaMemory, PNode, VirtualAlphaMemory
from repro.network.treat import ATreatNetwork


def make_network(tvars, when_text, fetchers=None):
    when = parse(when_text) if when_text else None
    graph = build_condition_graph(tvars, when)
    return ATreatNetwork(1, graph, Evaluator(), fetchers)


class TestAlphaMemory:
    def test_insert_remove(self):
        memory = AlphaMemory("alpha:t", "t")
        memory.insert({"a": 1})
        memory.insert({"a": 2})
        assert len(memory) == 2
        assert memory.remove({"a": 1})
        assert not memory.remove({"a": 99})
        assert [r["a"] for r in memory.rows()] == [2]

    def test_rows_are_copies(self):
        memory = AlphaMemory("alpha:t", "t")
        row = {"a": 1}
        memory.insert(row)
        row["a"] = 2
        assert next(memory.rows())["a"] == 1


class TestVirtualAlphaMemory:
    def test_filters_by_selection(self):
        base = [{"x": 1}, {"x": 5}, {"x": 10}]
        memory = VirtualAlphaMemory(
            "alpha:t", "t", lambda: iter(base), parse("t.x > 3"), Evaluator()
        )
        assert [r["x"] for r in memory.rows()] == [5, 10]

    def test_no_selection_passes_all(self):
        base = [{"x": 1}, {"x": 2}]
        memory = VirtualAlphaMemory(
            "alpha:t", "t", lambda: iter(base), None, Evaluator()
        )
        assert len(list(memory.rows())) == 2


class TestSingleSourceNetwork:
    def test_entry_node_is_pnode(self):
        network = make_network(["e"], "e.x > 1")
        assert network.entry_node_id("e") == "pnode"

    def test_activate_yields_binding(self):
        network = make_network(["e"], None)
        matches = network.activate("e", "insert", {"x": 5})
        assert len(matches) == 1
        assert matches[0].rows["e"] == {"x": 5}

    def test_delete_uses_old_row(self):
        network = make_network(["e"], None)
        matches = network.activate("e", "delete", None, {"x": 7})
        assert matches[0].rows["e"] == {"x": 7}

    def test_update_carries_old_image(self):
        network = make_network(["e"], None)
        matches = network.activate(
            "e", "update", {"x": 2}, {"x": 1}
        )
        assert matches[0].rows["e"]["x"] == 2
        assert matches[0].old_rows["e"]["x"] == 1

    def test_single_source_memory_not_grown(self):
        network = make_network(["e"], None)
        for i in range(10):
            network.activate("e", "insert", {"x": i})
        assert len(network.alpha["e"]) == 0

    def test_missing_image_raises(self):
        network = make_network(["e"], None)
        with pytest.raises(NetworkError):
            network.activate("e", "insert", None)
        with pytest.raises(NetworkError):
            network.activate("e", "bogus", {"x": 1})

    def test_catch_all_applied(self):
        network = make_network(["e"], "1 = 2")
        assert network.activate("e", "insert", {"x": 1}) == []


class TestTwoWayJoin:
    def _network(self):
        network = make_network(["a", "b"], "a.k = b.k")
        network.prime("b", iter([{"k": 1, "v": "b1"}, {"k": 2, "v": "b2"}]))
        return network

    def test_join_match(self):
        network = self._network()
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 1
        assert matches[0].rows["b"]["v"] == "b1"

    def test_join_no_match(self):
        network = self._network()
        assert network.activate("a", "insert", {"k": 99}) == []

    def test_seed_from_other_side(self):
        network = self._network()
        network.activate("a", "insert", {"k": 1})
        matches = network.activate("b", "insert", {"k": 1, "v": "b3"})
        # joins against the 'a' row stored earlier
        assert len(matches) == 1
        assert matches[0].rows["a"]["k"] == 1

    def test_delete_maintains_memory(self):
        network = self._network()
        network.activate("b", "delete", None, {"k": 1, "v": "b1"})
        assert network.activate("a", "insert", {"k": 1}) == []

    def test_update_rebinds(self):
        network = self._network()
        network.activate(
            "b", "update", {"k": 5, "v": "b1"}, {"k": 1, "v": "b1"}
        )
        assert network.activate("a", "insert", {"k": 1}) == []
        assert len(network.activate("a", "insert", {"k": 5})) == 1


class TestThreeWayJoin:
    def test_iris_topology(self):
        when = (
            "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"
        )
        network = make_network(["s", "h", "r"], when)
        network.prime("s", iter([{"spno": 1, "name": "Iris"}]))
        network.prime("r", iter([{"spno": 1, "nno": 10}, {"spno": 1, "nno": 20}]))
        matches = network.activate("h", "insert", {"hno": 7, "nno": 10})
        assert len(matches) == 1
        assert matches[0].rows["s"]["name"] == "Iris"
        assert matches[0].rows["r"]["nno"] == 10

    def test_multiple_combinations(self):
        network = make_network(["a", "b"], "a.k = b.k")
        network.prime("b", iter([{"k": 1, "i": 1}, {"k": 1, "i": 2}]))
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 2

    def test_cartesian_when_disconnected(self):
        network = make_network(["a", "b"], None)
        network.prime("b", iter([{"x": 1}, {"x": 2}]))
        matches = network.activate("a", "insert", {"y": 9})
        assert len(matches) == 2

    def test_hyper_join_catch_all(self):
        when = "a.x + b.y = c.z"
        network = make_network(["a", "b", "c"], when)
        network.prime("b", iter([{"y": 2}]))
        network.prime("c", iter([{"z": 5}]))
        assert len(network.activate("a", "insert", {"x": 3})) == 1
        assert network.activate("a", "insert", {"x": 4}) == []


class TestVirtualJoin:
    def test_virtual_alpha_queries_base(self):
        base_b = [{"k": 1, "v": "fresh"}]
        network = make_network(
            ["a", "b"], "a.k = b.k", fetchers={"b": lambda: iter(base_b)}
        )
        assert len(network.activate("a", "insert", {"k": 1})) == 1
        base_b.append({"k": 1, "v": "later"})
        assert len(network.activate("a", "insert", {"k": 1})) == 2

    def test_virtual_alpha_applies_selection(self):
        base_b = [{"k": 1, "q": 1}, {"k": 1, "q": 100}]
        network = make_network(
            ["a", "b"],
            "a.k = b.k and b.q > 10",
            fetchers={"b": lambda: iter(base_b)},
        )
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 1
        assert matches[0].rows["b"]["q"] == 100


class TestIntrospection:
    def test_node_lookup(self):
        network = make_network(["a", "b"], "a.k = b.k")
        assert isinstance(network.node("pnode"), PNode)
        assert network.node("alpha:a").tvar == "a"
        with pytest.raises(NetworkError):
            network.node("alpha:zz")

    def test_memory_sizes(self):
        network = make_network(
            ["a", "b"], "a.k = b.k", fetchers={"b": lambda: iter([])}
        )
        network.activate("a", "insert", {"k": 1})
        sizes = network.memory_sizes()
        assert sizes["a"] == 1
        assert sizes["b"] is None  # virtual

    def test_pnode_counts(self):
        pnode = PNode("pnode")
        seen = []
        pnode.on_match = seen.append
        from repro.lang.evaluator import Bindings

        pnode.activate(Bindings())
        assert pnode.match_count == 1
        assert len(seen) == 1


class TestAlgebraicJoinSignatures:
    """Signature-hash bucket probing for equi-join edges (§5.4 probe cost)."""

    def _joined(self, net, seed_row):
        return [b.rows for b in net.activate("emp", "insert", seed_row)]

    def test_plan_built_for_equality_edge(self):
        net = make_network(["emp", "dept"], "emp.dept = dept.dno")
        assert ("dept", "emp") in net._join_plans

    def test_no_plan_without_equality_conjunct(self):
        net = make_network(["emp", "dept"], "emp.salary > dept.budget")
        assert net._join_plans == {}

    def test_bucket_probe_narrows_candidates(self):
        net = make_network(["emp", "dept"], "emp.dept = dept.dno")
        net.prime("dept", iter({"dno": i} for i in range(100)))
        out = self._joined(net, {"dept": 42})
        assert len(out) == 1
        assert out[0]["dept"]["dno"] == 42
        assert net.join_stats["hash_probes"] == 1
        # the probe touched the one-bucket candidate, not all 100 rows
        assert net.join_stats["candidates"] == 1

    def test_hash_is_prefilter_only(self):
        # Non-equality conjuncts on the same edge are still evaluated on
        # every bucket candidate.
        net = make_network(
            ["emp", "dept"],
            "emp.dept = dept.dno and emp.salary > dept.budget",
        )
        net.prime("dept", iter([{"dno": 1, "budget": 50}]))
        assert self._joined(net, {"dept": 1, "salary": 100}) != []
        assert self._joined(net, {"dept": 1, "salary": 10}) == []

    def test_cross_type_numeric_keys_match(self):
        # SQL numeric equality crosses int/float; hash(1) == hash(1.0)
        # keeps them in the same bucket.
        net = make_network(["emp", "dept"], "emp.dept = dept.dno")
        net.prime("dept", iter([{"dno": 1.0}]))
        assert self._joined(net, {"dept": 1}) != []

    def test_null_join_key_matches_nothing(self):
        net = make_network(["emp", "dept"], "emp.dept = dept.dno")
        net.prime("dept", iter([{"dno": None}, {"dno": 1}]))
        assert self._joined(net, {"dept": None}) == []
        assert len(self._joined(net, {"dept": 1})) == 1

    def test_buckets_follow_removals(self):
        net = make_network(["emp", "dept"], "emp.dept = dept.dno")
        net.prime("dept", iter([{"dno": 1, "budget": 5}]))
        net.alpha["dept"].remove({"dno": 1, "budget": 5})
        assert self._joined(net, {"dept": 1}) == []

    def test_equivalent_to_scan(self):
        # Differential check: bucket-probed results equal the pre-plan
        # full-scan semantics for a mixed workload.
        net = make_network(
            ["emp", "dept"],
            "emp.dept = dept.dno and emp.salary > dept.budget",
        )
        rows = [
            {"dno": i % 5, "budget": (i * 7) % 30} for i in range(40)
        ]
        net.prime("dept", iter(rows))
        for key in range(-1, 7):
            got = self._joined(net, {"dept": key, "salary": 15})
            expected = [
                r for r in rows if r["dno"] == key and 15 > r["budget"]
            ]
            assert sorted(
                (b["dept"]["dno"], b["dept"]["budget"]) for b in got
            ) == sorted((r["dno"], r["budget"]) for r in expected)

    def test_virtual_memories_fall_back_to_scan(self):
        base = [{"dno": 1}, {"dno": 2}]
        net = make_network(
            ["emp", "dept"],
            "emp.dept = dept.dno",
            fetchers={"dept": lambda: iter(base)},
        )
        assert len(self._joined(net, {"dept": 2})) == 1
        assert net.join_stats["hash_probes"] == 0
