"""Unit tests for A-TREAT networks: alpha memories, join search, P-nodes."""

import pytest

from repro.condition.classify import build_condition_graph
from repro.errors import NetworkError
from repro.lang.evaluator import Evaluator
from repro.lang.exprparser import parse_expression_text as parse
from repro.network.nodes import AlphaMemory, PNode, VirtualAlphaMemory
from repro.network.treat import ATreatNetwork


def make_network(tvars, when_text, fetchers=None):
    when = parse(when_text) if when_text else None
    graph = build_condition_graph(tvars, when)
    return ATreatNetwork(1, graph, Evaluator(), fetchers)


class TestAlphaMemory:
    def test_insert_remove(self):
        memory = AlphaMemory("alpha:t", "t")
        memory.insert({"a": 1})
        memory.insert({"a": 2})
        assert len(memory) == 2
        assert memory.remove({"a": 1})
        assert not memory.remove({"a": 99})
        assert [r["a"] for r in memory.rows()] == [2]

    def test_rows_are_copies(self):
        memory = AlphaMemory("alpha:t", "t")
        row = {"a": 1}
        memory.insert(row)
        row["a"] = 2
        assert next(memory.rows())["a"] == 1


class TestVirtualAlphaMemory:
    def test_filters_by_selection(self):
        base = [{"x": 1}, {"x": 5}, {"x": 10}]
        memory = VirtualAlphaMemory(
            "alpha:t", "t", lambda: iter(base), parse("t.x > 3"), Evaluator()
        )
        assert [r["x"] for r in memory.rows()] == [5, 10]

    def test_no_selection_passes_all(self):
        base = [{"x": 1}, {"x": 2}]
        memory = VirtualAlphaMemory(
            "alpha:t", "t", lambda: iter(base), None, Evaluator()
        )
        assert len(list(memory.rows())) == 2


class TestSingleSourceNetwork:
    def test_entry_node_is_pnode(self):
        network = make_network(["e"], "e.x > 1")
        assert network.entry_node_id("e") == "pnode"

    def test_activate_yields_binding(self):
        network = make_network(["e"], None)
        matches = network.activate("e", "insert", {"x": 5})
        assert len(matches) == 1
        assert matches[0].rows["e"] == {"x": 5}

    def test_delete_uses_old_row(self):
        network = make_network(["e"], None)
        matches = network.activate("e", "delete", None, {"x": 7})
        assert matches[0].rows["e"] == {"x": 7}

    def test_update_carries_old_image(self):
        network = make_network(["e"], None)
        matches = network.activate(
            "e", "update", {"x": 2}, {"x": 1}
        )
        assert matches[0].rows["e"]["x"] == 2
        assert matches[0].old_rows["e"]["x"] == 1

    def test_single_source_memory_not_grown(self):
        network = make_network(["e"], None)
        for i in range(10):
            network.activate("e", "insert", {"x": i})
        assert len(network.alpha["e"]) == 0

    def test_missing_image_raises(self):
        network = make_network(["e"], None)
        with pytest.raises(NetworkError):
            network.activate("e", "insert", None)
        with pytest.raises(NetworkError):
            network.activate("e", "bogus", {"x": 1})

    def test_catch_all_applied(self):
        network = make_network(["e"], "1 = 2")
        assert network.activate("e", "insert", {"x": 1}) == []


class TestTwoWayJoin:
    def _network(self):
        network = make_network(["a", "b"], "a.k = b.k")
        network.prime("b", iter([{"k": 1, "v": "b1"}, {"k": 2, "v": "b2"}]))
        return network

    def test_join_match(self):
        network = self._network()
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 1
        assert matches[0].rows["b"]["v"] == "b1"

    def test_join_no_match(self):
        network = self._network()
        assert network.activate("a", "insert", {"k": 99}) == []

    def test_seed_from_other_side(self):
        network = self._network()
        network.activate("a", "insert", {"k": 1})
        matches = network.activate("b", "insert", {"k": 1, "v": "b3"})
        # joins against the 'a' row stored earlier
        assert len(matches) == 1
        assert matches[0].rows["a"]["k"] == 1

    def test_delete_maintains_memory(self):
        network = self._network()
        network.activate("b", "delete", None, {"k": 1, "v": "b1"})
        assert network.activate("a", "insert", {"k": 1}) == []

    def test_update_rebinds(self):
        network = self._network()
        network.activate(
            "b", "update", {"k": 5, "v": "b1"}, {"k": 1, "v": "b1"}
        )
        assert network.activate("a", "insert", {"k": 1}) == []
        assert len(network.activate("a", "insert", {"k": 5})) == 1


class TestThreeWayJoin:
    def test_iris_topology(self):
        when = (
            "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"
        )
        network = make_network(["s", "h", "r"], when)
        network.prime("s", iter([{"spno": 1, "name": "Iris"}]))
        network.prime("r", iter([{"spno": 1, "nno": 10}, {"spno": 1, "nno": 20}]))
        matches = network.activate("h", "insert", {"hno": 7, "nno": 10})
        assert len(matches) == 1
        assert matches[0].rows["s"]["name"] == "Iris"
        assert matches[0].rows["r"]["nno"] == 10

    def test_multiple_combinations(self):
        network = make_network(["a", "b"], "a.k = b.k")
        network.prime("b", iter([{"k": 1, "i": 1}, {"k": 1, "i": 2}]))
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 2

    def test_cartesian_when_disconnected(self):
        network = make_network(["a", "b"], None)
        network.prime("b", iter([{"x": 1}, {"x": 2}]))
        matches = network.activate("a", "insert", {"y": 9})
        assert len(matches) == 2

    def test_hyper_join_catch_all(self):
        when = "a.x + b.y = c.z"
        network = make_network(["a", "b", "c"], when)
        network.prime("b", iter([{"y": 2}]))
        network.prime("c", iter([{"z": 5}]))
        assert len(network.activate("a", "insert", {"x": 3})) == 1
        assert network.activate("a", "insert", {"x": 4}) == []


class TestVirtualJoin:
    def test_virtual_alpha_queries_base(self):
        base_b = [{"k": 1, "v": "fresh"}]
        network = make_network(
            ["a", "b"], "a.k = b.k", fetchers={"b": lambda: iter(base_b)}
        )
        assert len(network.activate("a", "insert", {"k": 1})) == 1
        base_b.append({"k": 1, "v": "later"})
        assert len(network.activate("a", "insert", {"k": 1})) == 2

    def test_virtual_alpha_applies_selection(self):
        base_b = [{"k": 1, "q": 1}, {"k": 1, "q": 100}]
        network = make_network(
            ["a", "b"],
            "a.k = b.k and b.q > 10",
            fetchers={"b": lambda: iter(base_b)},
        )
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 1
        assert matches[0].rows["b"]["q"] == 100


class TestIntrospection:
    def test_node_lookup(self):
        network = make_network(["a", "b"], "a.k = b.k")
        assert isinstance(network.node("pnode"), PNode)
        assert network.node("alpha:a").tvar == "a"
        with pytest.raises(NetworkError):
            network.node("alpha:zz")

    def test_memory_sizes(self):
        network = make_network(
            ["a", "b"], "a.k = b.k", fetchers={"b": lambda: iter([])}
        )
        network.activate("a", "insert", {"k": 1})
        sizes = network.memory_sizes()
        assert sizes["a"] == 1
        assert sizes["b"] is None  # virtual

    def test_pnode_counts(self):
        pnode = PNode("pnode")
        seen = []
        pnode.on_match = seen.append
        from repro.lang.evaluator import Bindings

        pnode.activate(Bindings())
        assert pnode.match_count == 1
        assert len(seen) == 1
