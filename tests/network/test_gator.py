"""Unit and property tests for the Gator network, including equivalence
with A-TREAT on random token streams."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condition.classify import build_condition_graph
from repro.errors import NetworkError
from repro.lang.evaluator import Evaluator
from repro.lang.exprparser import parse_expression_text as parse
from repro.network.gator import GatorNetwork
from repro.network.treat import ATreatNetwork


def make_gator(tvars, when_text, join_order=None):
    when = parse(when_text) if when_text else None
    graph = build_condition_graph(tvars, when)
    return GatorNetwork(1, graph, Evaluator(), join_order=join_order)


class TestSingleSource:
    def test_passthrough(self):
        network = make_gator(["e"], None)
        assert network.entry_node_id("e") == "pnode"
        matches = network.activate("e", "insert", {"x": 1})
        assert len(matches) == 1

    def test_catch_all(self):
        network = make_gator(["e"], "1 = 2")
        assert network.activate("e", "insert", {"x": 1}) == []


class TestTwoWayJoin:
    def _network(self):
        network = make_gator(["a", "b"], "a.k = b.k")
        network.prime("b", iter([{"k": 1, "v": "b1"}, {"k": 2, "v": "b2"}]))
        return network

    def test_insert_joins(self):
        network = self._network()
        matches = network.activate("a", "insert", {"k": 1})
        assert len(matches) == 1
        assert matches[0].rows["b"]["v"] == "b1"

    def test_beta_memory_grows(self):
        network = self._network()
        network.activate("a", "insert", {"k": 1})
        assert network.memory_sizes()["beta:1"] == 1

    def test_later_token_joins_against_beta(self):
        network = self._network()
        network.activate("a", "insert", {"k": 1})
        # a new b row extends the stored a row
        matches = network.activate("b", "insert", {"k": 1, "v": "b3"})
        assert len(matches) == 1
        assert matches[0].rows["a"]["k"] == 1

    def test_delete_emits_then_retracts(self):
        network = self._network()
        network.activate("a", "insert", {"k": 1})
        matches = network.activate("b", "delete", None, {"k": 1, "v": "b1"})
        assert len(matches) == 1  # emission uses pre-removal state
        # after retraction the join is gone
        assert network.activate("a", "insert", {"k": 1}) == []
        assert network.memory_sizes()["alpha:b"] == 1

    def test_update_rebinds(self):
        network = self._network()
        network.activate(
            "b", "update", {"k": 9, "v": "b1"}, {"k": 1, "v": "b1"}
        )
        assert network.activate("a", "insert", {"k": 1}) == []
        assert len(network.activate("a", "insert", {"k": 9})) == 1


class TestThreeWayJoin:
    def test_iris_topology(self):
        when = "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"
        network = make_gator(["s", "h", "r"], when, join_order=["s", "r", "h"])
        network.prime("s", iter([{"spno": 1, "name": "Iris"}]))
        network.prime("r", iter([{"spno": 1, "nno": 10}]))
        matches = network.activate("h", "insert", {"hno": 7, "nno": 10})
        assert len(matches) == 1
        # betas hold the s⋈r partial
        assert network.memory_sizes()["beta:1"] == 1

    def test_bad_join_order_rejected(self):
        with pytest.raises(NetworkError):
            make_gator(["a", "b"], "a.k = b.k", join_order=["a", "z"])

    def test_prime_rebuilds_betas(self):
        network = make_gator(["a", "b"], "a.k = b.k")
        network.prime("a", iter([{"k": 1}, {"k": 2}]))
        network.prime("b", iter([{"k": 1}, {"k": 1}]))
        assert network.memory_sizes()["beta:1"] == 2  # a(k=1) x two b rows


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 3),
        ),
        max_size=24,
    )
)
def test_gator_equivalent_to_atreat(events):
    """Property: on any token stream, Gator and A-TREAT emit identical
    match sets (A-TREAT derives from alphas; Gator from betas)."""
    when = parse("a.k = b.k and b.k = c.k")
    graph = build_condition_graph(["a", "b", "c"], when)
    treat = ATreatNetwork(1, graph, Evaluator())
    gator = GatorNetwork(1, graph, Evaluator())
    live = {"a": [], "b": [], "c": []}
    serial = 0
    for tvar, op, k in events:
        serial += 1
        if op == "insert":
            row = {"k": k, "id": serial}
            live[tvar].append(row)
            treat_out = treat.activate(tvar, "insert", row)
            gator_out = gator.activate(tvar, "insert", row)
        else:
            if not live[tvar]:
                continue
            row = live[tvar].pop(0)
            treat_out = treat.activate(tvar, "delete", None, row)
            gator_out = gator.activate(tvar, "delete", None, row)

        def canon(out):
            return sorted(
                tuple(sorted((tv, r["id"]) for tv, r in b.rows.items()))
                for b in out
            )

        assert canon(treat_out) == canon(gator_out)
