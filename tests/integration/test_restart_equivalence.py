"""Restart-equivalence: a persistent TriggerMan that crashes and recovers
between tokens must fire exactly what an uninterrupted instance fires.

Recovery = catalog replay (DESIGN.md §2): triggers are rebuilt from their
stored text, constant tables are rebuilt, and the durable queue's backlog
survives.
"""

import random

import pytest

from repro.engine.triggerman import TriggerMan

DEPTS = ["toys", "shoes", "books"]


def make_tokens(rng, n):
    return [
        {
            "name": f"u{rng.randrange(40)}",
            "salary": float(rng.randrange(300)),
            "dept": rng.choice(DEPTS),
        }
        for _ in range(n)
    ]


def make_conditions(rng, n):
    out = []
    for _ in range(n):
        kind = rng.randrange(4)
        if kind == 0:
            out.append(f"emp.salary > {rng.randrange(300)}")
        elif kind == 1:
            out.append(f"emp.dept = '{rng.choice(DEPTS)}'")
        elif kind == 2:
            out.append(
                f"emp.dept = '{rng.choice(DEPTS)}' and "
                f"emp.salary < {rng.randrange(300)}"
            )
        else:
            out.append(f"emp.name = 'u{rng.randrange(40)}'")
    return out


def define(tman):
    tman.define_table(
        "emp",
        [("name", "varchar(40)"), ("salary", "float"), ("dept", "varchar(20)")],
    )


def create_all(tman, conditions):
    for i, condition in enumerate(conditions):
        tman.create_trigger(
            f"create trigger t{i} from emp on insert when {condition} "
            f"do raise event Fired(emp.name)"
        )


def firings(tman):
    return [(n.trigger_name, n.args) for n in tman.events.history]


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_restart_between_batches_is_transparent(tmp_path, seed):
    rng = random.Random(seed)
    conditions = make_conditions(rng, 30)
    batches = [make_tokens(rng, 10) for _ in range(3)]

    # Reference: one uninterrupted in-memory run.
    reference = TriggerMan.in_memory()
    define(reference)
    create_all(reference, conditions)
    for batch in batches:
        for token in batch:
            reference.insert("emp", token)
        reference.process_all()
    expected = firings(reference)

    # Subject: persistent instance, closed and reopened between batches,
    # with the last batch left *unprocessed* in the durable queue across a
    # restart.
    path = str(tmp_path / "tman")
    tman = TriggerMan.persistent(path)
    define(tman)
    create_all(tman, conditions)
    got = []
    for i, batch in enumerate(batches):
        for token in batch:
            tman.insert("emp", token)
        if i < len(batches) - 1:
            tman.process_all()
            got.extend(firings(tman))
            tman.events.history.clear()
        # crash: no flush beyond what table writes already did
        tman.catalog_db.close()
        tman = TriggerMan.persistent(path)
    tman.process_all()
    got.extend(firings(tman))
    tman.catalog_db.close()

    assert got == expected


def test_restart_preserves_signature_statistics(tmp_path):
    path = str(tmp_path / "tman")
    tman = TriggerMan.persistent(path)
    define(tman)
    for i in range(20):
        tman.create_trigger(
            f"create trigger t{i} from emp on insert "
            f"when emp.salary > {i} do raise event E{i}"
        )
    before = tman.catalog.list_signatures()
    tman.catalog_db.close()

    tman2 = TriggerMan.persistent(path)
    after = tman2.catalog.list_signatures()
    assert len(after) == len(before) == 1
    assert after[0]["constantSetSize"] == 20
    assert tman2.index.entry_count() == 20
    tman2.catalog_db.close()
