"""Integration tests replaying the paper's own examples end to end."""

import pytest

from repro.engine.triggerman import TriggerMan
from repro.workloads import populate_realestate


class TestUpdateFredScenario:
    """§2's first example: bind Fred's salary to Bob's."""

    def test_full_flow(self, tman_emp):
        tman_emp.insert("emp", {"name": "Fred", "salary": 100.0})
        tman_emp.insert("emp", {"name": "Bob", "salary": 500.0})
        tman_emp.process_all()
        tman_emp.create_trigger(
            "create trigger updateFred from emp on update(emp.salary) "
            "when emp.name = 'Bob' "
            "do execSQL 'update emp set salary=:NEW.emp.salary "
            "where emp.name= ''Fred'''"
        )
        tman_emp.update_rows("emp", {"name": "Bob"}, {"salary": 777.0})
        tman_emp.process_all()
        assert tman_emp.execute_sql(
            "select salary from emp where name = 'Fred'"
        ) == [(777.0,)]

    def test_loop_terminates(self, tman_emp):
        """The trigger targets Bob only, so the cascade (Fred's update) does
        not re-fire it — the async loop drains."""
        tman_emp.insert("emp", {"name": "Fred", "salary": 1.0})
        tman_emp.insert("emp", {"name": "Bob", "salary": 1.0})
        tman_emp.process_all()
        tman_emp.create_trigger(
            "create trigger updateFred from emp on update(emp.salary) "
            "when emp.name = 'Bob' "
            "do execSQL 'update emp set salary=:NEW.emp.salary "
            "where emp.name= ''Fred'''"
        )
        tman_emp.update_rows("emp", {"name": "Bob"}, {"salary": 9.0})
        processed = tman_emp.process_all(max_tokens=50)
        assert processed <= 3  # Bob's update + Fred's cascade


class TestIrisScenario:
    """§2's join trigger over the real-estate schema."""

    @pytest.fixture
    def estate(self):
        tman = TriggerMan.in_memory()
        populate_realestate(tman, houses=30, salespeople=6, neighborhoods=5)
        tman.insert("salesperson", {"spno": 99, "name": "Iris", "phone": "1"})
        tman.insert("represents", {"spno": 99, "nno": 0})
        tman.insert("represents", {"spno": 99, "nno": 1})
        tman.process_all()
        tman.create_trigger(
            "create trigger IrisHouseAlert on insert to house "
            "from salesperson s, house h, represents r "
            "when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno "
            "do raise event NewHouseInIrisNeighborhood(h.hno, h.address)"
        )
        return tman

    def test_house_in_iris_neighborhood_fires(self, estate):
        estate.insert(
            "house",
            {"hno": 900, "address": "x", "price": 1.0, "nno": 0, "spno": 1},
        )
        estate.process_all()
        events = [
            n for n in estate.events.history
            if n.event_name == "NewHouseInIrisNeighborhood"
        ]
        assert [e.args for e in events] == [(900, "x")]

    def test_house_elsewhere_does_not_fire(self, estate):
        estate.insert(
            "house",
            {"hno": 901, "address": "y", "price": 1.0, "nno": 4, "spno": 1},
        )
        estate.process_all()
        events = [
            n for n in estate.events.history
            if n.event_name == "NewHouseInIrisNeighborhood"
        ]
        assert events == []

    def test_many_salesperson_variants_one_signature(self, estate):
        """§5: per-salesperson variants share the one signature."""
        for i, name in enumerate(("sp0", "sp1", "sp2", "sp3")):
            estate.create_trigger(
                f"create trigger alert_{name} on insert to house "
                f"from salesperson s, house h, represents r "
                f"when s.name = '{name}' and s.spno=r.spno and r.nno=h.nno "
                f"do raise event HouseFor_{name}(h.hno)"
            )
        sigs = estate.catalog.list_signatures()
        by_source = {}
        for sig in sigs:
            by_source.setdefault(sig["dataSrcID"], []).append(sig)
        # salesperson: one signature (name = CONSTANT_1) with 5 instances
        sp_sigs = by_source["salesperson"]
        assert len(sp_sigs) == 1
        assert sp_sigs[0]["constantSetSize"] == 5


class TestScaleScenario:
    """§1's motivation: thousands of user-created triggers."""

    def test_10k_triggers_few_signatures(self):
        tman = TriggerMan.in_memory()
        tman.define_table(
            "emp", [("name", "varchar(40)"), ("salary", "float")]
        )
        # emulate web users creating threshold alerts
        for i in range(1000):
            tman.create_trigger(
                f"create trigger alert{i} from emp on insert "
                f"when emp.salary > {i * 10} "
                f"do raise event Alert{i}(emp.name)"
            )
        assert tman.index.signature_count() == 1
        assert tman.index.entry_count() == 1000
        tman.insert("emp", {"name": "big", "salary": 4500.0})
        tman.process_all()
        # constants 0..4490 step 10 below 4500 → triggers 0..449
        assert tman.stats.triggers_fired == 450

    def test_matching_agrees_with_naive_baseline(self):
        from repro.workloads import (
            build_naive,
            build_predicate_index,
            emp_predicates,
            emp_tokens,
        )

        specs = emp_predicates(800, num_signatures=8)
        index = build_predicate_index(specs)
        naive = build_naive(specs)
        for token in emp_tokens(100):
            indexed = sorted(
                m.entry.trigger_id
                for m in index.match("emp", "insert", token)
            )
            linear = sorted(naive.match("emp", "insert", token))
            assert indexed == linear
