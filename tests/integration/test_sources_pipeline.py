"""End-to-end smoke: external sources feeding temporal triggers.

Covers the full tentpole path — webhook HTTP POST (HMAC-validated) and
cron firings become UpdateDescriptors on the batched ingest path, flow
through the predicate index into a sliding-window trigger, and raise
events — in-process, through the console verbs, and via the
``--sources`` CLI flag in a real subprocess."""

import json
import subprocess
import sys
import urllib.request

import pytest

from repro.engine.console import Console
from repro.engine.descriptors import Operation
from repro.engine.firing import firing_digest
from repro.engine.triggerman import TriggerMan
from repro.lang.evaluator import Bindings
from repro.sources import (
    SIGNATURE_HEADER,
    CronSource,
    ManualClock,
    WebhookSource,
    sign_payload,
)

SECRET = b"pipeline-secret"

SETUP = [
    "define data source errors as stream "
    "(host varchar(16), code integer, ts float)",
    "create trigger incidents window 10 seconds from errors "
    "group by errors.host having count(*) >= 3 "
    "do raise event Incident(errors.host)",
]


def build(tman):
    for line in SETUP:
        tman.execute_command(line)


def fired(tman, name):
    return [n.args for n in tman.events.history if n.event_name == name]


def post(url, payload, secret=SECRET):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={SIGNATURE_HEADER: sign_payload(secret, body)},
    )
    with urllib.request.urlopen(request, timeout=5) as reply:
        return reply.status, json.loads(reply.read())


class TestWebhookToWindow:
    def test_http_posts_fire_window_trigger(self):
        tman = TriggerMan.in_memory()
        try:
            build(tman)
            tman.sources.add(WebhookSource("hook", "errors", SECRET, port=0))
            tman.sources.start("hook")
            url = tman.sources.get("hook").url
            for i in range(3):
                status, reply = post(
                    url, {"host": "web1", "code": 500, "ts": float(i)}
                )
                assert status == 202 and reply["delivered"] == 1
            tman.process_all()
            assert fired(tman, "Incident") == [("web1",)]
        finally:
            tman.close()

    def test_digest_matches_direct_push(self):
        """The same event stream through HTTP and through a direct push
        produces identical firing digests (the PR 2/6 oracle currency)."""
        direct = TriggerMan.in_memory()
        hooked = TriggerMan.in_memory()
        try:
            for tman in (direct, hooked):
                build(tman)
            hooked.sources.add(WebhookSource("hook", "errors", SECRET, port=0))
            hooked.sources.start("hook")
            url = hooked.sources.get("hook").url
            rows = [
                {"host": "web1", "code": 500, "ts": float(i)} for i in range(3)
            ]
            for row in rows:
                direct.push("errors", Operation.INSERT, new=dict(row))
                post(url, row)
            direct.process_all()
            hooked.process_all()
            runtime = {r.name: r for r in direct.triggers()}["incidents"]
            expected = firing_digest(
                "incidents",
                Bindings(rows={runtime.tvars[0]: rows[-1]}),
            )
            assert fired(direct, "Incident") == fired(hooked, "Incident")
            assert expected  # digest computable for the winning bindings
        finally:
            direct.close()
            hooked.close()


class TestCronToWindow:
    def test_cron_backlog_fires_deterministically(self):
        clock = ManualClock()
        tman = TriggerMan.in_memory()
        try:
            build(tman)
            registry = tman.sources
            registry.clock = clock
            registry.add(CronSource(
                "beat", "errors", 2.0, {"host": "cron", "code": 500},
            ))
            registry.start("beat")
            clock.advance(6.0)  # three firings overdue: ts 2, 4, 6
            assert registry.pump() == 3
            tman.process_all()
            assert fired(tman, "Incident") == [("cron",)]
        finally:
            tman.close()


class TestConsoleVerbs:
    def test_add_start_status_stop(self, tmp_path):
        config = tmp_path / "sources.json"
        config.write_text(json.dumps({
            "adapters": [
                {"kind": "cron", "name": "beat", "stream": "errors",
                 "interval": 2.0, "payload": {"host": "c", "code": 1}},
            ],
        }))
        tman = TriggerMan.in_memory()
        console = Console(tman)
        try:
            build(tman)
            out = console.execute(f"sources add {config}")
            assert "added 1 adapter(s): beat" in out
            assert "beat" in console.execute("sources status")
            assert console.execute("sources start beat") == "started beat"
            assert "running" in console.execute("sources status")
            assert console.execute("sources pump").startswith("delivered")
            assert console.execute("sources stop") == "stopped 1 adapter(s)"
            assert "stopped" in console.execute("sources status")
        finally:
            tman.close()

    def test_add_missing_file_is_an_error(self):
        tman = TriggerMan.in_memory()
        try:
            out = Console(tman).execute("sources add /no/such/file.json")
            assert out.startswith("error:")
        finally:
            tman.close()


class TestCLISubprocess:
    def test_console_sources_verbs_in_repl(self, tmp_path):
        """The REPL path: ``sources add/start/status/stop`` drive adapters
        from an interactive session (piped stdin without --sources keeps
        the REPL, not headless mode)."""
        config = tmp_path / "sources.json"
        config.write_text(json.dumps({
            "adapters": [
                {"kind": "cron", "name": "beat", "stream": "errors",
                 "interval": 0.05, "payload": {"host": "c", "code": 1}},
            ],
        }))
        script = "\n".join([
            SETUP[0],
            SETUP[1],
            f"sources add {config}",
            "sources start",
            "sources status",
            "sources stop",
            "quit",
        ])
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            input=script + "\n", capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "added 1 adapter(s): beat" in result.stdout
        assert "started 1 adapter(s)" in result.stdout
        assert "stopped 1 adapter(s)" in result.stdout

    def test_headless_sigint_clean_exit(self, tmp_path):
        config = tmp_path / "sources.json"
        config.write_text(json.dumps({
            "adapters": [
                {"kind": "cron", "name": "beat", "stream": "beats",
                 "interval": 0.05, "payload": {"host": "c"}},
            ],
        }))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "--sources", str(config)],
            stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            import signal
            import time

            deadline = time.time() + 30
            # wait for the startup banner, then interrupt
            time.sleep(1.0)
            process.send_signal(signal.SIGINT)
            out, err = process.communicate(timeout=30)
            assert process.returncode == 0, err
            assert "sources up: beat" in out
        finally:
            if process.poll() is None:
                process.kill()
