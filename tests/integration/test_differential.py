"""Differential testing: the full TriggerMan engine against a brute-force
reference on randomized trigger populations and token streams.

The reference evaluates every trigger's original WHEN text directly against
every token (the naive ECA semantics) — if the predicate index, signature
split, residual tests, organizations, cache reloads, or event routing break
anywhere, the firing sets diverge.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.triggerman import TriggerMan
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex.costmodel import Limits

EVALUATOR = Evaluator()

DEPTS = ["toys", "shoes", "books"]


def random_condition(rng):
    kind = rng.randrange(7)
    if kind == 0:
        return f"emp.salary > {rng.randrange(200)}"
    if kind == 1:
        return f"emp.salary < {rng.randrange(200)}"
    if kind == 2:
        return f"emp.dept = '{rng.choice(DEPTS)}'"
    if kind == 3:
        low = rng.randrange(150)
        return f"emp.age between {low} and {low + rng.randrange(1, 40)}"
    if kind == 4:
        return (
            f"emp.dept = '{rng.choice(DEPTS)}' and "
            f"emp.salary > {rng.randrange(200)}"
        )
    if kind == 5:
        picks = rng.sample(["u1", "u2", "u3", "u11", "u25"], 2)
        return "emp.name in ({})".format(
            ", ".join(f"'{p}'" for p in picks)
        )
    return (
        f"emp.salary > {rng.randrange(200)} or "
        f"emp.dept = '{rng.choice(DEPTS)}'"
    )


def random_token(rng):
    return {
        "name": f"u{rng.randrange(50)}",
        "salary": float(rng.randrange(200)),
        "dept": rng.choice(DEPTS),
        "age": rng.randrange(200),
    }


def run_differential(seed, n_triggers, n_tokens, limits=None, network="atreat"):
    rng = random.Random(seed)
    tman = TriggerMan.in_memory(
        limits=limits or Limits(), network_type=network,
        cache_capacity=max(2, n_triggers // 3),
    )
    tman.define_table(
        "emp",
        [
            ("name", "varchar(40)"),
            ("salary", "float"),
            ("dept", "varchar(20)"),
            ("age", "integer"),
        ],
    )
    conditions = {}
    for i in range(n_triggers):
        condition = random_condition(rng)
        conditions[f"t{i}"] = parse(condition)
        tman.create_trigger(
            f"create trigger t{i} from emp on insert when {condition} "
            f"do raise event Fired(emp.name)"
        )
    for _ in range(n_tokens):
        token = random_token(rng)
        expected = {
            name
            for name, expr in conditions.items()
            if EVALUATOR.matches(expr, Bindings(rows={"emp": token}))
        }
        tman.events.history.clear()
        tman.insert("emp", token)
        tman.process_all()
        fired_names = {n.trigger_name for n in tman.events.history}
        assert fired_names == expected, (token, fired_names ^ expected)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_differential_atreat(seed):
    run_differential(seed, n_triggers=60, n_tokens=40)


@pytest.mark.parametrize("seed", [5, 6])
def test_differential_small_limits_forces_db_tables(seed):
    """Tiny organization limits push constant sets into database tables —
    the firing sets must not change."""
    run_differential(
        seed, n_triggers=80, n_tokens=30, limits=Limits(list_max=2, memory_max=5)
    )


@pytest.mark.parametrize("seed", [7, 8])
def test_differential_gator(seed):
    run_differential(seed, n_triggers=40, n_tokens=30, network="gator")
