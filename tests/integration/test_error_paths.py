"""Error-path coverage across subsystems: failures must be specific,
typed, and non-destructive."""

import pytest

from repro.errors import (
    CatalogError,
    ConditionError,
    ParseError,
    ReproError,
    TriggerError,
)
from repro.engine.triggerman import TriggerMan
from repro.sql.database import Database


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        import inspect

        import repro.errors as errors_module

        for _name, cls in inspect.getmembers(errors_module, inspect.isclass):
            if issubclass(cls, Exception) and cls is not ReproError:
                assert issubclass(cls, ReproError), cls

    def test_parse_error_carries_position(self):
        err = ParseError("boom", line=3, column=7)
        assert err.line == 3
        assert err.column == 7
        assert "line 3" in str(err)


class TestEngineErrorPaths:
    def test_create_trigger_failure_leaves_no_residue(self, tman_emp):
        """A trigger rejected at validation must not leak catalog rows or
        predicate entries."""
        before_triggers = len(tman_emp.catalog.list_triggers())
        before_entries = tman_emp.index.entry_count()
        with pytest.raises(ConditionError):
            tman_emp.create_trigger(
                "create trigger bad from emp when emp.nope = 1 "
                "do raise event E"
            )
        assert len(tman_emp.catalog.list_triggers()) == before_triggers
        assert tman_emp.index.entry_count() == before_entries
        # name is reusable afterwards
        tman_emp.create_trigger(
            "create trigger bad from emp do raise event E"
        )

    def test_drop_missing_trigger(self, tman_emp):
        with pytest.raises(TriggerError):
            tman_emp.drop_trigger("ghost")

    def test_command_parse_error_propagates(self, tman_emp):
        with pytest.raises(ParseError):
            tman_emp.execute_command("create trigger from nothing")

    def test_action_failures_accumulate_with_details(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger bad from emp on insert "
            "do execSQL 'select * from missing_table'"
        )
        tman_emp.insert("emp", {"name": "x", "salary": 1.0})
        tman_emp.process_all()
        (failure,) = tman_emp.actions.failures
        assert failure.trigger_name == "bad"
        assert "missing_table" in failure.action_text
        assert isinstance(failure.error, ReproError)

    def test_unknown_event_target(self, tman_emp):
        with pytest.raises(TriggerError):
            tman_emp.create_trigger(
                "create trigger t from emp on insert to ghosts "
                "do raise event E"
            )


class TestSqlErrorPaths:
    def test_unknown_table_everywhere(self):
        db = Database()
        for sql in (
            "select * from nope",
            "insert into nope values (1)",
            "update nope set a = 1",
            "delete from nope",
            "drop table nope",
            "create index i on nope (a)",
        ):
            with pytest.raises(CatalogError):
                db.execute(sql)

    def test_insert_arity_mismatch(self):
        db = Database()
        db.execute("create table t (a integer, b integer)")
        with pytest.raises(ReproError):
            db.execute("insert into t values (1)")
        with pytest.raises(ReproError):
            db.execute("insert into t (a) values (1, 2)")
        assert db.table("t").count() == 0

    def test_update_unknown_column(self):
        db = Database()
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        with pytest.raises(ReproError):
            db.execute("update t set zz = 1")
        # row unchanged
        assert db.execute("select a from t") == [(1,)]
