"""Unit tests for the baseline processors and the workload generators."""

import pytest

from repro.baselines.naive import NaiveECAProcessor
from repro.baselines.perquery import PerQueryProcessor
from repro.condition.cnf import to_cnf
from repro.condition.signature import analyze_selection
from repro.errors import CatalogError
from repro.lang.exprparser import parse_expression_text as parse
from repro.sql.schema import schema
from repro.workloads import (
    SIGNATURE_TEMPLATES,
    build_naive,
    build_predicate_index,
    emp_predicates,
    emp_tokens,
    zipf_indices,
)


def analyzed(text, op="insert"):
    return analyze_selection("emp", op, to_cnf(parse(text)))


class TestNaiveBaseline:
    def test_linear_matching(self):
        naive = NaiveECAProcessor()
        naive.add_trigger(1, "emp", "insert", analyzed("salary > 100"))
        naive.add_trigger(2, "emp", "insert", analyzed("salary > 900"))
        hits = naive.match("emp", "insert", {"salary": 500.0})
        assert hits == [1]
        assert naive.conditions_evaluated == 2  # every trigger tested

    def test_operation_filtering(self):
        naive = NaiveECAProcessor()
        naive.add_trigger(1, "emp", "delete", analyzed("salary > 0", "delete"))
        naive.add_trigger(
            2, "emp", "insert_or_update",
            analyzed("salary > 0", "insert_or_update"),
        )
        assert naive.match("emp", "insert", {"salary": 1.0}) == [2]
        assert naive.match("emp", "delete", {"salary": 1.0}) == [1]

    def test_update_columns(self):
        naive = NaiveECAProcessor()
        naive.add_trigger(
            1, "emp", "update(salary)", analyzed("salary > 0", "update(salary)")
        )
        assert naive.match(
            "emp", "update", {"salary": 1.0}, frozenset({"dept"})
        ) == []
        assert naive.match(
            "emp", "update", {"salary": 1.0}, frozenset({"salary"})
        ) == [1]

    def test_remove_trigger(self):
        naive = NaiveECAProcessor()
        naive.add_trigger(1, "emp", "insert", analyzed("salary > 0"))
        assert naive.remove_trigger(1) == 1
        assert naive.trigger_count() == 0

    def test_trivial_condition(self):
        naive = NaiveECAProcessor()
        naive.add_trigger(
            1, "emp", "insert", analyze_selection("emp", "insert", [])
        )
        assert naive.match("emp", "insert", {"x": 1}) == [1]


class TestPerQueryBaseline:
    def _processor(self):
        p = PerQueryProcessor()
        p.register_source(
            "emp", schema("emp", ("name", "varchar(40)"), ("salary", "float"))
        )
        return p

    def test_query_per_trigger(self):
        p = self._processor()
        p.add_trigger(1, "emp", "insert", analyzed("salary > 100"))
        p.add_trigger(2, "emp", "insert", analyzed("name = 'x'"))
        hits = p.match("emp", "insert", {"name": "y", "salary": 500.0})
        assert hits == [1]
        assert p.queries_run == 2

    def test_duplicate_source_rejected(self):
        p = self._processor()
        with pytest.raises(CatalogError):
            p.register_source(
                "emp", schema("emp2", ("name", "varchar(40)"))
            )

    def test_unregistered_source_rejected(self):
        p = self._processor()
        with pytest.raises(CatalogError):
            p.add_trigger(1, "ghost", "insert", analyzed("salary > 1"))

    def test_agrees_with_index(self):
        specs = emp_predicates(60, num_signatures=4, seed=8)
        index = build_predicate_index(specs)
        p = PerQueryProcessor()
        p.register_source(
            "emp",
            schema(
                "emp",
                ("eno", "integer"),
                ("name", "varchar(40)"),
                ("salary", "float"),
                ("dept", "varchar(20)"),
                ("age", "integer"),
            ),
        )
        for i, spec in enumerate(specs):
            p.add_trigger(i + 1, "emp", "insert", spec.analyze())
        for token in emp_tokens(20, seed=12):
            a = sorted(
                m.entry.trigger_id for m in index.match("emp", "insert", token)
            )
            b = sorted(p.match("emp", "insert", token))
            assert a == b


class TestGenerators:
    def test_determinism(self):
        a = emp_predicates(50, num_signatures=4, seed=5)
        b = emp_predicates(50, num_signatures=4, seed=5)
        assert [s.clauses for s in a] == [s.clauses for s in b]
        assert emp_tokens(10, seed=2) == emp_tokens(10, seed=2)

    def test_signature_count_exact(self):
        for k in (1, 3, 8):
            index = build_predicate_index(
                emp_predicates(200, num_signatures=k)
            )
            assert index.signature_count() == k

    def test_template_indices(self):
        specs = emp_predicates(10, template_indices=[1])
        index = build_predicate_index(specs)
        assert index.signature_count() == 1
        assert "name" in index.describe()[0]

    def test_bad_num_signatures(self):
        with pytest.raises(ValueError):
            emp_predicates(10, num_signatures=0)
        with pytest.raises(ValueError):
            emp_predicates(10, num_signatures=len(SIGNATURE_TEMPLATES) + 1)

    def test_tokens_schema(self):
        for token in emp_tokens(5):
            assert set(token) == {"eno", "name", "salary", "dept", "age"}

    def test_zipf_skew(self):
        indices = zipf_indices(5000, 100, s=1.2, seed=1)
        assert all(0 <= i < 100 for i in indices)
        head = sum(1 for i in indices if i < 10)
        tail = sum(1 for i in indices if i >= 90)
        assert head > 5 * max(tail, 1)  # strongly skewed

    def test_build_naive_matches_spec_count(self):
        specs = emp_predicates(25, num_signatures=2)
        naive = build_naive(specs)
        assert naive.trigger_count() == 25
