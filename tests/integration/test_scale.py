"""Scale smoke test: thousands of engine-created triggers, exact firing
counts, bounded structures (§1's motivating scenario end to end)."""

import pytest

from repro.engine.triggerman import TriggerMan
from repro.predindex.costmodel import Limits


@pytest.mark.parametrize("n_triggers", [5_000])
def test_five_thousand_triggers_end_to_end(n_triggers):
    tman = TriggerMan.in_memory(
        cache_capacity=512,  # far fewer slots than triggers
        limits=Limits(list_max=16, memory_max=2_000),  # forces DB tables
    )
    tman.define_table(
        "emp", [("name", "varchar(40)"), ("salary", "float")]
    )
    for i in range(n_triggers):
        if i % 2 == 0:
            condition = f"emp.salary > {i}"  # range signature
        else:
            condition = f"emp.name = 'user{i}'"  # equality signature
        tman.create_trigger(
            f"create trigger t{i} from emp on insert when {condition} "
            f"do raise event Fired"
        )

    # two signatures regardless of trigger count; the big classes spilled
    # to database tables
    assert tman.index.signature_count() == 2
    assert tman.index.entry_count() == n_triggers
    organizations = {
        group.organization.name for group in tman.index.groups()
    }
    assert organizations <= {"db_table", "db_table_indexed"}
    assert len(tman.cache) <= 512

    # token firing counts are exactly predictable:
    # salary=3000.0 matches salary > i for even i in [0, 3000) -> 1500
    # name='user777' matches one equality trigger
    tman.insert("emp", {"name": "user777", "salary": 3000.0})
    tman.process_all()
    assert tman.stats.triggers_fired == 1500 + 1

    # the index never touched the non-matching bulk
    stats = tman.index.stats
    assert stats.entries_probed < 0.5 * n_triggers

    # drop a slice and verify the counts shrink exactly
    for i in range(0, 100, 2):
        tman.drop_trigger(f"t{i}")
    tman.stats.reset()
    tman.insert("emp", {"name": "nobody", "salary": 3000.0})
    tman.process_all()
    assert tman.stats.triggers_fired == 1500 - 50
