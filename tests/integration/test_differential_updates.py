"""Differential testing of update/delete token processing: the engine's
firings must match a brute-force reference that applies the paper's event
semantics directly (op filtering, update-column filtering, old-image
matching for deletes, new-image matching for updates)."""

import random

import pytest

from repro.engine.triggerman import TriggerMan
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse

EVALUATOR = Evaluator()
DEPTS = ["toys", "shoes", "books"]


class Reference:
    """Brute-force ECA semantics over the full trigger list."""

    def __init__(self):
        self.triggers = []  # (name, op_base, columns, expr)

    def add(self, name, op_base, columns, condition_text):
        self.triggers.append(
            (name, op_base, frozenset(columns), parse(condition_text))
        )

    def fire_set(self, op, old, new):
        out = set()
        row = old if op == "delete" else new
        changed = (
            frozenset(
                c for c in set(old) | set(new) if old.get(c) != new.get(c)
            )
            if op == "update"
            else frozenset()
        )
        for name, base, columns, expr in self.triggers:
            if base == "insert_or_update":
                if op not in ("insert", "update"):
                    continue
            elif base != op:
                continue
            elif op == "update" and columns and not (columns & changed):
                continue
            if EVALUATOR.matches(expr, Bindings(rows={"emp": row})):
                out.add(name)
        return out


def build(seed, n_triggers=40):
    rng = random.Random(seed)
    tman = TriggerMan.in_memory()
    tman.define_table(
        "emp",
        [("eno", "integer"), ("salary", "float"), ("dept", "varchar(20)")],
    )
    reference = Reference()
    for i in range(n_triggers):
        op_kind = rng.randrange(4)
        if op_kind == 0:
            event, base, columns = "on insert", "insert", ()
        elif op_kind == 1:
            event, base, columns = "on delete from emp", "delete", ()
        elif op_kind == 2:
            event, base, columns = "on update(emp.salary)", "update", ("salary",)
        else:
            event, base, columns = "", "insert_or_update", ()
        cond_kind = rng.randrange(3)
        if cond_kind == 0:
            condition = f"emp.salary > {rng.randrange(200)}"
        elif cond_kind == 1:
            condition = f"emp.dept = '{rng.choice(DEPTS)}'"
        else:
            condition = (
                f"emp.dept = '{rng.choice(DEPTS)}' and "
                f"emp.salary < {rng.randrange(200)}"
            )
        text = (
            f"create trigger t{i} from emp {event} "
            f"when {condition} do raise event Fired"
        )
        tman.create_trigger(text)
        reference.add(f"t{i}", base, columns, condition)
    return tman, reference, rng


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_mixed_op_stream_matches_reference(seed):
    tman, reference, rng = build(seed)
    # seed rows
    rows = {}
    for eno in range(15):
        rows[eno] = {
            "eno": eno,
            "salary": float(rng.randrange(200)),
            "dept": rng.choice(DEPTS),
        }
        tman.insert("emp", dict(rows[eno]))
    tman.process_all()
    tman.events.history.clear()

    for _step in range(60):
        op = rng.choice(["insert", "update", "delete"])
        tman.events.history.clear()
        if op == "insert" or not rows:
            eno = max(rows, default=-1) + 1
            new = {
                "eno": eno,
                "salary": float(rng.randrange(200)),
                "dept": rng.choice(DEPTS),
            }
            rows[eno] = new
            tman.insert("emp", dict(new))
            expected = reference.fire_set("insert", {}, new)
        elif op == "update":
            eno = rng.choice(list(rows))
            old = dict(rows[eno])
            new = dict(old)
            if rng.random() < 0.5:
                new["salary"] = float(rng.randrange(200))
            else:
                new["dept"] = rng.choice(DEPTS)
            rows[eno] = new
            tman.update_rows(
                "emp", {"eno": eno},
                {k: v for k, v in new.items() if old[k] != v} or {"eno": eno},
            )
            expected = (
                reference.fire_set("update", old, new)
                if old != new
                else set()
            )
            if old == new:
                # no-op update still produces an update token with no
                # changed columns; column-filtered triggers skip it but
                # unfiltered update triggers (incl. insert_or_update) fire
                expected = reference.fire_set("update", old, new)
        else:
            eno = rng.choice(list(rows))
            old = rows.pop(eno)
            tman.delete_rows("emp", {"eno": eno})
            expected = reference.fire_set("delete", old, {})
        tman.process_all()
        fired = {
            n.trigger_name
            for n in tman.events.history
            if n.event_name == "Fired"
        }
        assert fired == expected, (op, fired ^ expected)
