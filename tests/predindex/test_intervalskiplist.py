"""Unit and property tests for the interval skip list ([Hans96b])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predindex.intervalindex import IntervalIndex
from repro.predindex.intervalskiplist import IntervalSkipList


class TestBasics:
    def test_empty(self):
        isl = IntervalSkipList()
        assert isl.stab(5) == []
        assert len(isl) == 0

    def test_single(self):
        isl = IntervalSkipList()
        isl.add(1, 10, "a")
        assert isl.stab(5) == ["a"]
        assert isl.stab(1) == ["a"]
        assert isl.stab(10) == ["a"]
        assert isl.stab(0) == []
        assert isl.stab(11) == []

    def test_point_interval(self):
        isl = IntervalSkipList()
        isl.add(5, 5, "pt")
        assert isl.stab(5) == ["pt"]
        assert isl.stab(4) == []

    def test_value_between_endpoints(self):
        """Stabbing a value that is not an endpoint of anything."""
        isl = IntervalSkipList()
        isl.add(0, 100, "wide")
        isl.add(40, 60, "mid")
        assert sorted(isl.stab(55)) == ["mid", "wide"]

    def test_shared_endpoints(self):
        isl = IntervalSkipList()
        isl.add(1, 5, "a")
        isl.add(5, 9, "b")
        assert sorted(isl.stab(5)) == ["a", "b"]

    def test_duplicates(self):
        isl = IntervalSkipList()
        isl.add(1, 5, "x")
        isl.add(1, 5, "y")
        assert sorted(isl.stab(3)) == ["x", "y"]

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSkipList().add(9, 1, "bad")

    def test_remove(self):
        isl = IntervalSkipList()
        isl.add(1, 10, "a")
        isl.add(5, 15, "b")
        assert isl.remove(1, 10, "a")
        assert not isl.remove(1, 10, "a")
        assert isl.stab(7) == ["b"]
        isl.check_invariants()

    def test_remove_replaces_disturbed_markers(self):
        """Removing an interval whose endpoints other intervals span."""
        isl = IntervalSkipList()
        isl.add(0, 100, "outer")
        isl.add(40, 60, "inner")
        isl.remove(40, 60, "inner")  # nodes 40/60 go away; outer re-placed
        assert isl.stab(50) == ["outer"]
        isl.check_invariants()

    def test_strings(self):
        isl = IntervalSkipList()
        isl.add("apple", "cherry", "fruit")
        assert isl.stab("banana") == ["fruit"]
        assert isl.stab("zebra") == []

    def test_factory_through_intervalindex(self):
        isl = IntervalIndex(structure="skiplist")
        assert isinstance(isl, IntervalSkipList)
        isl.add(1, 2, "x")
        assert isl.stab(1) == ["x"]
        with pytest.raises(ValueError):
            IntervalIndex(structure="btree")

    def test_many_nested(self):
        isl = IntervalSkipList()
        for i in range(50):
            isl.add(i, 100 - i, i)
        # value 50 is inside all 50 intervals
        assert sorted(isl.stab(50)) == list(range(50))
        isl.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 60), st.integers(0, 60)),
        min_size=1,
        max_size=40,
    ),
    st.lists(st.integers(-5, 65), min_size=1, max_size=15),
    st.data(),
)
def test_matches_linear_scan_with_removals(raw, probes, data):
    """Property: after random adds and removes, stab() equals a scan."""
    isl = IntervalSkipList()
    live = []
    for i, (a, b) in enumerate(raw):
        low, high = min(a, b), max(a, b)
        isl.add(low, high, i)
        live.append((low, high, i))
    n_remove = data.draw(
        st.integers(min_value=0, max_value=len(live))
    )
    for _ in range(n_remove):
        idx = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
        low, high, payload = live.pop(idx)
        assert isl.remove(low, high, payload)
    for probe in probes:
        expected = sorted(p for lo, hi, p in live if lo <= probe <= hi)
        assert sorted(isl.stab(probe)) == expected
    isl.check_invariants()


def test_randomized_churn_large():
    """Deterministic large-scale churn with continuous verification."""
    rng = random.Random(99)
    isl = IntervalSkipList(seed=1)
    live = []
    for step in range(600):
        if live and rng.random() < 0.35:
            low, high, payload = live.pop(rng.randrange(len(live)))
            assert isl.remove(low, high, payload)
        else:
            a, b = rng.randrange(1000), rng.randrange(1000)
            low, high = min(a, b), max(a, b)
            isl.add(low, high, step)
            live.append((low, high, step))
        if step % 50 == 0:
            probe = rng.randrange(1000)
            expected = sorted(p for lo, hi, p in live if lo <= probe <= hi)
            assert sorted(isl.stab(probe)) == expected
    isl.check_invariants()
    assert len(isl) == len(live)
