"""Unit tests for the root predicate index (Figures 3/4, §5.4)."""

import pytest

from repro.condition.cnf import to_cnf
from repro.condition.signature import analyze_selection
from repro.errors import ConditionError, SignatureError
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex.entry import PredicateEntry
from repro.predindex.index import (
    PredicateIndex,
    make_operation_code,
    parse_operation_code,
)
from repro.predindex.organizations import MemoryListOrganization
from repro.workloads import build_predicate_index, emp_predicates


def analyzed_for(text, operation="insert", source="emp"):
    return analyze_selection(source, operation, to_cnf(parse(text)))


def add(index, analyzed, trigger_id, expr_id, sig_id=None):
    group = index.find_group(analyzed.signature)
    if group is None:
        group = index.register_signature(
            sig_id or expr_id,
            analyzed.signature,
            MemoryListOrganization(analyzed.signature),
        )
    entry = PredicateEntry(
        expr_id,
        trigger_id,
        "emp",
        "pnode",
        analyzed.residual.render() if analyzed.residual is not None else None,
    )
    index.add_predicate(analyzed, entry)
    return group


class TestOperationCodes:
    def test_roundtrip(self):
        code = make_operation_code("update", ("salary", "name"))
        assert code == "update(name,salary)"
        assert parse_operation_code(code) == (
            "update",
            frozenset({"name", "salary"}),
        )
        assert parse_operation_code("insert") == ("insert", frozenset())


class TestMatching:
    def test_basic_equality_match(self):
        index = PredicateIndex()
        add(index, analyzed_for("name = 'bob'"), 1, 1)
        hits = index.match("emp", "insert", {"name": "bob", "salary": 1.0})
        assert [m.entry.trigger_id for m in hits] == [1]
        assert index.match("emp", "insert", {"name": "ann", "salary": 1.0}) == []

    def test_unknown_source_no_match(self):
        index = PredicateIndex()
        assert index.match("nowhere", "insert", {}) == []

    def test_operation_filtering(self):
        index = PredicateIndex()
        add(index, analyzed_for("salary > 1", operation="insert"), 1, 1)
        add(index, analyzed_for("salary > 1", operation="delete"), 2, 2)
        add(index, analyzed_for("salary > 1", operation="insert_or_update"), 3, 3)
        row = {"salary": 10.0}
        assert {m.entry.trigger_id for m in index.match("emp", "insert", row)} == {1, 3}
        assert {m.entry.trigger_id for m in index.match("emp", "delete", row)} == {2}
        assert {m.entry.trigger_id for m in index.match("emp", "update", row)} == {3}

    def test_update_column_filtering(self):
        index = PredicateIndex()
        op = make_operation_code("update", ("salary",))
        add(index, analyzed_for("name = 'bob'", operation=op), 1, 1)
        row = {"name": "bob"}
        hits = index.match("emp", "update", row, frozenset({"salary"}))
        assert len(hits) == 1
        assert index.match("emp", "update", row, frozenset({"dept"})) == []
        # update with no column list on the signature side matches any change
        add(index, analyzed_for("name = 'bob'", operation="update"), 2, 2)
        hits = index.match("emp", "update", row, frozenset({"dept"}))
        assert [m.entry.trigger_id for m in hits] == [2]

    def test_residual_tested_after_probe(self):
        index = PredicateIndex()
        add(index, analyzed_for("dept = 'toys' and salary > 100"), 1, 1)
        matched = index.match(
            "emp", "insert", {"dept": "toys", "salary": 200.0}
        )
        assert len(matched) == 1
        missed = index.match(
            "emp", "insert", {"dept": "toys", "salary": 50.0}
        )
        assert missed == []
        assert index.stats.residual_tests == 2

    def test_missing_probe_column_raises(self):
        index = PredicateIndex()
        add(index, analyzed_for("name = 'bob'"), 1, 1)
        with pytest.raises(ConditionError):
            index.match("emp", "insert", {"salary": 1.0})

    def test_enabled_filter(self):
        index = PredicateIndex()
        add(index, analyzed_for("salary > 1"), 1, 1)
        add(index, analyzed_for("salary > 2"), 2, 2)
        row = {"salary": 10.0}
        hits = index.match(
            "emp", "insert", row, enabled=lambda tid: tid != 1
        )
        assert [m.entry.trigger_id for m in hits] == [2]

    def test_trivial_signature_matches_everything(self):
        index = PredicateIndex()
        add(index, analyzed_for("TRUE"), 1, 1)
        assert len(index.match("emp", "insert", {"anything": 1})) == 1


class TestRegistration:
    def test_duplicate_signature_rejected(self):
        index = PredicateIndex()
        analyzed = analyzed_for("salary > 1")
        index.register_signature(
            1, analyzed.signature, MemoryListOrganization(analyzed.signature)
        )
        with pytest.raises(SignatureError):
            index.register_signature(
                2,
                analyzed.signature,
                MemoryListOrganization(analyzed.signature),
            )

    def test_add_without_registration_rejected(self):
        index = PredicateIndex()
        analyzed = analyzed_for("salary > 1")
        with pytest.raises(SignatureError):
            index.add_predicate(
                analyzed, PredicateEntry(1, 1, "emp", "pnode")
            )

    def test_signature_sharing(self):
        index = PredicateIndex()
        group_a = add(index, analyzed_for("salary > 100"), 1, 1, sig_id=1)
        group_b = add(index, analyzed_for("salary > 200"), 2, 2, sig_id=99)
        assert group_a is group_b
        assert index.signature_count() == 1
        assert index.entry_count() == 2

    def test_remove_trigger(self):
        index = PredicateIndex()
        add(index, analyzed_for("salary > 100"), 1, 1, sig_id=1)
        add(index, analyzed_for("salary > 200"), 1, 2, sig_id=1)
        add(index, analyzed_for("salary > 300"), 2, 3, sig_id=1)
        assert index.remove_trigger(1) == 2
        assert index.entry_count() == 1
        hits = index.match("emp", "insert", {"salary": 1000.0})
        assert [m.entry.trigger_id for m in hits] == [2]


class TestStatsAndScale:
    def test_stats_counters(self):
        index = PredicateIndex()
        add(index, analyzed_for("salary > 1"), 1, 1)
        index.match("emp", "insert", {"salary": 10.0})
        assert index.stats.tokens == 1
        assert index.stats.groups_probed == 1
        assert index.stats.matches == 1
        index.stats.reset()
        assert index.stats.tokens == 0

    def test_signature_count_stays_small(self):
        """§5's claim: many triggers, few signatures."""
        specs = emp_predicates(2000, num_signatures=4)
        index = build_predicate_index(specs)
        assert index.entry_count() == 2000
        assert index.signature_count() == 4

    def test_describe_lists_groups(self):
        specs = emp_predicates(10, num_signatures=2)
        index = build_predicate_index(specs)
        lines = index.describe()
        assert len(lines) == 2
        assert any("CONSTANT_1" in line for line in lines)
