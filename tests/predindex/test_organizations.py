"""Unit and property tests for the four constant-set organizations (§5.2).

The central property: all four strategies are *observationally equivalent* —
same adds, same probes, same matched entries — differing only in cost.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condition.cnf import to_cnf
from repro.condition.signature import analyze_selection
from repro.errors import SignatureError
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex.costmodel import (
    DB_TABLE,
    DB_TABLE_INDEXED,
    Limits,
    MEMORY_INDEX,
    MEMORY_LIST,
)
from repro.predindex.entry import PredicateEntry
from repro.predindex.organizations import (
    AutoOrganization,
    DbTableOrganization,
    MemoryIndexOrganization,
    MemoryListOrganization,
    indexable_match,
)
from repro.sql.database import Database


def signature_of(text, operation="insert"):
    return analyze_selection("emp", operation, to_cnf(parse(text)))


def entry(i):
    return PredicateEntry(
        expr_id=i, trigger_id=i, tvar="emp", next_node="pnode"
    )


def all_orgs(signature, sample):
    db = Database()
    return [
        MemoryListOrganization(signature),
        MemoryIndexOrganization(signature),
        DbTableOrganization(signature, db, "ct_plain", False, sample),
        DbTableOrganization(signature, Database(), "ct_idx", True, sample),
    ]


def probe_ids(org, values):
    return sorted(e.expr_id for _c, e in org.probe(values))


class TestEqualityOrganizations:
    def test_all_strategies_agree(self):
        analyzed = signature_of("name = 'x'")
        sig = analyzed.signature
        for org in all_orgs(sig, ("x",)):
            for i in range(50):
                org.add((f"user{i % 10}",), entry(i))
            assert org.size() == 50
            hits = probe_ids(org, ("user3",))
            assert hits == [3, 13, 23, 33, 43], org.name
            assert probe_ids(org, ("nope",)) == []

    def test_composite_keys(self):
        analyzed = signature_of("dept = 'a' and name = 'b'")
        sig = analyzed.signature
        for org in all_orgs(sig, ("a", "b")):
            org.add(("toys", "bob"), entry(1))
            org.add(("toys", "ann"), entry(2))
            assert probe_ids(org, ("toys", "bob")) == [1], org.name
            assert probe_ids(org, ("toys", "zzz")) == [], org.name

    def test_arity_checked(self):
        sig = signature_of("name = 'x'").signature
        org = MemoryListOrganization(sig)
        with pytest.raises(SignatureError):
            org.add(("a", "b"), entry(1))


class TestRangeOrganizations:
    @pytest.mark.parametrize("op,matches", [
        (">", [0, 1, 2]),    # constants 0,10,20 < 25
        (">=", [0, 1, 2]),
        ("<", [3, 4]),       # constants 30,40 > 25
        ("<=", [3, 4]),
    ])
    def test_one_sided_ops(self, op, matches):
        analyzed = signature_of(f"salary {op} 1")
        sig = analyzed.signature
        for org in all_orgs(sig, (1.0,)):
            for i in range(5):
                org.add((float(i * 10),), entry(i))
            assert probe_ids(org, (25.0,)) == matches, (org.name, op)

    def test_boundary_semantics(self):
        gt = signature_of("salary > 1").signature
        ge = signature_of("salary >= 1").signature
        for sig, expected in ((gt, []), (ge, [1])):
            for org in all_orgs(sig, (10.0,)):
                org.add((10.0,), entry(1))
                assert probe_ids(org, (10.0,)) == expected, (org.name, sig.text)

    def test_remove(self):
        sig = signature_of("salary > 1").signature
        for org in all_orgs(sig, (1.0,)):
            org.add((5.0,), entry(1))
            org.add((7.0,), entry(2))
            assert org.remove(1)
            assert not org.remove(1)
            assert probe_ids(org, (100.0,)) == [2], org.name
            assert org.size() == 1


class TestIntervalOrganizations:
    def test_between_stabbing(self):
        analyzed = signature_of("age between 1 and 2")
        sig = analyzed.signature
        for org in all_orgs(sig, (1, 2)):
            org.add((10, 20), entry(1))
            org.add((15, 30), entry(2))
            org.add((25, 40), entry(3))
            assert probe_ids(org, (18,)) == [1, 2], org.name
            assert probe_ids(org, (10,)) == [1], org.name
            assert probe_ids(org, (50,)) == [], org.name

    def test_interval_remove(self):
        sig = signature_of("age between 1 and 2").signature
        for org in all_orgs(sig, (1, 2)):
            org.add((10, 20), entry(1))
            assert org.remove(1)
            assert probe_ids(org, (15,)) == [], org.name


class TestNoneKindOrganizations:
    def test_probe_returns_all(self):
        analyzed = signature_of("name like '%x%'")
        sig = analyzed.signature
        for org in all_orgs(sig, analyzed.indexable_constants):
            org.add((), entry(1))
            org.add((), entry(2))
            assert probe_ids(org, ()) == [1, 2], org.name


class TestDbTableSpecifics:
    def test_rows_follow_paper_layout(self):
        analyzed = signature_of("dept = 'a'")
        db = Database()
        org = DbTableOrganization(
            analyzed.signature, db, "const_table1", True, ("a",)
        )
        org.add(("toys",), PredicateEntry(7, 3, "emp", "alpha:emp", "(x > 1)"))
        names = db.table("const_table1").schema.column_names()
        assert names == [
            "exprID", "triggerID", "tvar", "nextNetworkNode", "const1",
            "restOfPredicate", "armOf",
        ]
        (_c, got), = org.probe(("toys",))
        assert got.expr_id == 7
        assert got.trigger_id == 3
        assert got.next_node == "alpha:emp"
        assert got.residual_text == "(x > 1)"

    def test_clustered_index_created(self):
        analyzed = signature_of("dept = 'a'")
        db = Database()
        DbTableOrganization(analyzed.signature, db, "ct", True, ("a",))
        info = db.table("ct").indexes["ct_consts"]
        assert info.clustered
        assert info.columns == ("const1",)

    def test_persistent_reopen(self, tmp_path):
        analyzed = signature_of("dept = 'a'")
        path = str(tmp_path / "db")
        db = Database(path)
        org = DbTableOrganization(analyzed.signature, db, "ct", True, ("a",))
        org.add(("toys",), entry(1))
        db.close()
        db2 = Database(path)
        org2 = DbTableOrganization(analyzed.signature, db2, "ct", True, ("a",))
        assert org2.size() == 1
        assert probe_ids(org2, ("toys",)) == [1]
        db2.close()


class TestAutoOrganization:
    def _auto(self, text, limits):
        analyzed = signature_of(text)
        changes = []
        org = AutoOrganization(
            analyzed.signature,
            Database(),
            "ct_auto",
            limits=limits,
            on_change=changes.append,
        )
        return org, changes

    def test_migrates_list_to_index_to_table(self):
        org, changes = self._auto(
            "name = 'x'", Limits(list_max=4, memory_max=16)
        )
        assert org.name == MEMORY_LIST
        for i in range(5):
            org.add((f"u{i}",), entry(i))
        assert org.name == MEMORY_INDEX
        for i in range(5, 17):
            org.add((f"u{i}",), entry(i))
        # Just past the memory budget the cost model still favours the plain
        # table (one page scan beats index-depth page reads)...
        assert org.name == DB_TABLE
        for i in range(17, 80):
            org.add((f"u{i}",), entry(i))
        # ...and flips to the clustered-index table as the class grows.
        assert org.name == DB_TABLE_INDEXED
        assert changes == [MEMORY_INDEX, DB_TABLE, DB_TABLE_INDEXED]
        # entries preserved through all migrations
        assert probe_ids(org, ("u3",)) == [3]
        assert org.size() == 80

    def test_migrates_back_on_shrink(self):
        org, _ = self._auto("name = 'x'", Limits(list_max=4, memory_max=16))
        for i in range(6):
            org.add((f"u{i}",), entry(i))
        assert org.name == MEMORY_INDEX
        for i in range(3):
            org.remove(i)
        assert org.name == MEMORY_LIST
        assert org.size() == 3

    def test_unindexable_large_class_goes_to_plain_table(self):
        analyzed = signature_of("name like '%x%'")
        org = AutoOrganization(
            analyzed.signature,
            Database(),
            "ct_plain",
            limits=Limits(list_max=2, memory_max=4),
        )
        for i in range(6):
            org.add((), entry(i))
        assert org.name == DB_TABLE
        assert probe_ids(org, ()) == list(range(6))


# -- property: equivalence of all four strategies -----------------------------

@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=40),
    st.lists(st.integers(-10, 60), min_size=1, max_size=10),
)
def test_strategies_equivalent_for_range(constants, probes):
    analyzed = signature_of("salary > 0")
    orgs = all_orgs(analyzed.signature, (0.0,))
    for org in orgs:
        for i, c in enumerate(constants):
            org.add((float(c),), entry(i))
    for probe in probes:
        results = [probe_ids(org, (float(probe),)) for org in orgs]
        assert results[0] == results[1] == results[2] == results[3]


class TestAdaptiveCosting:
    """Observed matches-per-probe feedback into the §5.2 cost model."""

    def _interval_auto(self, limits):
        analyzed = signature_of("age between 1 and 2")
        org = AutoOrganization(
            analyzed.signature, Database(), "ct_adapt", limits=limits
        )
        org.PROBE_SAMPLE = 1  # count every probe: deterministic feedback
        return org

    def test_observed_matches_tracks_probe_feedback(self):
        org = self._interval_auto(Limits(list_max=64, memory_max=256))
        assert org.observed_matches() is None
        for i in range(10):
            org.add((0, 100), entry(i))
        list(org.probe((50,)))
        assert org.observed_matches() == pytest.approx(10.0)
        list(org.probe((-5,)))  # stabs nothing
        assert org.observed_matches() == pytest.approx(5.0)

    def test_hot_class_prefers_plain_table(self):
        # A class whose probes match *everything* gains nothing from the
        # clustered index: fetching all matches costs the same pages as a
        # scan plus the B-tree descent.  The static prior (size/3) would
        # pick the indexed table; runtime feedback picks the plain one.
        limits = Limits(list_max=2, memory_max=64)
        hot = self._interval_auto(limits)
        cold = self._interval_auto(limits)
        for i in range(64):
            hot.add((0, 100), entry(i))
            cold.add((0, 100), entry(i))
        for _ in range(70):
            list(hot.probe((50,)))  # every interval stabbed
        hot.add((0, 100), entry(64))
        cold.add((0, 100), entry(64))
        assert hot.name == DB_TABLE
        assert cold.name == DB_TABLE_INDEXED
        # correctness unaffected by the different physical choice
        assert probe_ids(hot, (50,)) == probe_ids(cold, (50,))

    def test_probe_counters_decay(self):
        org = self._interval_auto(Limits(list_max=256, memory_max=512))
        for i in range(8):
            org.add((0, 100), entry(i))
        for _ in range(org.ADAPT_EVERY):
            list(org.probe((50,)))
        # after an adaptation round the window is decayed, not reset
        assert org._probes == pytest.approx(org.ADAPT_EVERY * org.DECAY)
        assert org.observed_matches() == pytest.approx(8.0)
