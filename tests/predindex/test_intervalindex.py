"""Unit and property tests for the interval stabbing index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predindex.intervalindex import IntervalIndex


class TestBasics:
    def test_empty(self):
        idx = IntervalIndex()
        assert idx.stab(5) == []
        assert len(idx) == 0

    def test_single_interval(self):
        idx = IntervalIndex()
        idx.add(1, 10, "a")
        assert idx.stab(5) == ["a"]
        assert idx.stab(1) == ["a"]  # closed bounds
        assert idx.stab(10) == ["a"]
        assert idx.stab(0) == []
        assert idx.stab(11) == []

    def test_point_interval(self):
        idx = IntervalIndex()
        idx.add(5, 5, "pt")
        assert idx.stab(5) == ["pt"]
        assert idx.stab(4) == []

    def test_overlapping(self):
        idx = IntervalIndex()
        idx.add(1, 10, "a")
        idx.add(5, 15, "b")
        idx.add(12, 20, "c")
        assert sorted(idx.stab(7)) == ["a", "b"]
        assert sorted(idx.stab(13)) == ["b", "c"]
        assert idx.stab(3) == ["a"]

    def test_empty_interval_rejected(self):
        idx = IntervalIndex()
        with pytest.raises(ValueError):
            idx.add(10, 1, "bad")

    def test_remove(self):
        idx = IntervalIndex()
        idx.add(1, 10, "a")
        assert idx.remove(1, 10, "a")
        assert not idx.remove(1, 10, "a")
        assert idx.stab(5) == []

    def test_mutation_after_query(self):
        idx = IntervalIndex()
        idx.add(1, 10, "a")
        assert idx.stab(5) == ["a"]
        idx.add(4, 6, "b")
        assert sorted(idx.stab(5)) == ["a", "b"]

    def test_string_intervals(self):
        idx = IntervalIndex()
        idx.add("apple", "cherry", "fruit")
        assert idx.stab("banana") == ["fruit"]
        assert idx.stab("zebra") == []

    def test_items(self):
        idx = IntervalIndex()
        idx.add(1, 2, "a")
        idx.add(3, 4, "b")
        assert sorted(idx.items()) == [(1, 2, "a"), (3, 4, "b")]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=60
    ),
    st.lists(st.integers(-5, 105), min_size=1, max_size=20),
)
def test_stab_matches_linear_scan(raw_intervals, probes):
    """Property: stab() returns exactly the intervals a linear scan finds."""
    idx = IntervalIndex()
    intervals = []
    for i, (a, b) in enumerate(raw_intervals):
        low, high = min(a, b), max(a, b)
        idx.add(low, high, i)
        intervals.append((low, high, i))
    for probe in probes:
        expected = sorted(
            payload for low, high, payload in intervals if low <= probe <= high
        )
        assert sorted(idx.stab(probe)) == expected
