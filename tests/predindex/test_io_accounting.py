"""I/O accounting: the clustered constant-table index must turn probes
into a handful of page reads where the plain table scans everything —
§5.1's "retrieved together quickly without doing random I/O" claim at the
buffer-pool counter level."""

import pytest

from repro.condition.cnf import to_cnf
from repro.condition.signature import analyze_selection
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex.entry import PredicateEntry
from repro.predindex.organizations import DbTableOrganization
from repro.sql.database import Database

N = 4_000


def build(indexed):
    analyzed = analyze_selection(
        "emp", "insert", to_cnf(parse("name = 'seed'"))
    )
    # tiny buffer pool so page reads are visible as pager I/O
    db = Database(pool_capacity=8)
    org = DbTableOrganization(
        analyzed.signature, db, "ct", indexed, ("seed",)
    )
    for i in range(N):
        org.add(
            (f"user{i}",),
            PredicateEntry(i, i, "emp", "pnode"),
        )
    return db, org


def pager_reads(db):
    return sum(p.reads for p in db.pool._pagers.values())


class TestProbeIO:
    def test_indexed_probe_reads_few_pages(self):
        db, org = build(indexed=True)
        before = pager_reads(db)
        hits = list(org.probe(("user1234",)))
        reads = pager_reads(db) - before
        assert len(hits) == 1
        assert reads <= 10  # root-to-leaf + a couple of pool misses

    def test_plain_probe_scans_all_pages(self):
        db, org = build(indexed=False)
        before = pager_reads(db)
        hits = list(org.probe(("user1234",)))
        reads = pager_reads(db) - before
        assert len(hits) == 1
        # ~N rows / ~40 rows-per-page pages, far beyond the indexed probe
        assert reads > 50

    def test_clustered_probe_avoids_heap(self):
        """Clustered leaves carry the rows: a probe does zero heap-file
        reads (the 'no random I/O' property)."""
        db, org = build(indexed=True)
        heap_pager = db.pool.pager(org.table.heap.file_id)
        before = heap_pager.reads
        list(org.probe(("user99",)))
        assert heap_pager.reads == before
