"""Unit tests for the organization cost model."""

import pytest

from repro.condition.signature import EQUALITY, INTERVAL, NONE, RANGE
from repro.predindex.costmodel import (
    ALL_STRATEGIES,
    DB_TABLE,
    DB_TABLE_INDEXED,
    Limits,
    MEMORY_INDEX,
    MEMORY_LIST,
    choose_organization,
    crossover_size,
    probe_cost,
)


class TestProbeCost:
    def test_zero_size_free(self):
        for strategy in ALL_STRATEGIES:
            assert probe_cost(EQUALITY, strategy, 0) == 0.0

    def test_list_linear(self):
        assert probe_cost(EQUALITY, MEMORY_LIST, 200) == pytest.approx(
            2 * probe_cost(EQUALITY, MEMORY_LIST, 100)
        )

    def test_hash_flat_for_equality(self):
        small = probe_cost(EQUALITY, MEMORY_INDEX, 100)
        large = probe_cost(EQUALITY, MEMORY_INDEX, 100_000)
        assert large == pytest.approx(small)

    def test_memory_index_log_for_range(self):
        c1 = probe_cost(RANGE, MEMORY_INDEX, 1000)
        c2 = probe_cost(RANGE, MEMORY_INDEX, 2000)
        # dominated by the k matching entries, which double
        assert c2 > c1

    def test_indexed_table_beats_plain_for_equality(self):
        for size in (1000, 100_000, 1_000_000):
            assert probe_cost(EQUALITY, DB_TABLE_INDEXED, size) < probe_cost(
                EQUALITY, DB_TABLE, size
            )

    def test_index_useless_for_unindexable(self):
        assert probe_cost(NONE, DB_TABLE_INDEXED, 10_000) == pytest.approx(
            probe_cost(NONE, DB_TABLE, 10_000)
        )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            probe_cost(EQUALITY, "bitmap", 10)


class TestChooseOrganization:
    def test_small_class_is_list(self):
        limits = Limits(list_max=16, memory_max=1000)
        assert choose_organization(EQUALITY, 5, limits) == MEMORY_LIST

    def test_medium_class_is_memory_index(self):
        limits = Limits(list_max=16, memory_max=1000)
        assert choose_organization(EQUALITY, 500, limits) == MEMORY_INDEX

    def test_large_equality_class_is_indexed_table(self):
        limits = Limits(list_max=16, memory_max=1000)
        assert (
            choose_organization(EQUALITY, 10_000, limits) == DB_TABLE_INDEXED
        )

    def test_large_unindexable_class_plain_or_indexed_equal(self):
        limits = Limits(list_max=16, memory_max=1000)
        assert choose_organization(NONE, 10_000, limits) in (
            DB_TABLE,
            DB_TABLE_INDEXED,
        )

    def test_boundaries_inclusive(self):
        limits = Limits(list_max=16, memory_max=100)
        assert choose_organization(EQUALITY, 16, limits) == MEMORY_LIST
        assert choose_organization(EQUALITY, 17, limits) == MEMORY_INDEX
        assert choose_organization(EQUALITY, 100, limits) == MEMORY_INDEX
        assert choose_organization(EQUALITY, 101, limits) != MEMORY_INDEX


class TestCrossover:
    def test_list_vs_index_crossover_small(self):
        size = crossover_size(EQUALITY, MEMORY_LIST, MEMORY_INDEX)
        assert 2 <= size <= 64

    def test_plain_vs_indexed_crossover(self):
        size = crossover_size(EQUALITY, DB_TABLE, DB_TABLE_INDEXED)
        assert size <= 256

    def test_never_crossover_capped(self):
        # a list never beats... an identical list; cap returned
        assert crossover_size(EQUALITY, MEMORY_LIST, MEMORY_LIST, 1024) == 1024
