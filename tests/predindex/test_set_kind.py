"""Tests for the IN-list (SET) indexable kind — the operator-extensibility
direction the paper points at ([Kony98], §9 future work)."""

import pytest

from repro.condition.cnf import to_cnf
from repro.condition.signature import EQUALITY, SET, analyze_selection
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex.entry import PredicateEntry
from repro.predindex.organizations import (
    DbTableOrganization,
    MemoryIndexOrganization,
    MemoryListOrganization,
)
from repro.sql.database import Database


def analyzed(text):
    return analyze_selection("emp", "insert", to_cnf(parse(text)))


def entry(i):
    return PredicateEntry(i, i, "emp", "pnode")


def probe_ids(org, values):
    return sorted(e.expr_id for _c, e in org.probe(values))


class TestSetSignature:
    def test_in_list_is_indexable(self):
        a = analyzed("dept in ('a', 'b', 'c')")
        assert a.signature.indexable.kind == SET
        assert a.signature.indexable.columns == ("dept",)
        assert a.indexable_constants == ("a", "b", "c")
        assert a.residual is None

    def test_arity_in_signature(self):
        two = analyzed("dept in ('a', 'b')")
        three = analyzed("dept in ('a', 'b', 'c')")
        assert two.signature != three.signature  # placeholder count differs

    def test_equality_still_preferred(self):
        a = analyzed("dept in ('a', 'b') and name = 'x'")
        assert a.signature.indexable.kind == EQUALITY
        assert a.residual is not None

    def test_small_in_beats_range(self):
        a = analyzed("dept in ('a') and salary > 10")
        assert a.signature.indexable.kind == SET

    def test_negated_in_not_indexable(self):
        a = analyzed("dept not in ('a', 'b')")
        assert a.signature.indexable.kind == "none"


class TestSetOrganizations:
    def _orgs(self, analyzed_predicate):
        sig = analyzed_predicate.signature
        sample = analyzed_predicate.indexable_constants
        return [
            MemoryListOrganization(sig),
            MemoryIndexOrganization(sig),
            DbTableOrganization(sig, Database(), "ct", False, sample),
            DbTableOrganization(sig, Database(), "cti", True, sample),
        ]

    def test_all_strategies_agree(self):
        a = analyzed("dept in ('a', 'b', 'c')")
        for org in self._orgs(a):
            org.add(("toys", "shoes", "books"), entry(1))
            org.add(("toys", "auto", "deli"), entry(2))
            org.add(("x", "y", "z"), entry(3))
            assert probe_ids(org, ("toys",)) == [1, 2], org.name
            assert probe_ids(org, ("deli",)) == [2], org.name
            assert probe_ids(org, ("nope",)) == [], org.name
            assert probe_ids(org, (None,)) == [], org.name

    def test_memory_index_remove_and_entries(self):
        a = analyzed("dept in ('a', 'b')")
        org = MemoryIndexOrganization(a.signature)
        org.add(("x", "y"), entry(1))
        org.add(("y", "z"), entry(2))
        assert org.size() == 2
        assert len(list(org.entries())) == 2  # deduped across buckets
        assert org.remove(1)
        assert not org.remove(1)
        assert probe_ids(org, ("y",)) == [2]
        assert org.size() == 1

    def test_duplicate_members_single_match(self):
        a = analyzed("dept in ('a', 'a')")
        org = MemoryIndexOrganization(a.signature)
        org.add(("q", "q"), entry(1))
        assert probe_ids(org, ("q",)) == [1]


class TestSetEndToEnd:
    def test_engine_in_list_trigger(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger vip from emp on insert "
            "when emp.dept in ('eng', 'sales') do raise event Vip(emp.name)"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 1.0, "dept": "eng"})
        tman_emp.insert("emp", {"name": "b", "salary": 1.0, "dept": "toys"})
        tman_emp.insert("emp", {"name": "c", "salary": 1.0, "dept": "sales"})
        tman_emp.process_all()
        fired = [
            n.args[0]
            for n in tman_emp.events.history
            if n.event_name == "Vip"
        ]
        assert fired == ["a", "c"]
        sigs = tman_emp.catalog.list_signatures()
        assert "IN" in sigs[0]["signatureDesc"]
