"""Tests for the ``python -m repro`` console entry point."""

import subprocess
import sys

import pytest


def run_console(stdin_text, *args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin_text,
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestMainEntry:
    def test_help(self):
        result = run_console("", "--help")
        assert result.returncode == 0
        assert "console" in result.stdout

    def test_in_memory_session(self):
        script = "\n".join(
            [
                "sql create table t (a integer)",
                "define data source t from t",
                "create trigger x from t on insert do raise event E(t.a)",
                "sql insert into t values (42)",
                "process",
                "show stats",
                "quit",
            ]
        )
        result = run_console(script + "\n")
        assert result.returncode == 0
        assert "triggers_fired: 1" in result.stdout

    def test_persistent_session(self, tmp_path):
        directory = str(tmp_path / "tmandir")
        first = run_console(
            "sql create table t (a integer)\n"
            "define data source t from t\n"
            "create trigger x from t on insert do raise event E\n"
            "quit\n",
            directory,
        )
        assert first.returncode == 0
        second = run_console("show triggers\nquit\n", directory)
        assert second.returncode == 0
        assert "x" in second.stdout
