"""ISSUE 5 satellites: EventManager delivery guarantees under concurrency.

Covers the three event-delivery bugs: unbounded ``delivery_errors`` state,
the unregister/in-flight-delivery race (snapshot semantics + unregister
barrier), and the unbounded client inbox — plus the 4-driver hammer test
asserting no lost or duplicated sequence numbers and bounded memory.
"""

import threading
import time

import pytest

from repro.engine.client import TriggerManClient
from repro.engine.events import EventManager
from repro.obs import Observability


def raise_n(events, name, n, collect=None):
    for _ in range(n):
        notification = events.raise_event(name, (), "t", 1)
        if collect is not None:
            collect.append(notification)


class TestDeliveryErrors:
    def test_errors_are_bounded_and_counted(self):
        events = EventManager(error_history=8)

        def bad(notification):
            raise RuntimeError("boom")

        events.register("E", bad)
        raise_n(events, "E", 50)
        assert len(events.delivery_errors) == 8  # ring keeps only the tail
        assert events.delivery_error_count == 50  # counter never resets
        # the retained tail is the most recent failures
        assert events.delivery_errors[-1][0].seq == 50

    def test_error_counter_exported_as_gauge(self):
        events = EventManager()
        obs = Observability(enable_metrics=True)
        events.attach_obs(obs)
        events.register("E", lambda n: 1 / 0)
        raise_n(events, "E", 3)
        assert obs.metrics.snapshot()["events.delivery_errors"] == 3

    def test_failures_do_not_poison_other_subscribers(self):
        events = EventManager()
        got = []
        events.register("E", lambda n: 1 / 0)
        events.register("E", got.append)
        raise_n(events, "E", 2)
        assert len(got) == 2
        assert events.delivered_count == 2
        assert events.delivery_error_count == 2


class TestUnregisterBarrier:
    def test_unregister_waits_for_inflight_delivery(self):
        """unregister() on thread B must block until a delivery running on
        thread A has completed."""
        events = EventManager()
        entered = threading.Event()
        release = threading.Event()
        finished_at = []

        def slow(notification):
            entered.set()
            release.wait(5.0)
            finished_at.append(time.monotonic())

        sub = events.register("E", slow)
        raiser = threading.Thread(
            target=events.raise_event, args=("E", (), "t", 1)
        )
        raiser.start()
        assert entered.wait(5.0)
        unregistered_at = []

        def unregister():
            events.unregister(sub)
            unregistered_at.append(time.monotonic())

        waiter = threading.Thread(target=unregister)
        waiter.start()
        time.sleep(0.05)
        assert not unregistered_at  # still blocked on the in-flight delivery
        release.set()
        waiter.join(5.0)
        raiser.join(5.0)
        assert unregistered_at and finished_at
        assert unregistered_at[0] >= finished_at[0]

    def test_no_delivery_after_unregister_returns(self):
        events = EventManager()
        got = []
        sub = events.register("E", got.append)
        events.raise_event("E", (), "t", 1)
        events.unregister(sub)
        events.raise_event("E", (), "t", 1)
        assert [n.seq for n in got] == [1]

    def test_reentrant_unregister_from_own_callback(self):
        """A callback unregistering its own subscription must not deadlock
        and must stop deliveries from then on."""
        events = EventManager()
        got = []
        sub_holder = []

        def once(notification):
            got.append(notification)
            events.unregister(sub_holder[0])

        sub_holder.append(events.register("E", once))
        raise_n(events, "E", 3)
        assert len(got) == 1

    def test_unregister_unknown_subscription(self):
        events = EventManager()
        assert events.unregister(999) is False


class TestClientInbox:
    def test_inbox_bounded_with_drop_oldest(self, tman_emp):
        client = TriggerManClient(tman_emp, inbox_limit=5)
        client.command(
            "create trigger t from emp on insert do raise event E(emp.eno)"
        )
        client.register_for_event("E")
        for i in range(12):
            tman_emp.insert("emp", {"eno": i, "name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert len(client.inbox) == 5
        assert client.inbox_drops == 7
        # oldest were evicted: the retained tail is the 5 newest
        kept = [n.args[0] for n in client.inbox]
        assert kept == [7, 8, 9, 10, 11]

    def test_unbounded_inbox_opt_in(self, tman_emp):
        client = TriggerManClient(tman_emp, inbox_limit=None)
        client.command(
            "create trigger t from emp on insert do raise event E"
        )
        client.register_for_event("E")
        for i in range(20):
            tman_emp.insert("emp", {"eno": i, "name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert len(client.inbox) == 20
        assert client.inbox_drops == 0

    def test_disconnect_unregisters_everything(self, tman_emp):
        """Regression: events raised after disconnect() must not land in the
        inbox or fire callbacks, for every subscription the client made."""
        client = TriggerManClient(tman_emp)
        via_callback = []
        client.command(
            "create trigger t1 from emp on insert do raise event A"
        )
        client.command(
            "create trigger t2 from emp on insert do raise event B"
        )
        client.register_for_event("A")
        client.register_for_event("B")
        client.register_for_event("A", via_callback.append)
        tman_emp.insert("emp", {"eno": 1, "name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert len(client.inbox) == 2 and len(via_callback) == 1
        client.disconnect()
        assert tman_emp.events.subscriber_count("A") == 0
        assert tman_emp.events.subscriber_count("B") == 0
        tman_emp.insert("emp", {"eno": 2, "name": "y", "salary": 1.0})
        tman_emp.process_all()
        assert len(client.inbox) == 2 and len(via_callback) == 1


class TestConcurrentHammer:
    N_THREADS = 4
    N_EVENTS = 250

    def test_no_lost_or_duplicate_seqs_under_churn(self):
        """4 raiser threads vs. churning register/unregister: sequence
        numbers stay unique and gap-free, stable subscribers see every
        event for their name exactly once and in order, and the error ring
        stays bounded."""
        events = EventManager(error_history=16)
        raised = [[] for _ in range(self.N_THREADS)]
        stable = {f"E{i}": [] for i in range(self.N_THREADS)}
        for name, sink in stable.items():
            events.register(name, sink.append)

        stop = threading.Event()

        def churn():
            while not stop.is_set():
                subs = [
                    events.register(f"E{i % self.N_THREADS}", lambda n: None)
                    for i in range(8)
                ]
                # some subscribers misbehave, some unregister mid-flight
                bad = events.register("E0", lambda n: 1 / 0)
                for sub in subs:
                    events.unregister(sub)
                events.unregister(bad)

        churners = [threading.Thread(target=churn) for _ in range(2)]
        for thread in churners:
            thread.start()
        raisers = [
            threading.Thread(
                target=raise_n,
                args=(events, f"E{i}", self.N_EVENTS, raised[i]),
            )
            for i in range(self.N_THREADS)
        ]
        for thread in raisers:
            thread.start()
        for thread in raisers:
            thread.join(30.0)
        stop.set()
        for thread in churners:
            thread.join(30.0)

        total = self.N_THREADS * self.N_EVENTS
        seqs = [n.seq for group in raised for n in group]
        assert len(seqs) == total
        assert sorted(seqs) == list(range(1, total + 1))  # no loss, no dups
        for i in range(self.N_THREADS):
            # one raiser per name -> deliveries are sequential and ordered
            got = [n.seq for n in stable[f"E{i}"]]
            want = [n.seq for n in raised[i]]
            assert got == want
        assert len(events.delivery_errors) <= 16  # bounded under churn
        assert not events._active  # no in-flight bookkeeping leaked

    def test_client_disconnect_race_with_raisers(self, tman_emp):
        """Clients disconnecting while drivers deliver: no delivery may
        land after disconnect() returns."""
        events = tman_emp.events
        stop = threading.Event()

        def raiser():
            while not stop.is_set():
                events.raise_event("E", (), "t", 1)

        raisers = [threading.Thread(target=raiser) for _ in range(4)]
        for thread in raisers:
            thread.start()
        try:
            for _ in range(50):
                client = TriggerManClient(tman_emp, inbox_limit=64)
                client.register_for_event("E")
                time.sleep(0.001)
                client.disconnect()
                size_after = len(client.inbox) + client.inbox_drops
                time.sleep(0.002)
                assert len(client.inbox) + client.inbox_drops == size_after
        finally:
            stop.set()
            for thread in raisers:
                thread.join(10.0)
        assert not events._active
