"""Unit tests for the client API, the data-source API, and the console."""

import pytest

from repro.engine.client import DataSourceProgram, TriggerManClient
from repro.engine.console import Console, run_interactive
from repro.errors import CatalogError


class TestClient:
    def test_command_and_inbox(self, tman_emp):
        client = TriggerManClient(tman_emp)
        client.command(
            "create trigger big from emp on insert "
            "when emp.salary > 10 do raise event Big(emp.name)"
        )
        client.register_for_event("Big")
        tman_emp.insert("emp", {"name": "x", "salary": 100.0})
        tman_emp.process_all()
        notification = client.next_notification()
        assert notification.args == ("x",)
        assert client.next_notification() is None

    def test_callback_subscription(self, tman_emp):
        client = TriggerManClient(tman_emp)
        got = []
        client.command(
            "create trigger t from emp on insert do raise event E"
        )
        client.register_for_event("E", got.append)
        tman_emp.insert("emp", {"name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert len(got) == 1

    def test_disconnect_stops_delivery(self, tman_emp):
        client = TriggerManClient(tman_emp)
        client.command(
            "create trigger t from emp on insert do raise event E"
        )
        client.register_for_event("E")
        client.disconnect()
        tman_emp.insert("emp", {"name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert client.next_notification() is None

    def test_create_drop_via_client(self, tman_emp):
        client = TriggerManClient(tman_emp)
        client.create_trigger("create trigger t from emp do raise event E")
        assert tman_emp.catalog.has_trigger("t")
        client.drop_trigger("t")
        assert not tman_emp.catalog.has_trigger("t")


class TestDataSourceProgram:
    def test_stream_feed(self, tman):
        tman.define_stream("ticks", [("sym", "varchar(8)"), ("p", "float")])
        tman.create_trigger(
            "create trigger up from ticks on update(ticks.p) "
            "when ticks.p > 10 do raise event Up(ticks.sym)"
        )
        feed = DataSourceProgram(tman, "ticks")
        feed.insert({"sym": "A", "p": 5.0})
        feed.update({"sym": "A", "p": 5.0}, {"sym": "A", "p": 50.0})
        feed.delete({"sym": "A", "p": 50.0})
        tman.process_all()
        ups = [n for n in tman.events.history if n.event_name == "Up"]
        assert len(ups) == 1

    def test_table_source_rejected(self, tman_emp):
        with pytest.raises(CatalogError):
            DataSourceProgram(tman_emp, "emp")


class TestConsole:
    def test_create_show_process(self, tman_emp):
        console = Console(tman_emp)
        out = console.execute(
            "create trigger t from emp on insert "
            "when emp.salary > 1 do raise event E"
        )
        assert out.startswith("ok")
        assert "t" in console.execute("show triggers")
        assert "CONSTANT_1" in console.execute("show signatures")
        assert "emp" in console.execute("show sources")
        tman_emp.insert("emp", {"name": "x", "salary": 5.0})
        assert "processed 1" in console.execute("process")
        stats = console.execute("show stats")
        assert "triggers_fired: 1" in stats

    def test_sql_passthrough(self, tman_emp):
        console = Console(tman_emp)
        console.execute("sql insert into emp (name, salary) values ('a', 1.0)")
        out = console.execute("sql select name from emp")
        assert "a" in out

    def test_error_reported_not_raised(self, tman_emp):
        console = Console(tman_emp)
        out = console.execute("drop trigger ghost")
        assert out.startswith("error:")

    def test_explain_trigger(self, tman_emp):
        console = Console(tman_emp)
        console.execute(
            "create trigger t from emp on insert "
            "when emp.salary > 10 and emp.dept = 'x' do raise event E"
        )
        out = console.execute("explain trigger t")
        assert "network: ATreatNetwork" in out
        assert "emp [insert]" in out
        assert "sig 1" in out
        assert "action: raise event E()" in out
        assert console.execute("explain trigger ghost").startswith("error:")

    def test_explain_join_trigger_lists_edges(self, tman_emp):
        tman_emp.define_table("dept", [("dname", "varchar(20)")])
        console = Console(tman_emp)
        console.execute(
            "create trigger j from emp e, dept d "
            "when e.dept = d.dname do raise event J"
        )
        out = console.execute("explain trigger j")
        assert "join predicates:" in out
        assert "(e.dept = d.dname)" in out
        assert "entry: alpha:e" in out

    def test_help_and_empty(self, tman_emp):
        console = Console(tman_emp)
        assert "console commands" in console.execute("help")
        assert console.execute("") == ""

    def test_run_interactive(self, tman_emp):
        lines = iter(["show triggers", "quit"])
        outputs = []
        run_interactive(
            tman_emp,
            input_fn=lambda prompt: next(lines),
            print_fn=outputs.append,
        )
        assert any("(none)" in o for o in outputs)

    def test_run_interactive_eof(self, tman_emp):
        def raise_eof(prompt):
            raise EOFError

        run_interactive(tman_emp, input_fn=raise_eof, print_fn=lambda s: None)
