"""Unit tests for action execution (macro substitution, events, callbacks)
and the event manager."""

import pytest

from repro.engine.actions import (
    ActionExecutor,
    render_sql_literal,
    substitute_macros,
)
from repro.engine.events import EventManager
from repro.lang import ast
from repro.lang.evaluator import Bindings
from repro.lang.exprparser import parse_expression_text as parse
from repro.sql.database import Database
from repro.sql.schema import schema


class TestSqlLiteralRendering:
    def test_values(self):
        assert render_sql_literal(None) == "NULL"
        assert render_sql_literal(True) == "TRUE"
        assert render_sql_literal(7) == "7"
        assert render_sql_literal(2.5) == "2.5"
        assert render_sql_literal("it's") == "'it''s'"


class TestMacroSubstitution:
    def test_new_old_qualified(self):
        bindings = Bindings(
            rows={"emp": {"salary": 500.0, "name": "bob"}},
            old_rows={"emp": {"salary": 100.0}},
        )
        sql = substitute_macros(
            "update emp set salary=:NEW.emp.salary, prev=:OLD.emp.salary "
            "where name = :NEW.emp.name",
            bindings,
        )
        assert sql == (
            "update emp set salary=500.0, prev=100.0 where name = 'bob'"
        )

    def test_unqualified_single_binding(self):
        bindings = Bindings(
            rows={"emp": {"salary": 1.0}}, old_rows={"emp": {"salary": 2.0}}
        )
        assert substitute_macros(":NEW.salary + :OLD.salary", bindings) == (
            "1.0 + 2.0"
        )

    def test_case_insensitive(self):
        bindings = Bindings(rows={"e": {"x": 1}})
        assert substitute_macros(":new.e.x", bindings) == "1"

    def test_string_escaping(self):
        bindings = Bindings(rows={"e": {"n": "O'Brien"}})
        assert substitute_macros(":NEW.e.n", bindings) == "'O''Brien'"


@pytest.fixture
def executor():
    db = Database()
    db.create_table(schema("log", ("msg", "varchar(100)")))
    events = EventManager()
    return ActionExecutor(db, events), db, events


class TestActionExecution:
    def test_execsql(self, executor):
        actions, db, _events = executor
        bindings = Bindings(rows={"emp": {"name": "zed"}})
        ok = actions.execute(
            ast.ExecSqlAction("insert into log values (:NEW.emp.name)"),
            bindings,
            "t1",
            1,
        )
        assert ok
        assert db.execute("select * from log") == [("zed",)]
        assert actions.executed == 1

    def test_raise_event_evaluates_args(self, executor):
        actions, _db, events = executor
        got = []
        events.register("Alert", got.append)
        bindings = Bindings(rows={"emp": {"salary": 100.0}})
        action = ast.RaiseEventAction(
            "Alert", (parse("emp.salary * 2"),)
        )
        assert actions.execute(action, bindings, "t1", 1)
        assert got[0].args == (200.0,)
        assert got[0].trigger_name == "t1"

    def test_call_action(self, executor):
        actions, _db, _events = executor
        seen = []
        actions.register_callback("handler", lambda rows, old: seen.append(rows))
        bindings = Bindings(rows={"emp": {"x": 1}})
        assert actions.execute(ast.CallAction("handler"), bindings, "t", 1)
        assert seen == [{"emp": {"x": 1}}]

    def test_missing_callback_recorded(self, executor):
        actions, _db, _events = executor
        ok = actions.execute(
            ast.CallAction("ghost"), Bindings(), "t", 1
        )
        assert not ok
        assert len(actions.failures) == 1
        assert actions.failures[0].trigger_name == "t"

    def test_sql_failure_isolated(self, executor):
        actions, _db, _events = executor
        ok = actions.execute(
            ast.ExecSqlAction("insert into missing values (1)"),
            Bindings(),
            "t",
            1,
        )
        assert not ok
        assert actions.executed == 0


class TestEventManager:
    def test_register_and_raise(self):
        events = EventManager()
        got = []
        events.register("E", got.append)
        notification = events.raise_event("E", (1, 2), "t", 7)
        assert got == [notification]
        assert notification.seq == 1
        assert events.history[-1] is notification

    def test_multiple_subscribers(self):
        events = EventManager()
        a, b = [], []
        events.register("E", a.append)
        events.register("E", b.append)
        events.raise_event("E", (), "t", 1)
        assert len(a) == len(b) == 1

    def test_unregister(self):
        events = EventManager()
        got = []
        sub = events.register("E", got.append)
        assert events.unregister(sub)
        assert not events.unregister(sub)
        events.raise_event("E", (), "t", 1)
        assert got == []

    def test_callback_error_isolated(self):
        events = EventManager()

        def bad(_n):
            raise RuntimeError("boom")

        good = []
        events.register("E", bad)
        events.register("E", good.append)
        events.raise_event("E", (), "t", 1)
        assert len(good) == 1
        assert len(events.delivery_errors) == 1

    def test_history_bounded(self):
        events = EventManager(history_size=3)
        for i in range(10):
            events.raise_event("E", (i,), "t", 1)
        assert len(events.history) == 3
        assert events.history[0].args == (7,)

    def test_subscriber_count(self):
        events = EventManager()
        events.register("E", lambda n: None)
        assert events.subscriber_count("E") == 1
        assert events.subscriber_count("F") == 0
