"""Acceptance for the batched token pipeline + compiled predicates.

Equivalence is the whole game: with batching and compilation on, the
durable firing ledger (ACTION_FIRED keyed by ``(seq, idx)``) must equal —
as a multiset of ``(trigger, digest)`` — what the interpreted single-token
engine produces from the same updates, under a multi-driver pool and under
the crash-loop fault injector.  Plus unit invariants on
``dequeue_batch`` (batch-wide log-before-delete) and the new
observability surface (compiler gauges, batch-size histogram)."""

import json
import os
import random
import threading
import time

from collections import Counter

from repro.engine.descriptors import Operation, UpdateDescriptor
from repro.engine.drivers import DriverPool
from repro.engine.queue import MemoryQueue
from repro.engine.triggerman import TriggerMan
from repro.predindex import reset_compiled_residuals
from repro.sql.database import Database
from repro.wal import SimDisk, SimulatedCrash, WriteAheadLog
from repro.wal.log import ACTION_FIRED, TOKEN_DEQUEUE

SEED = int(os.environ.get("THREAD_STRESS_SEED", "1999"))
TARGET_CRASHES = int(os.environ.get("THREAD_STRESS_CRASHES", "6"))

#: residual-bearing predicates: the equality indexes, the rest compiles
#: into the signature-keyed residual cache.
TRIGGERS = [
    "create trigger high from s when s.k >= 0 and s.v > 50 "
    "do raise event High(s.k)",
    "create trigger low from s when s.k >= 0 and s.v < 50 "
    "do raise event Low(s.k)",
    "create trigger seen from s do raise event Seen(s.k, s.v)",
]

SITES = [
    ("wal.append", 6),
    ("wal.sync", 3),
    ("disk.log_append", 6),
    ("queue.enqueue", 3),
    ("queue.dequeue", 3),
    ("engine.fire", 3),
    ("engine.token_done", 2),
]


def _open_engine(disk, sync="always", **kwargs):
    wal = WriteAheadLog(disk.log, sync=sync, faults=disk.faults)
    database = Database(
        path=None,
        wal=wal,
        pager_factory=disk.pager_factory,
        catalog_store=disk.catalog,
        faults=disk.faults,
    )
    return TriggerMan(database, **kwargs)


def _boot(disk, sync="always", **kwargs):
    tman = _open_engine(disk, sync=sync, **kwargs)
    if "s" not in tman.registry:
        tman.define_stream("s", [("k", "integer"), ("v", "integer")])
        for text in TRIGGERS:
            tman.create_trigger(text)
    return tman


def _accept(payload, accepted):
    new = json.loads(payload).get("new") or {}
    if "k" in new:
        accepted[new["k"]] = new["v"]


def _scan(tman, ledger, accepted):
    for record in tman.catalog_db.wal.scan():
        if record.rtype == ACTION_FIRED:
            body = record.json()
            ledger[(body["seq"], body["idx"])] = (
                body["trigger"],
                body["digest"],
            )
        elif record.rtype == TOKEN_DEQUEUE:
            _accept(record.json()["payload"], accepted)
    for _rid, row in tman.queue.table.scan():
        _accept(row[3], accepted)
    for token in tman._replay:
        _accept(token.payload, accepted)


def _oracle_ledger(accepted):
    """Interpreted, unbatched, single-threaded: the reference execution."""
    oracle = _boot(SimDisk(), compile_predicates=False)
    for k in sorted(accepted):
        oracle.push("s", Operation.INSERT, new={"k": k, "v": accepted[k]})
    oracle.process_all()
    ledger = {}
    _scan(oracle, ledger, {})
    return ledger


def _descriptor(i):
    return UpdateDescriptor(
        "s", Operation.INSERT, new={"k": i, "v": i}
    )


class TestDequeueBatch:
    def test_memory_queue_fifo(self):
        q = MemoryQueue()
        for i in range(5):
            q.enqueue(_descriptor(i))
        batch = q.dequeue_batch(3)
        assert [d.new["k"] for d in batch] == [0, 1, 2]
        # Oversized request drains what's there; empty queue returns [].
        assert [d.new["k"] for d in q.dequeue_batch(10)] == [3, 4]
        assert q.dequeue_batch(4) == []
        assert q.dequeued == 5

    def test_table_queue_logs_before_delete(self):
        disk = SimDisk()
        tman = _boot(disk)
        for i in range(6):
            tman.push("s", Operation.INSERT, new={"k": i, "v": i})
        batch = tman.queue.dequeue_batch(4)
        assert [d.new["k"] for d in batch] == [0, 1, 2, 3]
        assert all(d.seq for d in batch)
        # One TOKEN_DEQUEUE record per token, in dequeue order, already
        # durable; the two undequeued rows are still in the table.
        seqs = [
            r.json()["seq"]
            for r in tman.catalog_db.wal.scan()
            if r.rtype == TOKEN_DEQUEUE
        ]
        assert seqs == [d.seq for d in batch]
        assert len(list(tman.queue.table.scan())) == 2
        assert len(tman.queue) == 2

    def test_table_queue_crash_mid_batch_resurrects(self):
        """A crash on the queue.dequeue fault site (after the WAL group,
        before the deletes) loses no tokens: recovery replays them."""
        disk = SimDisk()
        tman = _boot(disk)
        for i in range(4):
            tman.push("s", Operation.INSERT, new={"k": i, "v": i})
        disk.faults.arm("queue.dequeue", 1)
        try:
            tman.queue.dequeue_batch(3)
            raise AssertionError("expected the armed crash")
        except SimulatedCrash:
            pass
        disk.faults.disarm()
        disk.crash()
        tman = _boot(disk)
        ledger, accepted = {}, {}
        _scan(tman, ledger, accepted)
        assert set(accepted) == {0, 1, 2, 3}
        with DriverPool(tman, 2, threshold=0.05, poll_period=0.005) as pool:
            assert pool.quiesce(timeout=15.0)
        _scan(tman, ledger, accepted)
        assert Counter(ledger.values()) == Counter(
            _oracle_ledger(accepted).values()
        )


class TestBatchedEquivalence:
    def _run(self, batch_size, compile_predicates):
        reset_compiled_residuals()
        disk = SimDisk()
        tman = _boot(
            disk,
            batch_size=batch_size,
            compile_predicates=compile_predicates,
        )
        rng = random.Random(SEED)
        for k in range(60):
            tman.push(
                "s", Operation.INSERT, new={"k": k, "v": rng.randrange(100)}
            )
        tman.process_all()
        ledger, accepted = {}, {}
        _scan(tman, ledger, accepted)
        assert len(tman.queue) == 0 and tman._inflight == {}
        return Counter(ledger.values()), accepted

    def test_ledger_invariant_across_configs(self):
        base, accepted = self._run(1, False)
        assert base == Counter(_oracle_ledger(accepted).values())
        for batch_size in (1, 8, 64):
            for compiled in (False, True):
                ledger, _ = self._run(batch_size, compiled)
                assert ledger == base, (batch_size, compiled)

    def test_compile_off_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("TMAN_COMPILE", "off")
        assert TriggerMan.in_memory().compile_predicates is False
        monkeypatch.setenv("TMAN_COMPILE", "on")
        assert TriggerMan.in_memory().compile_predicates is True
        monkeypatch.delenv("TMAN_COMPILE")
        assert TriggerMan.in_memory().compile_predicates is True


def test_batched_pool_stress_matches_oracle():
    """Seeded 4-driver stress with compilation AND batching on: the
    durable ledger still reconciles exactly to the interpreted oracle."""
    rng = random.Random(SEED)
    reset_compiled_residuals()
    disk = SimDisk()
    tman = _boot(disk, batch_size=8, compile_predicates=True)
    per_producer = 30
    values = [
        [rng.randrange(100) for _ in range(per_producer)] for _ in range(2)
    ]

    def producer(pid):
        base = pid * per_producer
        for i, v in enumerate(values[pid]):
            tman.push("s", Operation.INSERT, new={"k": base + i, "v": v})

    def churner(cid):
        for round_no in range(6):
            name = f"churn_{cid}_{round_no}"
            tman.create_trigger(
                f"create trigger {name} from s when s.v > 1000000000 "
                f"do raise event X(s.k)"
            )
            time.sleep(0.002)
            tman.drop_trigger(name)

    with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
        threads = [
            threading.Thread(target=producer, args=(p,)) for p in (0, 1)
        ]
        threads += [
            threading.Thread(target=churner, args=(c,)) for c in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert pool.quiesce(timeout=30.0)
        assert pool.errors == []

    ledger, accepted = {}, {}
    _scan(tman, ledger, accepted)
    assert len(accepted) == 2 * per_producer
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay
    assert Counter(ledger.values()) == Counter(
        _oracle_ledger(accepted).values()
    )
    assert {t for t, _ in ledger.values()} <= {"high", "low", "seen"}


def test_batched_crash_loop_matches_oracle():
    """Crash-loop variant with batching + compilation armed: randomized
    faults kill drivers mid-batch, recovery replays, the cumulative ledger
    reconciles exactly once per accepted token."""
    rng = random.Random(SEED + 2)
    reset_compiled_residuals()
    disk = SimDisk()
    ledger, accepted = {}, {}
    tman = _boot(disk, batch_size=8, compile_predicates=True)
    next_k = 0
    iterations = 0
    while disk.faults.crashes < TARGET_CRASHES:
        iterations += 1
        assert iterations < TARGET_CRASHES * 30, "crash loop failed to converge"
        crashes_before = disk.faults.crashes
        site, span = SITES[rng.randrange(len(SITES))]
        pool = DriverPool(tman, 4, threshold=0.05, poll_period=0.005)
        pool.start()
        disk.faults.arm(site, rng.randint(1, span), torn=rng.random() < 0.2)
        try:
            for _ in range(rng.randint(2, 6)):
                k = next_k
                next_k += 1
                tman.push(
                    "s", Operation.INSERT,
                    new={"k": k, "v": rng.randrange(100)},
                )
        except SimulatedCrash:
            pass
        deadline = time.time() + 15
        while time.time() < deadline:
            if pool.errors:
                break
            if pool.quiesce(timeout=0.5):
                break
        pool.stop()
        disk.faults.disarm()
        if disk.faults.crashes > crashes_before:
            disk.crash()
            tman = _boot(disk, batch_size=8, compile_predicates=True)
            _scan(tman, ledger, accepted)

    with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
        assert pool.quiesce(timeout=30.0)
    _scan(tman, ledger, accepted)
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay
    assert Counter(ledger.values()) == Counter(
        _oracle_ledger(accepted).values()
    )


class TestObservability:
    def test_compiler_gauges_and_batch_histogram(self):
        reset_compiled_residuals()
        tman = TriggerMan.in_memory(
            observability=True, batch_size=4, compile_predicates=True
        )
        tman.define_stream("s", [("k", "integer"), ("v", "integer")])
        for text in TRIGGERS:
            tman.create_trigger(text)
        for k in range(10):
            tman.push("s", Operation.INSERT, new={"k": k, "v": k * 11})
        while tman._refill_tasks():
            while True:
                task = tman.tasks.get()
                if task is None:
                    break
                task.run()
                tman.tasks.mark_done()
        snap = tman.stats_snapshot()
        assert snap["compiler.enabled"] == 1
        # Engine-created entries are columnar: compilation caches one
        # row-mode function per signature template, not per text.
        assert snap["compiler.cached_templates"] >= 1
        assert snap["compiler.cache_hits"] > 0
        assert snap["compiler.runtime_fallbacks"] == 0
        hist = snap["pipeline.batch_tokens"]
        assert hist["count"] >= 3  # 10 tokens in batches of <= 4
        assert hist["max"] <= 4
