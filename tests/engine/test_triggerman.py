"""Unit tests for the TriggerMan facade: trigger lifecycle (§5.1), token
processing (§5.4), events, streams, aggregates, and recovery."""

import pytest

from repro.errors import CatalogError, TriggerError
from repro.engine.descriptors import Operation
from repro.engine.triggerman import TriggerMan


def fired_events(tman, name):
    return [n for n in tman.events.history if n.event_name == name]


class TestTriggerLifecycle:
    def test_create_updates_catalogs(self, tman_emp):
        tid = tman_emp.create_trigger(
            "create trigger t1 from emp on insert "
            "when emp.salary > 100 do raise event E(emp.name)"
        )
        rows = tman_emp.catalog.list_triggers()
        assert rows[0]["triggerID"] == tid
        sigs = tman_emp.catalog.list_signatures()
        assert len(sigs) == 1
        assert sigs[0]["constantSetSize"] == 1
        assert tman_emp.index.entry_count() == 1

    def test_shared_signature_counted(self, tman_emp):
        for i in range(5):
            tman_emp.create_trigger(
                f"create trigger t{i} from emp on insert "
                f"when emp.salary > {i * 100} do raise event E"
            )
        assert tman_emp.index.signature_count() == 1
        assert tman_emp.catalog.list_signatures()[0]["constantSetSize"] == 5

    def test_duplicate_name_rejected(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger t1 from emp do raise event E"
        )
        with pytest.raises(TriggerError):
            tman_emp.create_trigger(
                "create trigger t1 from emp do raise event E"
            )

    def test_unknown_source_rejected(self, tman_emp):
        with pytest.raises(CatalogError):
            tman_emp.create_trigger(
                "create trigger t from ghosts do raise event E"
            )

    def test_unknown_column_rejected(self, tman_emp):
        from repro.errors import ConditionError

        with pytest.raises(ConditionError):
            tman_emp.create_trigger(
                "create trigger t from emp when emp.bogus = 1 "
                "do raise event E"
            )

    def test_drop_removes_entries(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger t1 from emp on insert "
            "when emp.salary > 1 do raise event E"
        )
        tman_emp.drop_trigger("t1")
        assert tman_emp.index.entry_count() == 0
        tman_emp.insert("emp", {"name": "x", "salary": 100.0})
        tman_emp.process_all()
        assert tman_emp.stats.triggers_fired == 0

    def test_trigger_in_set(self, tman_emp):
        tman_emp.execute_command("create trigger set alerts")
        tid = tman_emp.create_trigger(
            "create trigger t1 in alerts from emp do raise event E"
        )
        ts_id = tman_emp.catalog.trigger_set_of(tid)
        assert ts_id == tman_emp.catalog.trigger_set_id("alerts")

    def test_created_disabled(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger t1 disabled from emp on insert "
            "do raise event E"
        )
        tman_emp.insert("emp", {"name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert tman_emp.stats.triggers_fired == 0


class TestTokenProcessing:
    def test_insert_event_fires(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger big from emp on insert "
            "when emp.salary > 80000 do raise event Big(emp.name)"
        )
        tman_emp.insert("emp", {"name": "rich", "salary": 100000.0})
        tman_emp.insert("emp", {"name": "poor", "salary": 10000.0})
        tman_emp.process_all()
        events = fired_events(tman_emp, "Big")
        assert [e.args for e in events] == [("rich",)]

    def test_update_event_with_column_filter(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger watch from emp on update(emp.salary) "
            "do raise event Changed(emp.name)"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 1.0, "dept": "x"})
        tman_emp.process_all()
        tman_emp.update_rows("emp", {"name": "a"}, {"dept": "y"})
        tman_emp.process_all()
        assert fired_events(tman_emp, "Changed") == []
        tman_emp.update_rows("emp", {"name": "a"}, {"salary": 2.0})
        tman_emp.process_all()
        assert len(fired_events(tman_emp, "Changed")) == 1

    def test_delete_event_uses_old_image(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger gone from emp on delete from emp "
            "when emp.salary > 50 do raise event Gone(emp.name)"
        )
        tman_emp.insert("emp", {"name": "hi", "salary": 100.0})
        tman_emp.insert("emp", {"name": "lo", "salary": 10.0})
        tman_emp.process_all()
        tman_emp.delete_rows("emp", {"name": "hi"})
        tman_emp.delete_rows("emp", {"name": "lo"})
        tman_emp.process_all()
        events = fired_events(tman_emp, "Gone")
        assert [e.args for e in events] == [("hi",)]

    def test_implicit_insert_or_update(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger any from emp when emp.salary > 10 "
            "do raise event Any(emp.name)"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 100.0})
        tman_emp.process_all()
        tman_emp.update_rows("emp", {"name": "a"}, {"salary": 200.0})
        tman_emp.process_all()
        tman_emp.delete_rows("emp", {"name": "a"})
        tman_emp.process_all()
        assert len(fired_events(tman_emp, "Any")) == 2  # insert + update

    def test_execsql_action_cascades(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger sync from emp on update(emp.salary) "
            "when emp.name = 'Bob' "
            "do execSQL 'update emp set salary=:NEW.emp.salary "
            "where emp.name= ''Fred'''"
        )
        tman_emp.create_trigger(
            "create trigger watchFred from emp on update(emp.salary) "
            "when emp.name = 'Fred' do raise event FredChanged(emp.salary)"
        )
        tman_emp.insert("emp", {"name": "Bob", "salary": 1.0})
        tman_emp.insert("emp", {"name": "Fred", "salary": 1.0})
        tman_emp.process_all()
        tman_emp.update_rows("emp", {"name": "Bob"}, {"salary": 42.0})
        tman_emp.process_all()
        # the cascade: Bob's update fires sync, whose execSQL updates Fred,
        # whose captured update fires watchFred asynchronously
        events = fired_events(tman_emp, "FredChanged")
        assert [e.args for e in events] == [(42.0,)]

    def test_call_action(self, tman_emp):
        seen = []
        tman_emp.register_callback(
            "handler", lambda rows, old: seen.append(rows["emp"]["name"])
        )
        tman_emp.create_trigger(
            "create trigger cb from emp on insert do call handler"
        )
        tman_emp.insert("emp", {"name": "z", "salary": 0.0})
        tman_emp.process_all()
        assert seen == ["z"]

    def test_action_failure_does_not_stop_others(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger bad from emp on insert "
            "do execSQL 'insert into missing values (1)'"
        )
        tman_emp.create_trigger(
            "create trigger good from emp on insert do raise event OK"
        )
        tman_emp.insert("emp", {"name": "x", "salary": 1.0})
        tman_emp.process_all()
        assert len(fired_events(tman_emp, "OK")) == 1
        assert len(tman_emp.actions.failures) == 1

    def test_enable_disable_cycle(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger t from emp on insert do raise event E"
        )
        tman_emp.execute_command("disable trigger t")
        tman_emp.insert("emp", {"name": "a", "salary": 1.0})
        tman_emp.process_all()
        assert fired_events(tman_emp, "E") == []
        tman_emp.execute_command("enable trigger t")
        tman_emp.insert("emp", {"name": "b", "salary": 1.0})
        tman_emp.process_all()
        assert len(fired_events(tman_emp, "E")) == 1

    def test_trigger_set_disable(self, tman_emp):
        tman_emp.execute_command("create trigger set s")
        tman_emp.create_trigger(
            "create trigger t in s from emp on insert do raise event E"
        )
        tman_emp.execute_command("disable trigger set s")
        tman_emp.insert("emp", {"name": "a", "salary": 1.0})
        tman_emp.process_all()
        assert fired_events(tman_emp, "E") == []


class TestStreams:
    def test_stream_trigger(self, tman):
        tman.define_stream("ticks", [("symbol", "varchar(8)"), ("price", "float")])
        tman.create_trigger(
            "create trigger spike from ticks on insert "
            "when ticks.price > 100 do raise event Spike(ticks.symbol)"
        )
        tman.push("ticks", Operation.INSERT, new={"symbol": "ACME", "price": 200.0})
        tman.push("ticks", Operation.INSERT, new={"symbol": "ZZZ", "price": 5.0})
        tman.process_all()
        assert [n.args for n in fired_events(tman, "Spike")] == [("ACME",)]

    def test_stream_rejects_unknown_columns(self, tman):
        tman.define_stream("s", [("a", "integer")])
        with pytest.raises(Exception):
            tman.push("s", Operation.INSERT, new={"bogus": 1})

    def test_push_to_table_rejected(self, tman_emp):
        with pytest.raises(CatalogError):
            tman_emp.push("emp", Operation.INSERT, new={})

    def test_stream_join_trigger_pinned(self, tman):
        tman.define_stream("a", [("k", "integer")])
        tman.define_stream("b", [("k", "integer")])
        tid = tman.create_trigger(
            "create trigger j from a, b when a.k = b.k "
            "do raise event J(a.k)"
        )
        assert tid in tman._permanent_pins
        tman.push("b", Operation.INSERT, new={"k": 1})
        tman.process_all()
        tman.push("a", Operation.INSERT, new={"k": 1})
        tman.process_all()
        assert len(fired_events(tman, "J")) == 1


class TestAggregates:
    def test_group_by_having(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger crowded from emp on insert "
            "group by emp.dept having count(*) >= 3 "
            "do raise event Crowded(emp.dept)"
        )
        for i in range(3):
            tman_emp.insert(
                "emp", {"name": f"e{i}", "salary": 1.0, "dept": "toys"}
            )
        tman_emp.insert("emp", {"name": "x", "salary": 1.0, "dept": "shoes"})
        tman_emp.process_all()
        events = fired_events(tman_emp, "Crowded")
        assert [e.args for e in events] == [("toys",)]

    def test_having_without_group_by(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger total from emp on insert "
            "having sum(emp.salary) > 100 do raise event Total"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 60.0})
        tman_emp.process_all()
        assert fired_events(tman_emp, "Total") == []
        tman_emp.insert("emp", {"name": "b", "salary": 60.0})
        tman_emp.process_all()
        assert len(fired_events(tman_emp, "Total")) == 1

    def test_group_by_without_having_rejected(self, tman_emp):
        with pytest.raises(TriggerError):
            tman_emp.create_trigger(
                "create trigger g from emp group by emp.dept "
                "do raise event E"
            )


class TestCacheIntegration:
    def test_eviction_and_reload(self, tman):
        tman = TriggerMan.in_memory(cache_capacity=2)
        tman.define_table("emp", [("name", "varchar(20)"), ("salary", "float")])
        for i in range(5):
            tman.create_trigger(
                f"create trigger t{i} from emp on insert "
                f"when emp.salary > {i} do raise event E{i}(emp.name)"
            )
        assert len(tman.cache) <= 2
        tman.insert("emp", {"name": "x", "salary": 100.0})
        tman.process_all()
        # every trigger fired despite most being evicted (reloaded on pin)
        fired = {n.event_name for n in tman.events.history}
        assert fired == {f"E{i}" for i in range(5)}
        assert tman.cache.stats.misses > 0

    def test_metrics_shape(self, tman_emp):
        metrics = tman_emp.metrics()
        for key in (
            "tokens_processed",
            "triggers_fired",
            "signatures",
            "cache_hits",
            "queue_depth",
        ):
            assert key in metrics


class TestRecovery:
    def test_persistent_restart_replays_triggers(self, tmp_path):
        path = str(tmp_path / "tman")
        tman = TriggerMan.persistent(path)
        tman.define_table("emp", [("name", "varchar(20)"), ("salary", "float")])
        tman.create_trigger(
            "create trigger big from emp on insert "
            "when emp.salary > 10 do raise event Big(emp.name)"
        )
        tman.insert("emp", {"name": "before", "salary": 100.0})
        # crash before processing: the queued descriptor must survive
        tman.catalog_db.close()

        tman2 = TriggerMan.persistent(path)
        tman2.insert("emp", {"name": "after", "salary": 100.0})
        tman2.process_all()
        names = [n.args[0] for n in fired_events(tman2, "Big")]
        assert names == ["before", "after"]
        tman2.catalog_db.close()

    def test_restart_preserves_disabled_state(self, tmp_path):
        path = str(tmp_path / "tman")
        tman = TriggerMan.persistent(path)
        tman.define_table("emp", [("name", "varchar(20)")])
        tman.create_trigger(
            "create trigger t from emp on insert do raise event E"
        )
        tman.execute_command("disable trigger t")
        tman.catalog_db.close()

        tman2 = TriggerMan.persistent(path)
        tman2.insert("emp", {"name": "x"})
        tman2.process_all()
        assert fired_events(tman2, "E") == []
        tman2.catalog_db.close()


class TestLifecycle:
    def test_context_manager_flushes(self, tmp_path):
        path = str(tmp_path / "cm")
        with TriggerMan.persistent(path) as tman:
            tman.define_table("t", [("a", "integer")])
            tman.create_trigger(
                "create trigger x from t on insert do raise event E"
            )
        with TriggerMan.persistent(path) as tman2:
            assert tman2.catalog.has_trigger("x")

    def test_flush_without_close(self, tmp_path):
        path = str(tmp_path / "fl")
        tman = TriggerMan.persistent(path)
        tman.define_table("t", [("a", "integer")])
        tman.insert("t", {"a": 1})
        tman.flush()
        # reopen without closing the first instance ("crash after flush")
        tman2 = TriggerMan.persistent(path)
        assert len(tman2.queue) == 1
        tman2.close()


class TestDataSourceManagement:
    def test_drop_data_source_in_use_rejected(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger t from emp do raise event E"
        )
        with pytest.raises(CatalogError):
            tman_emp.drop_data_source("emp")

    def test_drop_unused_source(self, tman):
        tman.define_stream("s", [("a", "integer")])
        tman.drop_data_source("s")
        assert "s" not in tman.registry

    def test_define_source_over_existing_table(self, tman):
        tman.default_connection.database.execute(
            "create table raw (a integer)"
        )
        tman.execute_command("define data source raw from raw")
        tman.create_trigger(
            "create trigger t from raw on insert do raise event E(raw.a)"
        )
        tman.execute_sql("insert into raw values (7)")
        tman.process_all()
        assert fired_events(tman, "E")[0].args == (7,)

    def test_tman_test_interface(self, tman_emp):
        from repro.engine.tasks import TASK_QUEUE_EMPTY

        tman_emp.create_trigger(
            "create trigger t from emp on insert do raise event E"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 1.0})
        status = tman_emp.tman_test()
        assert status == TASK_QUEUE_EMPTY
        assert len(fired_events(tman_emp, "E")) == 1
