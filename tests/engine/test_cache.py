"""Unit tests for the trigger cache (pin/unpin, LRU, byte budget)."""

import pytest

from repro.engine.cache import TriggerCache
from repro.errors import TriggerError


class FakeRuntime:
    def __init__(self, trigger_id, size=4096):
        self.trigger_id = trigger_id
        self.size = size


def make_cache(capacity=3, capacity_bytes=None, loads=None):
    loads = loads if loads is not None else []

    def loader(trigger_id):
        loads.append(trigger_id)
        return FakeRuntime(trigger_id)

    cache = TriggerCache(
        loader,
        capacity=capacity,
        capacity_bytes=capacity_bytes,
        size_of=lambda r: r.size,
    )
    return cache, loads


class TestPinProtocol:
    def test_pin_loads_once(self):
        cache, loads = make_cache()
        a = cache.pin(1)
        cache.unpin(1)
        b = cache.pin(1)
        cache.unpin(1)
        assert a is b
        assert loads == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_unpin_without_pin_raises(self):
        cache, _ = make_cache()
        with pytest.raises(TriggerError):
            cache.unpin(1)

    def test_pinned_count(self):
        cache, _ = make_cache()
        cache.pin(1)
        cache.pin(2)
        cache.unpin(2)
        assert cache.pinned_count() == 1
        cache.unpin(1)


class TestEviction:
    def test_lru_eviction(self):
        cache, loads = make_cache(capacity=2)
        for tid in (1, 2):
            cache.pin(tid)
            cache.unpin(tid)
        cache.pin(1)  # 1 becomes MRU
        cache.unpin(1)
        cache.pin(3)  # evicts 2
        cache.unpin(3)
        assert 2 not in cache
        assert 1 in cache
        assert cache.stats.evictions == 1

    def test_pinned_never_evicted(self):
        cache, _ = make_cache(capacity=2)
        cache.pin(1)  # stays pinned
        cache.pin(2)
        cache.unpin(2)
        cache.pin(3)  # must evict 2
        cache.unpin(3)
        assert 1 in cache
        assert 2 not in cache
        cache.unpin(1)

    def test_overcommit_when_all_pinned(self):
        cache, _ = make_cache(capacity=2)
        cache.pin(1)
        cache.pin(2)
        cache.pin(3)  # admitted over capacity rather than failing
        assert len(cache) == 3
        for tid in (1, 2, 3):
            cache.unpin(tid)

    def test_byte_budget_eviction(self):
        """The paper's sizing: descriptions of ~4 KB against a byte budget."""
        cache, _ = make_cache(capacity=100, capacity_bytes=3 * 4096)
        for tid in range(1, 5):
            cache.pin(tid)
            cache.unpin(tid)
        assert len(cache) == 3
        assert cache.resident_bytes() <= 3 * 4096


class TestInvalidation:
    def test_invalidate_removes(self):
        cache, loads = make_cache()
        cache.pin(1)
        cache.unpin(1)
        cache.invalidate(1)
        assert 1 not in cache
        cache.pin(1)
        cache.unpin(1)
        assert loads == [1, 1]

    def test_seed_skips_loader(self):
        cache, loads = make_cache()
        runtime = FakeRuntime(9)
        cache.seed(9, runtime)
        assert cache.pin(9) is runtime
        cache.unpin(9)
        assert loads == []

    def test_seed_replaces(self):
        cache, _ = make_cache()
        first = FakeRuntime(9)
        second = FakeRuntime(9)
        cache.seed(9, first)
        cache.seed(9, second)
        assert cache.pin(9) is second
        cache.unpin(9)

    def test_clear(self):
        cache, _ = make_cache()
        cache.pin(1)
        cache.unpin(1)
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes() == 0

    def test_capacity_validated(self):
        with pytest.raises(TriggerError):
            TriggerCache(lambda t: t, capacity=0)
