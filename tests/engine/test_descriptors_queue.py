"""Unit tests for update descriptors and both queue implementations."""

import pytest

from repro.errors import QueueError
from repro.engine.descriptors import Operation, UpdateDescriptor
from repro.engine.queue import MemoryQueue, TableQueue
from repro.sql.database import Database


class TestUpdateDescriptor:
    def test_insert_requires_new(self):
        with pytest.raises(QueueError):
            UpdateDescriptor("s", Operation.INSERT)

    def test_delete_requires_old(self):
        with pytest.raises(QueueError):
            UpdateDescriptor("s", Operation.DELETE, new={"a": 1})

    def test_update_requires_both(self):
        with pytest.raises(QueueError):
            UpdateDescriptor("s", Operation.UPDATE, new={"a": 1})

    def test_unknown_operation(self):
        with pytest.raises(QueueError):
            UpdateDescriptor("s", "merge", new={"a": 1})

    def test_match_row_selection(self):
        insert = UpdateDescriptor("s", Operation.INSERT, new={"a": 1})
        assert insert.match_row == {"a": 1}
        delete = UpdateDescriptor("s", Operation.DELETE, old={"a": 2})
        assert delete.match_row == {"a": 2}
        update = UpdateDescriptor.for_update("s", {"a": 1}, {"a": 3})
        assert update.match_row == {"a": 3}

    def test_for_update_changed_columns(self):
        d = UpdateDescriptor.for_update(
            "s", {"a": 1, "b": 2, "c": 3}, {"a": 1, "b": 9, "c": 3}
        )
        assert d.changed_columns == frozenset({"b"})

    def test_for_update_detects_added_removed_keys(self):
        d = UpdateDescriptor.for_update("s", {"a": 1}, {"a": 1, "b": 2})
        assert d.changed_columns == frozenset({"b"})

    def test_json_roundtrip(self):
        d = UpdateDescriptor.for_update(
            "s", {"a": 1, "b": "x"}, {"a": 2, "b": "x"}
        )
        rebuilt = UpdateDescriptor.from_parts("s", "update", d.to_json(), 5)
        assert rebuilt.new == d.new
        assert rebuilt.old == d.old
        assert rebuilt.changed_columns == d.changed_columns
        assert rebuilt.seq == 5


class QueueContract:
    """Shared behaviour both queue kinds must satisfy."""

    def make_queue(self):
        raise NotImplementedError

    def test_fifo_order(self):
        queue = self.make_queue()
        for i in range(5):
            queue.enqueue(
                UpdateDescriptor("s", Operation.INSERT, new={"i": i})
            )
        got = [queue.dequeue().new["i"] for _ in range(5)]
        assert got == list(range(5))

    def test_empty_returns_none(self):
        assert self.make_queue().dequeue() is None

    def test_seq_assigned_monotonically(self):
        queue = self.make_queue()
        a = queue.enqueue(UpdateDescriptor("s", Operation.INSERT, new={}))
        b = queue.enqueue(UpdateDescriptor("s", Operation.INSERT, new={}))
        assert b.seq > a.seq

    def test_len_tracks(self):
        queue = self.make_queue()
        queue.enqueue(UpdateDescriptor("s", Operation.INSERT, new={}))
        assert len(queue) == 1
        queue.dequeue()
        assert len(queue) == 0

    def test_drain(self):
        queue = self.make_queue()
        for i in range(3):
            queue.enqueue(UpdateDescriptor("s", Operation.INSERT, new={"i": i}))
        assert [d.new["i"] for d in queue.drain()] == [0, 1, 2]


class TestMemoryQueue(QueueContract):
    def make_queue(self):
        return MemoryQueue()


class TestTableQueue(QueueContract):
    def make_queue(self):
        return TableQueue(Database())

    def test_survives_restart(self, tmp_path):
        path = str(tmp_path / "qdb")
        db = Database(path)
        queue = TableQueue(db)
        for i in range(4):
            queue.enqueue(
                UpdateDescriptor("s", Operation.INSERT, new={"i": i})
            )
        queue.dequeue()  # consume one before "crash"
        db.close()

        db2 = Database(path)
        recovered = TableQueue(db2)
        assert len(recovered) == 3
        got = [recovered.dequeue().new["i"] for _ in range(3)]
        assert got == [1, 2, 3]
        # sequence numbering continues after the old maximum
        stamped = recovered.enqueue(
            UpdateDescriptor("s", Operation.INSERT, new={})
        )
        assert stamped.seq >= 5
        db2.close()

    def test_sync_on_enqueue_survives_unflushed_close(self, tmp_path):
        """With sync_on_enqueue, an enqueue is durable even if the process
        dies without flushing (simulated by reopening the page files
        directly, bypassing close())."""
        path = str(tmp_path / "qdb")
        db = Database(path)
        queue = TableQueue(db, sync_on_enqueue=True)
        queue.enqueue(UpdateDescriptor("s", Operation.INSERT, new={"i": 1}))
        # no db.close(): simulate a crash by just abandoning the instance
        db2 = Database(path)
        recovered = TableQueue(db2)
        assert len(recovered) == 1
        assert recovered.dequeue().new == {"i": 1}
        db2.close()

    def test_oversized_payload_rejected(self):
        queue = self.make_queue()
        with pytest.raises(QueueError):
            queue.enqueue(
                UpdateDescriptor(
                    "s", Operation.INSERT, new={"blob": "x" * 5000}
                )
            )
