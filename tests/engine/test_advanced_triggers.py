"""Engine tests for the less common trigger shapes: self-joins, multiple
connections, OLD references in actions, and mixed-source triggers."""

import pytest

from repro.engine.triggerman import TriggerMan
from repro.sql.database import Database


def fired(tman, name):
    return [n.args for n in tman.events.history if n.event_name == name]


class TestSelfJoin:
    """One source used twice: both tuple variables share one signature
    group, and the network joins the table with itself."""

    @pytest.fixture
    def org(self):
        tman = TriggerMan.in_memory()
        tman.define_table(
            "emp",
            [("eno", "integer"), ("name", "varchar(40)"), ("mgr", "integer"),
             ("salary", "float")],
        )
        tman.insert("emp", {"eno": 1, "name": "boss", "mgr": 0, "salary": 100.0})
        tman.process_all()
        tman.create_trigger(
            "create trigger outEarns on insert to e "
            "from emp e, emp m "
            "when e.mgr = m.eno and e.salary > m.salary "
            "do raise event OutEarns(e.name, m.name)"
        )
        return tman

    def test_fires_when_report_out_earns_manager(self, org):
        org.insert("emp", {"eno": 2, "name": "star", "mgr": 1, "salary": 500.0})
        org.process_all()
        assert ("star", "boss") in fired(org, "OutEarns")

    def test_silent_when_not(self, org):
        org.insert("emp", {"eno": 3, "name": "junior", "mgr": 1, "salary": 50.0})
        org.process_all()
        assert fired(org, "OutEarns") == []

    def test_both_tvars_share_signature(self, org):
        # e and m both contribute a trivial selection on emp with the same
        # event code (insert for the event target e, implicit for m... the
        # event names tvar e, so the two predicates differ by op code)
        sigs = org.catalog.list_signatures()
        sources = [s["dataSrcID"] for s in sigs]
        assert sources.count("emp") == len(sigs)

    def test_token_activates_both_roles(self, org):
        """An insert joins both as employee and as manager."""
        org.insert("emp", {"eno": 4, "name": "a", "mgr": 1, "salary": 500.0})
        org.process_all()
        org.events.history.clear()
        # new hire managed by 4, earning more than 4
        org.insert("emp", {"eno": 5, "name": "b", "mgr": 4, "salary": 900.0})
        org.process_all()
        assert ("b", "a") in fired(org, "OutEarns")


class TestMultipleConnections:
    def test_remote_connection_source(self):
        """A data source on a non-default connection (the paper's remote
        database), with the action running on the default connection."""
        tman = TriggerMan.in_memory()
        remote = Database()
        tman.add_connection("remote", remote)
        remote.execute("create table sensors (sid integer, temp float)")
        tman.execute_sql(
            "create table alarms (sid integer, temp float)"
        )
        tman.define_data_source_from_table(
            "sensors", "sensors", connection="remote"
        )
        tman.define_data_source_from_table("alarms", "alarms")
        tman.create_trigger(
            "create trigger hot from sensors on insert "
            "when sensors.temp > 90 "
            "do execSQL 'insert into alarms values "
            "(:NEW.sensors.sid, :NEW.sensors.temp)'"
        )
        remote.execute("insert into sensors values (1, 50.0)")
        remote.execute("insert into sensors values (2, 99.5)")
        tman.process_all()
        assert tman.execute_sql("select * from alarms") == [(2, 99.5)]

    def test_duplicate_connection_rejected(self):
        tman = TriggerMan.in_memory()
        with pytest.raises(Exception):
            tman.add_connection("default", Database())


class TestOldReferences:
    def test_old_in_raise_event(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger raiseWatch from emp on update(emp.salary) "
            "do raise event Raise(emp.name, :OLD.emp.salary, "
            ":NEW.emp.salary)"
        )
        tman_emp.insert("emp", {"name": "a", "salary": 100.0})
        tman_emp.process_all()
        tman_emp.update_rows("emp", {"name": "a"}, {"salary": 150.0})
        tman_emp.process_all()
        assert fired(tman_emp, "Raise") == [("a", 100.0, 150.0)]

    def test_old_in_execsql(self, tman_emp):
        tman_emp.execute_sql(
            "create table audit (name varchar(40), before float, "
            "after float)"
        )
        tman_emp.create_trigger(
            "create trigger audit_t from emp on update(emp.salary) "
            "do execSQL 'insert into audit values (:NEW.emp.name, "
            ":OLD.emp.salary, :NEW.emp.salary)'"
        )
        tman_emp.insert("emp", {"name": "b", "salary": 10.0})
        tman_emp.process_all()
        tman_emp.update_rows("emp", {"name": "b"}, {"salary": 20.0})
        tman_emp.process_all()
        assert tman_emp.execute_sql("select * from audit") == [
            ("b", 10.0, 20.0)
        ]


class TestMixedSources:
    def test_stream_joins_table(self, tman):
        """A stream tuple joining against a table's current contents —
        virtual alpha for the table, token source is the stream."""
        tman.define_table(
            "portfolio", [("user", "varchar(20)"), ("symbol", "varchar(8)")]
        )
        tman.define_stream(
            "ticks", [("symbol", "varchar(8)"), ("price", "float")]
        )
        tman.insert("portfolio", {"user": "ada", "symbol": "ACME"})
        tman.process_all()
        tman.create_trigger(
            "create trigger holding on insert to t "
            "from ticks t, portfolio p "
            "when t.symbol = p.symbol and t.price > 100 "
            "do raise event Holding(p.user, t.symbol, t.price)"
        )
        from repro.engine.descriptors import Operation

        tman.push("ticks", Operation.INSERT, new={"symbol": "ACME", "price": 150.0})
        tman.push("ticks", Operation.INSERT, new={"symbol": "ZZZ", "price": 150.0})
        tman.push("ticks", Operation.INSERT, new={"symbol": "ACME", "price": 50.0})
        tman.process_all()
        assert fired(tman, "Holding") == [("ada", "ACME", 150.0)]
