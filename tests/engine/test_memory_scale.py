"""Memory-scale refactor tests: cache reservations under the byte budget,
load-wait accounting, interned signatures, and spill→re-hydrate equality
of fired-action ledgers (ISSUE 8 / E18 foundations)."""

import threading

import pytest

from repro.condition.signature import (
    analyze_selection,
    interned_signature_count,
)
from repro.engine.cache import TriggerCache
from repro.engine.triggerman import TriggerMan
from repro.errors import TriggerError
from repro.lang.exprparser import parse_expression_text
from repro.workloads import scale


class FakeRuntime:
    def __init__(self, trigger_id, size=4096):
        self.trigger_id = trigger_id
        self.size = size


def make_cache(capacity=3, capacity_bytes=None, loads=None):
    loads = loads if loads is not None else []

    def loader(trigger_id):
        loads.append(trigger_id)
        return FakeRuntime(trigger_id)

    cache = TriggerCache(
        loader,
        capacity=capacity,
        capacity_bytes=capacity_bytes,
        size_of=lambda r: r.size,
    )
    return cache, loads


class TestLoadingReservation:
    def test_placeholder_reserves_bytes_before_load(self):
        """A miss charges the expected size at placeholder install — the
        budget can no longer be overshot by N in-flight loads — and makes
        room by evicting cold entries *before* the catalog round-trip."""
        cache, _ = make_cache(capacity=100, capacity_bytes=2 * 4096)
        cache.pin(1), cache.unpin(1)
        cache.pin(2), cache.unpin(2)
        assert cache.resident_bytes() == 2 * 4096
        during = {}

        def loader(trigger_id):
            during["bytes"] = cache.resident_bytes()
            during["one_resident"] = 1 in cache
            return FakeRuntime(trigger_id)

        cache._loader = loader
        cache.pin(3), cache.unpin(3)
        # The reservation held the budget line while the loader ran: LRU
        # entry 1 was already spilled, and reserved bytes were counted.
        assert during["bytes"] == 2 * 4096
        assert during["one_resident"] is False
        assert cache.resident_bytes() == 2 * 4096
        assert 2 in cache and 3 in cache

    def test_reservation_released_on_loader_failure(self):
        cache, _ = make_cache(capacity=4, capacity_bytes=4 * 4096)

        def failing(trigger_id):
            raise RuntimeError("catalog down")

        cache._loader = failing
        with pytest.raises(RuntimeError):
            cache.pin(9)
        assert cache.resident_bytes() == 0
        assert len(cache) == 0

    def test_reservation_reconciled_to_real_size(self):
        """Publish swaps the reserve for the measured size and feeds the
        moving average used for the next reservation."""
        cache, _ = make_cache(capacity=10, capacity_bytes=64 * 4096)

        def loader(trigger_id):
            return FakeRuntime(trigger_id, size=100)

        cache._loader = loader
        cache.pin(1), cache.unpin(1)
        assert cache.resident_bytes() == 100
        assert cache._avg_size < 4096  # average pulled toward reality

    def test_concurrent_distinct_misses_stay_inside_budget(self):
        """N slow concurrent loads of distinct triggers each hold a
        reservation, so their sum is visible against the budget while the
        loaders run (the pre-fix hole: all N were charged 0)."""
        gate = threading.Event()
        peak = []

        cache = TriggerCache(
            lambda tid: (gate.wait(5), FakeRuntime(tid))[1],
            capacity=100,
            capacity_bytes=8 * 4096,
            size_of=lambda r: r.size,
        )

        def worker(tid):
            cache.pin(tid)
            cache.unpin(tid)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        # All four placeholders installed (loaders parked on the gate).
        deadline = threading.Event()
        for _ in range(100):
            if len(cache) == 4:
                break
            deadline.wait(0.01)
        peak.append(cache.resident_bytes())
        gate.set()
        for t in threads:
            t.join()
        assert peak[0] == 4 * 4096  # reserves, not zeros, during the loads
        assert cache.resident_bytes() == 4 * 4096


class TestEvictionWithPinsAtByteLimit:
    def test_pinned_entries_survive_byte_pressure(self):
        cache, _ = make_cache(capacity=100, capacity_bytes=3 * 4096)
        cache.pin(1)  # stays pinned
        cache.pin(2)  # stays pinned
        cache.pin(3), cache.unpin(3)
        # 4 must evict the only unpinned entry (3), not a pinned one.
        cache.pin(4), cache.unpin(4)
        assert 1 in cache and 2 in cache
        assert 3 not in cache
        assert 4 in cache
        # All pinned: admission overcommits rather than failing.
        cache.pin(4)
        cache.pin(5)
        assert cache.resident_bytes() == 4 * 4096
        for tid in (1, 2, 4, 5):
            cache.unpin(tid)

    def test_unpin_restores_evictability_in_lru_order(self):
        cache, _ = make_cache(capacity=100, capacity_bytes=2 * 4096)
        cache.pin(1)
        cache.pin(2)
        cache.unpin(1)  # 1 is now the oldest unpinned entry
        cache.pin(3), cache.unpin(3)
        assert 1 not in cache
        assert 2 in cache and 3 in cache
        cache.unpin(2)


class TestLoadWaits:
    def test_concurrent_same_trigger_misses_wait_once(self):
        gate = threading.Event()
        loads = []

        def loader(tid):
            loads.append(tid)
            gate.wait(5)
            return FakeRuntime(tid)

        cache = TriggerCache(loader, capacity=8, size_of=lambda r: r.size)
        results = []

        def worker():
            runtime = cache.pin(7)
            results.append(runtime)
            cache.unpin(7)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads[0].start()
        while not loads:  # first miss owns the load
            pass
        for t in threads[1:]:
            t.start()
        while cache.stats.load_waits < 2:  # both followers parked
            pass
        gate.set()
        for t in threads:
            t.join()
        assert loads == [7]  # one catalog round-trip
        assert len({id(r) for r in results}) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2  # waiters re-examined and hit
        assert cache.stats.load_waits == 2
        assert cache.stats.pins == 3 and cache.stats.unpins == 3
        assert cache.current_pins() == 0


class TestInterning:
    def test_same_structure_interns_to_one_signature(self):
        # A dedicated source name keeps the count immune to signatures
        # other tests' (possibly still-running) engines intern.
        src = "memscale_emp"

        def analyzed(text):
            expr = parse_expression_text(text)
            return analyze_selection(src, "insert", [[expr]])

        a = analyzed(f"({src}.salary > 100)")
        b = analyzed(f"({src}.salary > 999)")
        assert a.signature is b.signature  # identity, not mere equality
        assert interned_signature_count(src) == 1

    def test_engine_entries_share_signature_objects(self):
        tman = TriggerMan.in_memory()
        scale.define_scale_sources(tman, sources=1)
        scale.create_scale_triggers(tman, 40, sources=1)
        for group in tman.index.groups():
            for _constants, entry in group.organization.entries():
                assert entry.signature is group.signature


class TestSpillRehydrate:
    def test_ledger_identical_under_tiny_and_huge_budgets(self):
        """The oracle check behind E18: an engine forced to spill and
        re-hydrate on nearly every pin fires byte-identically to an
        always-resident engine."""
        ledgers = {}
        stats = {}
        for label, cache_bytes in (("tiny", 16 * 1024), ("huge", 1 << 30)):
            tman = TriggerMan.in_memory(cache_bytes=cache_bytes)
            scale.define_scale_sources(tman)
            scale.create_scale_triggers(tman, 400)
            tokens = scale.scale_tokens(300, universe=400)
            ledgers[label] = scale.run_scale_ledger(tman, tokens)
            stats[label] = (
                tman.cache.stats.evictions,
                tman.runtimes.rehydrates,
                tman.runtimes.reparses,
            )
        assert ledgers["tiny"] == ledgers["huge"]
        assert len(ledgers["tiny"]) > 0
        evictions, rehydrates, reparses = stats["tiny"]
        assert evictions > 0  # the tiny budget actually spilled
        assert rehydrates > 0  # and loads came back via descriptions
        assert reparses == 0  # never through the text re-parse fallback

    def test_rehydrated_runtime_matches_created_one(self):
        tman = TriggerMan.in_memory()
        scale.define_scale_sources(tman)
        scale.create_scale_triggers(tman, 5)
        trigger_id = tman.catalog.trigger_id("sc0")
        first = tman.cache.pin(trigger_id)
        tman.cache.unpin(trigger_id)
        tman.cache.invalidate(trigger_id)
        again = tman.cache.pin(trigger_id)
        tman.cache.unpin(trigger_id)
        assert again is not first
        assert again.statement == first.statement
        assert again.name == first.name and again.text == first.text
        assert tman.runtimes.rehydrates >= 2

    def test_drop_trigger_removes_description(self):
        tman = TriggerMan.in_memory()
        scale.define_scale_sources(tman)
        scale.create_scale_triggers(tman, 3)
        assert tman.catalog.description_count() == 3
        tman.drop_trigger("sc1")
        assert tman.catalog.description_count() == 2
        with pytest.raises(TriggerError):
            tman.drop_trigger("sc1")

    def test_restore_rehydrates_from_descriptions(self, tmp_path):
        path = str(tmp_path / "scaledb")
        tman = TriggerMan.persistent(path)
        scale.define_scale_sources(tman)
        scale.create_scale_triggers(tman, 30)
        tman.flush()
        tman.close()
        reopened = TriggerMan.persistent(path)
        try:
            # Every trigger came back through its compact description.
            assert reopened.runtimes.rehydrates == 30
            assert reopened.runtimes.reparses == 0
            tokens = scale.scale_tokens(50, universe=30)
            ledger = scale.run_scale_ledger(reopened, tokens)
            assert len(ledger) > 0
        finally:
            reopened.close()
