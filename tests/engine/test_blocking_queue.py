"""TaskQueue's blocking idle path (§6): drivers wait on a condition
variable instead of spin-polling, are woken by new work or an explicit
kick, and the outstanding-work accounting that quiesce relies on."""

import threading
import time

from repro.engine.tasks import PROCESS_TOKEN, Task, TaskQueue
from repro.obs import Observability


def _noop_task(label="t"):
    return Task(PROCESS_TOKEN, lambda: 0, label=label)


class TestWaitForWork:
    def test_returns_true_when_work_already_queued(self):
        queue = TaskQueue()
        queue.put(_noop_task())
        assert queue.wait_for_work(timeout=0.01) is True

    def test_returns_false_on_timeout(self):
        queue = TaskQueue()
        start = time.perf_counter()
        assert queue.wait_for_work(timeout=0.05) is False
        assert time.perf_counter() - start >= 0.04

    def test_put_wakes_a_blocked_waiter(self):
        queue = TaskQueue()
        woke = threading.Event()

        def waiter():
            if queue.wait_for_work(timeout=5.0):
                woke.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        queue.put(_noop_task())
        assert woke.wait(2.0)
        t.join(2.0)

    def test_kick_wakes_waiters_without_work(self):
        queue = TaskQueue()
        results = []

        def waiter():
            results.append(queue.wait_for_work(timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        queue.kick()
        t.join(2.0)
        assert not t.is_alive()
        assert results == [False]  # woken, but no task appeared

    def test_wakeups_are_counted(self):
        queue = TaskQueue()
        before = queue.wakeups
        queue.wait_for_work(timeout=0.01)
        assert queue.wakeups == before + 1


class TestOutstandingAccounting:
    def test_outstanding_tracks_enqueued_minus_completed(self):
        queue = TaskQueue()
        assert queue.outstanding == 0
        queue.put(_noop_task())
        queue.put(_noop_task())
        assert queue.outstanding == 2
        task = queue.get()
        task.run()
        # Dequeued-but-unfinished work still counts as outstanding.
        assert queue.outstanding == 2
        queue.mark_done()
        assert queue.outstanding == 1
        queue.get().run()
        queue.mark_done()
        assert queue.outstanding == 0

    def test_obs_gauges_include_wakeups_and_outstanding(self):
        queue = TaskQueue()
        obs = Observability(enable_metrics=True)
        queue.attach_obs(obs)
        queue.put(_noop_task())
        snapshot = obs.metrics.snapshot()
        assert snapshot["tasks.outstanding"] == 1
        assert "tasks.wakeups" in snapshot
        queue.get()
        queue.mark_done()
        assert obs.metrics.snapshot()["tasks.outstanding"] == 0


class TestConcurrentConsumers:
    def test_many_producers_many_consumers_drain_exactly(self):
        queue = TaskQueue()
        executed = []
        lock = threading.Lock()
        total = 200

        def make(i):
            def run():
                with lock:
                    executed.append(i)
            return Task(PROCESS_TOKEN, run, label=f"t{i}")

        stop = threading.Event()

        def consumer():
            while not stop.is_set():
                if not queue.wait_for_work(timeout=0.05):
                    continue
                task = queue.get()
                if task is None:
                    continue
                try:
                    task.run()
                finally:
                    queue.mark_done()

        consumers = [threading.Thread(target=consumer) for _ in range(4)]
        for t in consumers:
            t.start()
        for i in range(total):
            queue.put(make(i))
        deadline = time.time() + 10
        while queue.outstanding and time.time() < deadline:
            time.sleep(0.005)
        stop.set()
        queue.kick()
        for t in consumers:
            t.join(2.0)
        assert sorted(executed) == list(range(total))
        assert queue.outstanding == 0
