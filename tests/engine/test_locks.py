"""The engine's concurrency primitives (engine/locks.py): atomic counters,
timed mutexes, read-write locks with writer preference, and shards."""

import threading
import time

from repro.engine.locks import (
    AtomicCounter,
    ReadWriteLock,
    ShardedRWLock,
    TimedLock,
)
from repro.obs.metrics import MetricsRegistry


def _run_all(threads):
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestAtomicCounter:
    def test_inc_dec_value(self):
        counter = AtomicCounter()
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.dec() == 4
        assert counter.value == 4
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_are_not_lost(self):
        counter = AtomicCounter()
        per_thread = 10_000

        def bump():
            for _ in range(per_thread):
                counter.inc()

        _run_all([threading.Thread(target=bump) for _ in range(8)])
        assert counter.value == 8 * per_thread


class TestTimedLock:
    def test_reentrant(self):
        lock = TimedLock()
        with lock:
            with lock:
                pass  # no deadlock

    def test_mutual_exclusion(self):
        lock = TimedLock()
        state = {"inside": 0, "max": 0}

        def worker():
            for _ in range(200):
                with lock:
                    state["inside"] += 1
                    state["max"] = max(state["max"], state["inside"])
                    state["inside"] -= 1

        _run_all([threading.Thread(target=worker) for _ in range(4)])
        assert state["max"] == 1

    def test_blocking_acquire_feeds_histogram(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lock.wait_ns")
        lock = TimedLock(hist)
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(2.0)

        t = threading.Thread(target=holder)
        t.start()
        entered.wait(2.0)

        def wait_for_lock():
            with lock:
                pass

        waiter = threading.Thread(target=wait_for_lock)
        waiter.start()
        time.sleep(0.02)
        release.set()
        waiter.join(2.0)
        t.join(2.0)
        assert hist.count == 1
        assert hist.min > 0

    def test_uncontended_acquire_records_nothing(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lock.wait_ns")
        lock = TimedLock(hist)
        with lock:
            pass
        assert hist.count == 0


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = AtomicCounter()
        peak = {"max": 0}
        gate = threading.Barrier(4)

        def reader():
            gate.wait(2.0)
            with lock.read():
                n = inside.inc()
                peak["max"] = max(peak["max"], n)
                time.sleep(0.02)
                inside.dec()

        _run_all([threading.Thread(target=reader) for _ in range(4)])
        assert peak["max"] > 1  # readers genuinely overlapped

    def test_writer_excludes_everyone(self):
        lock = ReadWriteLock()
        log = []

        def writer():
            with lock.write():
                log.append("w-in")
                time.sleep(0.02)
                log.append("w-out")

        def reader():
            with lock.read():
                log.append("r")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        _run_all(threads)
        start = log.index("w-in")
        assert log[start + 1] == "w-out"  # nothing interleaved the writer

    def test_writer_preference_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_done = threading.Event()
        reader_done = threading.Event()

        threading.Thread(
            target=lambda: (lock.acquire_write(), writer_done.set())
        ).start()
        time.sleep(0.02)  # let the writer queue up

        threading.Thread(
            target=lambda: (
                lock.acquire_read(),
                reader_done.set(),
                lock.release_read(),
            )
        ).start()
        time.sleep(0.02)
        # The late reader must wait behind the queued writer.
        assert not reader_done.is_set()
        assert not writer_done.is_set()

        lock.release_read()
        assert writer_done.wait(2.0)
        assert not reader_done.is_set()
        lock.release_write()
        assert reader_done.wait(2.0)

    def test_blocked_reader_feeds_histogram(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("index.lock_wait_ns")
        lock = ReadWriteLock(hist)
        lock.acquire_write()
        done = threading.Event()
        t = threading.Thread(
            target=lambda: (lock.acquire_read(), done.set())
        )
        t.start()
        time.sleep(0.02)
        lock.release_write()
        assert done.wait(2.0)
        lock.release_read()
        assert hist.count == 1


class TestShardedRWLock:
    def test_shards_are_independent(self):
        sharded = ShardedRWLock()
        with sharded.write("a"):
            # A write lock on shard "a" must not block shard "b" readers.
            acquired = threading.Event()
            t = threading.Thread(
                target=lambda: (
                    sharded.read("b").__enter__(),
                    acquired.set(),
                )
            )
            t.start()
            assert acquired.wait(2.0)

    def test_same_shard_same_lock(self):
        sharded = ShardedRWLock()
        assert sharded.shard("x") is sharded.shard("x")
        assert sharded.shard("x") is not sharded.shard("y")

    def test_attach_hist_rebinds_existing_shards(self):
        sharded = ShardedRWLock()
        shard = sharded.shard("x")
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("h")
        sharded.attach_hist(hist)
        assert shard.hist is hist
        assert sharded.shard("new").hist is hist
