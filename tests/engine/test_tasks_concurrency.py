"""Unit tests for the task queue, TmanTest, drivers, partitioning, and the
deterministic concurrency simulator."""

import time

import pytest

from repro.engine.concurrency import (
    SimulatedScheduler,
    partition_round_robin,
    simulate_response_time,
)
from repro.engine.tasks import (
    TASK_QUEUE_EMPTY,
    TASKS_REMAINING,
    Driver,
    Task,
    TaskQueue,
    compute_driver_count,
    tman_test,
)
from repro.errors import ConcurrencyError


class TestTaskQueue:
    def test_fifo(self):
        queue = TaskQueue()
        order = []
        for i in range(3):
            queue.put(Task("process_token", lambda i=i: order.append(i)))
        while (task := queue.get()) is not None:
            task.run()
        assert order == [0, 1, 2]
        assert queue.enqueued == 3
        assert queue.executed == 3


class TestTmanTest:
    def test_empty_queue(self):
        assert tman_test(TaskQueue()) == TASK_QUEUE_EMPTY

    def test_runs_until_empty(self):
        queue = TaskQueue()
        done = []
        for i in range(5):
            queue.put(Task("t", lambda i=i: done.append(i)))
        assert tman_test(queue) == TASK_QUEUE_EMPTY
        assert done == list(range(5))

    def test_threshold_stops_early(self):
        queue = TaskQueue()
        # fake clock advancing 0.1 per call
        ticks = iter(i * 0.1 for i in range(1000))

        def clock():
            return next(ticks)

        for i in range(100):
            queue.put(Task("t", lambda: None))
        status = tman_test(queue, threshold=0.25, clock=clock)
        assert status == TASKS_REMAINING
        assert len(queue) > 0

    def test_refill_extends_work(self):
        queue = TaskQueue()
        fed = []
        budget = [3]

        def refill():
            if budget[0] == 0:
                return False
            budget[0] -= 1
            queue.put(Task("t", lambda: fed.append(1)))
            return True

        assert tman_test(queue, refill=refill) == TASK_QUEUE_EMPTY
        assert len(fed) == 3

    def test_yield_called_between_tasks(self):
        queue = TaskQueue()
        yields = []
        queue.put(Task("t", lambda: None))
        queue.put(Task("t", lambda: None))
        tman_test(queue, yield_fn=lambda: yields.append(1))
        assert len(yields) == 2


class TestDriverThread:
    def test_driver_drains_queue(self):
        queue = TaskQueue()
        done = []
        for i in range(20):
            queue.put(Task("t", lambda i=i: done.append(i)))
        driver = Driver(queue, poll_period=0.01)
        driver.start()
        deadline = time.time() + 5
        while len(done) < 20 and time.time() < deadline:
            time.sleep(0.01)
        driver.stop()
        assert len(done) == 20

    def test_multiple_drivers_no_duplication(self):
        queue = TaskQueue()
        done = []
        for i in range(200):
            queue.put(Task("t", lambda i=i: done.append(i)))
        drivers = [Driver(queue, poll_period=0.005) for _ in range(4)]
        for driver in drivers:
            driver.start()
        deadline = time.time() + 5
        while len(done) < 200 and time.time() < deadline:
            time.sleep(0.01)
        for driver in drivers:
            driver.stop()
        assert sorted(done) == list(range(200))


class TestDriverCount:
    def test_formula(self):
        assert compute_driver_count(8, 1.0) == 8
        assert compute_driver_count(8, 0.5) == 4
        assert compute_driver_count(8, 0.1) == 1
        assert compute_driver_count(3, 0.5) == 2  # ceil

    def test_range_validated(self):
        with pytest.raises(ValueError):
            compute_driver_count(4, 0.0)
        with pytest.raises(ValueError):
            compute_driver_count(4, 1.5)


class TestPartitioning:
    def test_round_robin(self):
        parts = partition_round_robin(list(range(10)), 3)
        assert parts == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_sizes_balanced(self):
        parts = partition_round_robin(list(range(100)), 7)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_count(self):
        with pytest.raises(ConcurrencyError):
            partition_round_robin([1], 0)


class TestSimulatedScheduler:
    def test_serial_equals_sum(self):
        scheduler = SimulatedScheduler(1)
        result = scheduler.run([1.0, 2.0, 3.0])
        assert result.makespan == pytest.approx(6.0)

    def test_perfect_speedup_uniform_tasks(self):
        scheduler = SimulatedScheduler(4)
        result = scheduler.run([1.0] * 16)
        assert result.makespan == pytest.approx(4.0)
        assert result.utilization == pytest.approx(1.0)

    def test_speedup_bounded_by_longest_task(self):
        scheduler = SimulatedScheduler(8)
        result = scheduler.run([10.0] + [0.1] * 10)
        assert result.makespan == pytest.approx(10.0)

    def test_speedup_over_serial(self):
        scheduler = SimulatedScheduler(4)
        speedup = scheduler.speedup_over_serial([1.0] * 100)
        assert speedup == pytest.approx(4.0)

    def test_dispatch_overhead_counted(self):
        direct = SimulatedScheduler(1).run([1.0] * 4).makespan
        with_overhead = (
            SimulatedScheduler(1, dispatch_overhead=0.5).run([1.0] * 4).makespan
        )
        assert with_overhead == pytest.approx(direct + 2.0)

    def test_empty(self):
        assert SimulatedScheduler(2).run([]).makespan == 0.0

    def test_invalid_driver_count(self):
        with pytest.raises(ConcurrencyError):
            SimulatedScheduler(0)


class TestResponseTimeModel:
    def test_polling_adds_latency(self):
        arrivals = [0.01] * 10
        costs = [0.001] * 10
        fast_mean, _ = simulate_response_time(
            arrivals, costs, drivers=1, poll_period=0.05
        )
        slow_mean, _ = simulate_response_time(
            arrivals, costs, drivers=1, poll_period=1.0
        )
        assert slow_mean > fast_mean

    def test_more_drivers_reduce_response(self):
        arrivals = [0.0] * 20
        costs = [0.1] * 20
        single, _ = simulate_response_time(arrivals, costs, drivers=1)
        quad, _ = simulate_response_time(arrivals, costs, drivers=4)
        assert quad < single

    def test_mismatched_lengths(self):
        with pytest.raises(ConcurrencyError):
            simulate_response_time([0.0], [], drivers=1)
