"""DriverPool (§6): N real threads looping TmanTest() against one engine.

These tests exercise the pool lifecycle (start/stop/context manager), the
facade integration (start_drivers/stop_drivers, double-start protection),
quiesce, observability gauges, and concurrent DDL against live drivers.
"""

import pytest

from repro.engine import DriverPool, TriggerMan
from repro.engine.tasks import compute_driver_count
from repro.errors import TriggerError


def build(triggers=10, observability=False):
    tman = TriggerMan.in_memory(observability=observability)
    tman.define_table("emp", [("name", "varchar(40)"), ("salary", "float")])
    for i in range(triggers):
        tman.create_trigger(
            f"create trigger t{i} from emp on insert "
            f"when emp.salary > {i * 100} do raise event E(emp.name)"
        )
    return tman


def feed(tman, tokens, salary=5_000.0):
    for i in range(tokens):
        tman.insert("emp", {"name": f"e{i}", "salary": salary})


class TestComputeDriverCount:
    def test_paper_formula(self):
        # N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL), §6
        assert compute_driver_count(4, 1.0) == 4
        assert compute_driver_count(4, 0.5) == 2
        assert compute_driver_count(3, 0.5) == 2  # ceil
        assert compute_driver_count(1, 0.1) == 1

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            compute_driver_count(4, 0.0)
        with pytest.raises(ValueError):
            compute_driver_count(4, 1.5)


class TestDriverPool:
    def test_pool_drains_tokens_and_quiesces(self):
        tman = build(triggers=10)
        tokens = 40
        with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
            feed(tman, tokens)
            assert pool.quiesce(timeout=15.0)
            assert pool.errors == []
        # salary 5000 beats every `salary > i*100` predicate for i in 0..9
        assert tman.stats.tokens_processed == tokens
        assert tman.stats.triggers_fired == tokens * 10
        assert tman.stats.actions_executed == tokens * 10
        assert len(tman.queue) == 0
        assert tman.tasks.outstanding == 0
        tman.close()

    def test_pool_rejects_zero_drivers(self):
        tman = build(triggers=0)
        with pytest.raises(ValueError):
            DriverPool(tman, 0)
        tman.close()

    def test_stop_is_idempotent(self):
        tman = build(triggers=1)
        pool = DriverPool(tman, 2, poll_period=0.005)
        pool.start()
        assert pool.running == 2
        pool.stop()
        assert pool.running == 0
        pool.stop()  # second stop is a no-op
        tman.close()

    def test_work_arriving_while_idle_gets_processed(self):
        tman = build(triggers=3)
        with DriverPool(tman, 2, threshold=0.05, poll_period=0.02) as pool:
            # Let the drivers go idle first, then feed.
            assert pool.quiesce(timeout=5.0)
            feed(tman, 5)
            assert pool.quiesce(timeout=15.0)
        assert tman.stats.tokens_processed == 5
        assert tman.stats.triggers_fired == 15
        tman.close()


class TestFacadeIntegration:
    def test_start_and_stop_drivers(self):
        tman = build(triggers=5)
        pool = tman.start_drivers(2, threshold=0.05, poll_period=0.005)
        assert tman.driver_pool is pool
        feed(tman, 10)
        assert pool.quiesce(timeout=15.0)
        stopped = tman.stop_drivers()
        assert stopped is pool
        assert tman.driver_pool is None
        assert tman.stats.tokens_processed == 10
        tman.close()

    def test_double_start_raises(self):
        tman = build(triggers=1)
        tman.start_drivers(1, poll_period=0.005)
        with pytest.raises(TriggerError):
            tman.start_drivers(1)
        tman.stop_drivers()
        tman.close()

    def test_close_stops_the_pool(self):
        tman = build(triggers=1)
        pool = tman.start_drivers(2, poll_period=0.005)
        tman.close()
        assert pool.running == 0

    def test_obs_gauges(self):
        tman = build(triggers=2, observability=True)
        pool = tman.start_drivers(2, threshold=0.05, poll_period=0.005)
        feed(tman, 4)
        assert pool.quiesce(timeout=15.0)
        snapshot = tman.obs.metrics.snapshot()
        assert snapshot["drivers.count"] == 2
        assert snapshot["drivers.calls"] >= 1
        assert "drivers.idle_waits" in snapshot
        tman.stop_drivers()
        tman.close()


class TestConcurrentDDL:
    def test_create_and_drop_while_drivers_run(self):
        """DDL races token processing: publish-last creation and
        unpublish-first drop must keep every layer consistent."""
        tman = build(triggers=4)
        with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
            for round_no in range(5):
                name = f"churn{round_no}"
                tman.create_trigger(
                    f"create trigger {name} from emp on insert "
                    "when emp.salary > 1000000000 do raise event X(emp.name)"
                )
                feed(tman, 4)
                tman.drop_trigger(name)
            assert pool.quiesce(timeout=20.0)
            assert pool.errors == []
        assert tman.stats.tokens_processed == 20
        # The churn trigger never matches; the 4 stable ones always do.
        assert tman.stats.triggers_fired == 20 * 4
        assert len(tman.queue) == 0
        assert not tman.actions.failures
        tman.close()
