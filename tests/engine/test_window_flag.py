"""Tests for the ``window N`` trigger flag: bounded per-group aggregate
state (the §9 scalable-aggregates extension point)."""

import pytest

from repro.errors import ParseError, TriggerError
from repro.lang.parser import parse_command


def fired(tman, name):
    return [n.args for n in tman.events.history if n.event_name == name]


class TestParsing:
    def test_window_flag(self):
        cmd = parse_command(
            "create trigger t window 100 from emp "
            "having count(*) > 5 do raise event E"
        )
        assert "WINDOW:100" in cmd.flags

    def test_window_combines_with_disabled(self):
        cmd = parse_command(
            "create trigger t disabled window 10 from emp "
            "having count(*) > 2 do raise event E"
        )
        assert cmd.flags == ("DISABLED", "WINDOW:10")

    def test_window_requires_integer(self):
        with pytest.raises(ParseError):
            parse_command(
                "create trigger t window lots from emp do raise event E"
            )
        with pytest.raises(ParseError):
            parse_command(
                "create trigger t window 2.5 from emp do raise event E"
            )


class TestSemantics:
    def test_window_bounds_group_state(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger recent window 3 from emp on insert "
            "group by emp.dept having avg(emp.salary) > 100 "
            "do raise event Hot(emp.dept)"
        )
        # three cheap hires: avg stays low
        for i in range(3):
            tman_emp.insert(
                "emp", {"name": f"a{i}", "salary": 10.0, "dept": "toys"}
            )
        tman_emp.process_all()
        assert fired(tman_emp, "Hot") == []
        # three expensive hires: the window forgets the cheap ones, so the
        # average over the last 3 crosses the threshold
        for i in range(3):
            tman_emp.insert(
                "emp", {"name": f"b{i}", "salary": 500.0, "dept": "toys"}
            )
        tman_emp.process_all()
        assert ("toys",) in fired(tman_emp, "Hot")
        runtime = tman_emp.triggers()[0]
        assert all(len(g) <= 3 for g in runtime.group_state.values())

    def test_unwindowed_state_accumulates(self, tman_emp):
        tman_emp.create_trigger(
            "create trigger total from emp on insert "
            "group by emp.dept having count(*) >= 4 "
            "do raise event Big(emp.dept)"
        )
        for i in range(4):
            tman_emp.insert(
                "emp", {"name": f"x{i}", "salary": 1.0, "dept": "d"}
            )
        tman_emp.process_all()
        assert fired(tman_emp, "Big") == [("d",)]

    def test_zero_window_rejected(self, tman_emp):
        with pytest.raises(TriggerError):
            tman_emp.create_trigger(
                "create trigger t window 0 from emp "
                "having count(*) > 1 do raise event E"
            )
