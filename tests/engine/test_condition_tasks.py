"""Tests for §6's condition-level concurrency: type-3 tasks over signature
group subsets must produce exactly the firings of whole-token processing."""

import pytest

from repro.engine.descriptors import Operation, UpdateDescriptor
from repro.engine.triggerman import TriggerMan


def build(n_per_signature=20):
    tman = TriggerMan.in_memory()
    tman.define_table(
        "emp",
        [("name", "varchar(40)"), ("salary", "float"), ("dept", "varchar(20)")],
    )
    for i in range(n_per_signature):
        tman.create_trigger(
            f"create trigger gt{i} from emp on insert "
            f"when emp.salary > {i * 10} do raise event Fired(emp.name)"
        )
        tman.create_trigger(
            f"create trigger eq{i} from emp on insert "
            f"when emp.name = 'user{i}' do raise event Fired(emp.name)"
        )
        tman.create_trigger(
            f"create trigger dep{i} from emp on insert "
            f"when emp.dept = 'd{i % 4}' and emp.salary < {500 - i} "
            f"do raise event Fired(emp.name)"
        )
    return tman


TOKEN = {"name": "user3", "salary": 105.0, "dept": "d2"}


def firings(tman):
    return sorted(
        n.trigger_name for n in tman.events.history if n.event_name == "Fired"
    )


def test_partitioned_equals_whole_token():
    whole = build()
    whole.insert("emp", TOKEN)
    whole.process_all()
    expected = firings(whole)
    assert expected  # sanity: something fires

    for partitions in (1, 2, 3, 8):
        part = build()
        descriptor = UpdateDescriptor(
            "emp", Operation.INSERT, new=dict(TOKEN)
        )
        tasks = part.enqueue_condition_tasks(descriptor, partitions)
        assert tasks == min(partitions, part.index.signature_count())
        part._run_pending_tasks()
        assert firings(part) == expected, partitions


def test_partitioned_tasks_under_drivers():
    import time

    from repro.engine.tasks import Driver

    tman = build()
    reference = build()
    reference.insert("emp", TOKEN)
    reference.process_all()
    expected = firings(reference)

    descriptor = UpdateDescriptor("emp", Operation.INSERT, new=dict(TOKEN))
    tman.enqueue_condition_tasks(descriptor, 3)
    drivers = [Driver(tman.tasks, poll_period=0.005) for _ in range(3)]
    for driver in drivers:
        driver.start()
    deadline = time.time() + 10
    while firings(tman) != expected and time.time() < deadline:
        time.sleep(0.01)
    for driver in drivers:
        driver.stop()
    assert firings(tman) == expected


def test_no_groups_no_tasks(tman_emp):
    descriptor = UpdateDescriptor("nowhere", Operation.INSERT, new={})
    assert tman_emp.enqueue_condition_tasks(descriptor, 4) == 0


def test_maintenance_runs_once_after_all_subsets():
    """Gator memories must be maintained exactly once per token even when
    condition testing is partitioned."""
    tman = TriggerMan.in_memory(network_type="gator")
    tman.define_table("a", [("k", "integer")])
    tman.define_table("b", [("k", "integer")])
    tman.insert("b", {"k": 1})
    tman.process_all()
    tman.create_trigger(
        "create trigger j from a, b when a.k = b.k do raise event J(a.k)"
    )
    # delete b's row via a partitioned token; memory must be retracted
    old = {"k": 1}
    tman.table("b").delete(next(rid for rid, _ in tman.table("b").scan()))
    descriptor = tman.queue.dequeue()
    assert descriptor.operation == Operation.DELETE
    tman.enqueue_condition_tasks(descriptor, 4)
    tman._run_pending_tasks()
    tman.insert("a", {"k": 1})
    tman.process_all()
    assert not [n for n in tman.events.history if n.event_name == "J"]
