"""End-to-end tests for tagged-execution disjunct decomposition: index-arm
matching, per-token dedupe, churn hygiene, and differential equivalence
against the interpreter oracle."""

import os
import random

import pytest

from repro.condition.cnf import to_cnf
from repro.engine.triggerman import TriggerMan
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse
from repro.predindex import entry as predindex_entry

EMP_COLUMNS = [
    ("eno", "integer"),
    ("name", "varchar(40)"),
    ("salary", "float"),
    ("dept", "varchar(20)"),
    ("age", "integer"),
]


def make_tman(**kwargs):
    tman = TriggerMan.in_memory(**kwargs)
    tman.define_table("emp", EMP_COLUMNS)
    return tman


def firings(tman):
    """Multiset of (event_name, args) — one element per ACTION_FIRED."""
    return sorted((n.event_name, n.args) for n in tman.events.history)


class TestDecomposedMatching:
    def test_or_fires_through_index_arms(self):
        tman = make_tman()
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when emp.dept = 'toys' or emp.name = 'bob' "
            "do raise event Hit(emp.eno)"
        )
        # two arm entries under equality groups, no residual-scan group
        assert tman.index.entry_count() == 2
        tman.insert("emp", {"eno": 1, "dept": "toys", "name": "x"})
        tman.insert("emp", {"eno": 2, "dept": "eng", "name": "bob"})
        tman.insert("emp", {"eno": 3, "dept": "eng", "name": "x"})
        tman.process_all()
        assert firings(tman) == [("Hit", (1,)), ("Hit", (2,))]
        assert tman.index.stats.or_arm_hits == 2

    def test_token_matching_both_arms_fires_once(self):
        tman = make_tman()
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when emp.dept = 'toys' or emp.name = 'bob' "
            "do raise event Hit(emp.eno)"
        )
        tman.insert("emp", {"eno": 7, "dept": "toys", "name": "bob"})
        tman.process_all()
        assert firings(tman) == [("Hit", (7,))]
        assert tman.index.stats.or_arm_dedups >= 1

    def test_arm_residual_still_applies(self):
        tman = make_tman()
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when (emp.dept = 'toys' or emp.name = 'bob') "
            "and emp.salary > 100 do raise event Hit(emp.eno)"
        )
        tman.insert("emp", {"eno": 1, "dept": "toys", "salary": 50.0})
        tman.insert("emp", {"eno": 2, "dept": "toys", "salary": 500.0})
        tman.process_all()
        assert firings(tman) == [("Hit", (2,))]

    def test_escape_hatch_disables_decomposition(self):
        tman = make_tman(decompose_disjuncts=False)
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when emp.dept = 'toys' or emp.name = 'bob' "
            "do raise event Hit(emp.eno)"
        )
        assert tman.index.entry_count() == 1
        tman.insert("emp", {"eno": 1, "dept": "toys"})
        tman.process_all()
        assert firings(tman) == [("Hit", (1,))]
        assert tman.index.stats.or_arm_hits == 0

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("TMAN_DECOMPOSE", "off")
        tman = make_tman()
        assert tman.decompose_disjuncts is False

    def test_drop_removes_every_arm(self):
        tman = make_tman()
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when emp.dept = 'toys' or emp.name = 'bob' "
            "do raise event Hit(emp.eno)"
        )
        tman.drop_trigger("t")
        assert tman.index.entry_count() == 0
        tman.insert("emp", {"eno": 1, "dept": "toys", "name": "bob"})
        tman.process_all()
        assert firings(tman) == []


class TestChurnHygiene:
    """Create/drop cycles must not leak signature groups or cache entries.

    CHURN_CYCLES scales the loop for the CI memory-scale job (10k); the
    tier-1 default keeps the test fast while still catching any monotonic
    growth."""

    CYCLES = int(os.environ.get("CHURN_CYCLES", "300"))

    def test_churn_holds_groups_and_caches_flat(self):
        tman = make_tman()
        # Unique constants per cycle: without eviction each cycle leaves a
        # new compiled matcher; without pruning each distinct residual
        # shape leaves a group.
        def cycle(i):
            tman.create_trigger(
                f"create trigger churn{i} from emp on insert "
                f"when (emp.dept = 'd{i}' or emp.name = 'n{i}') "
                f"and emp.salary like '%{i}%' do raise event E"
            )
            tman.drop_trigger(f"churn{i}")

        cycle(0)  # warm shared caches
        groups = tman.index.signature_count()
        entries = tman.index.entry_count()
        cache = predindex_entry.compiled_cache_entries()
        for i in range(1, self.CYCLES):
            cycle(i)
        assert tman.index.signature_count() == groups
        assert tman.index.entry_count() == entries
        assert predindex_entry.compiled_cache_entries() <= cache
        assert tman.index.stats.groups_pruned >= self.CYCLES - 1

    def test_pruned_group_reregisters_cleanly(self):
        tman = make_tman()
        for _ in range(3):
            tman.create_trigger(
                "create trigger t from emp on insert "
                "when emp.dept = 'toys' or emp.name = 'bob' "
                "do raise event Hit(emp.eno)"
            )
            tman.insert("emp", {"eno": 1, "dept": "toys"})
            tman.process_all()
            tman.drop_trigger("t")
        assert firings(tman) == [("Hit", (1,))] * 3


# -- differential fuzzer ------------------------------------------------------

_DEPTS = ["'toys'", "'eng'", "'shoes'", "'hats'"]
_NAMES = ["'ann'", "'bob'", "'cat'"]


def _atom(rng):
    pick = rng.randrange(6)
    if pick == 0:
        return f"emp.dept = {rng.choice(_DEPTS)}"
    if pick == 1:
        return f"emp.name = {rng.choice(_NAMES)}"
    if pick == 2:
        op = rng.choice(["<", ">", "<=", ">=", "=", "<>"])
        return f"emp.eno {op} {rng.randrange(8)}"
    if pick == 3:
        lo = rng.randrange(50)
        return f"emp.age between {lo} and {lo + rng.randrange(20)}"
    if pick == 4:
        picks = rng.sample(_DEPTS, 2)
        return f"emp.dept in ({picks[0]}, {picks[1]})"
    return f"emp.salary > {rng.randrange(200)}"


def _predicate(rng, depth=2):
    if depth == 0 or rng.random() < 0.35:
        return _atom(rng)
    shape = rng.randrange(3)
    if shape == 0:
        return f"not ({_predicate(rng, depth - 1)})"
    op = "and" if shape == 1 else "or"
    return (
        f"({_predicate(rng, depth - 1)}) {op} "
        f"({_predicate(rng, depth - 1)})"
    )


def _row(rng):
    maybe_null = lambda v: None if rng.random() < 0.15 else v
    return {
        "eno": rng.randrange(100),
        "name": maybe_null(rng.choice(_NAMES).strip("'")),
        "salary": maybe_null(float(rng.randrange(200))),
        "dept": maybe_null(rng.choice(_DEPTS).strip("'")),
        "age": maybe_null(rng.randrange(80)),
    }


class TestDifferentialFuzzer:
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_decomposed_matches_interpreter_oracle(self, seed):
        rng = random.Random(seed)
        predicates = [_predicate(rng) for _ in range(12)]
        rows = [_row(rng) for _ in range(40)]

        decomposed = make_tman(decompose_disjuncts=True)
        baseline = make_tman(decompose_disjuncts=False)
        for tman in (decomposed, baseline):
            for i, text in enumerate(predicates):
                tman.create_trigger(
                    f"create trigger f{i} from emp on insert "
                    f"when {text} do raise event P{i}(emp.eno)"
                )
        for row in rows:
            decomposed.insert("emp", dict(row))
            baseline.insert("emp", dict(row))
        decomposed.process_all()
        baseline.process_all()

        # ledger equivalence: decomposition on/off fire identically
        assert firings(decomposed) == firings(baseline)

        # interpreter oracle: three-valued logic, no duplicate firings
        evaluator = Evaluator()
        expected = []
        for i, text in enumerate(predicates):
            expr = parse(text)
            to_cnf(expr)  # same normalization path must accept it
            for row in rows:
                if evaluator.matches(expr, Bindings(rows={"emp": row})):
                    expected.append((f"P{i}", (row["eno"],)))
        assert firings(decomposed) == sorted(expected)
