"""Acceptance: seeded multi-driver stress with a durable firing ledger.

A 4-thread :class:`DriverPool` processes tokens while other threads churn
DDL (create/drop) against the same engine; the cumulative firing ledger —
folded from durable ACTION_FIRED records keyed by ``(seq, idx)`` — must
equal, as a multiset of ``(trigger, digest)``, what a single-threaded
oracle engine produces from the same updates.  A second variant keeps the
WAL crash-loop fault injector armed while the pool runs: drivers die at
randomized crash points, the machine reboots and recovers, and the ledger
must still reconcile exactly.

Seeds come from ``THREAD_STRESS_SEED`` (default 1999) so CI can sweep a
matrix; ``THREAD_STRESS_CRASHES`` scales the crash variant.
"""

import json
import os
import random
import threading
import time

from collections import Counter

from repro.engine.descriptors import Operation
from repro.engine.drivers import DriverPool
from repro.engine.triggerman import TriggerMan
from repro.sql.database import Database
from repro.wal import SimDisk, SimulatedCrash, WriteAheadLog
from repro.wal.log import ACTION_FIRED, TOKEN_DEQUEUE

SEED = int(os.environ.get("THREAD_STRESS_SEED", "1999"))
TARGET_CRASHES = int(os.environ.get("THREAD_STRESS_CRASHES", "10"))

TRIGGERS = [
    "create trigger high from s when s.v > 50 do raise event High(s.k)",
    "create trigger low from s when s.v < 50 do raise event Low(s.k)",
    "create trigger seen from s do raise event Seen(s.k, s.v)",
]

#: fault sites armed while the pool runs (site, max randomized hit count)
SITES = [
    ("wal.append", 6),
    ("wal.sync", 3),
    ("disk.log_append", 6),
    ("queue.enqueue", 3),
    ("queue.dequeue", 3),
    ("engine.fire", 3),
    ("engine.action", 3),
    ("engine.token_done", 2),
]

#: a churn trigger's predicate can never match (v is 0..99)
CHURN_PREDICATE = "s.v > 1000000000"


def _open_engine(disk, sync="always"):
    wal = WriteAheadLog(disk.log, sync=sync, faults=disk.faults)
    database = Database(
        path=None,
        wal=wal,
        pager_factory=disk.pager_factory,
        catalog_store=disk.catalog,
        faults=disk.faults,
    )
    return TriggerMan(database)


def _boot(disk, sync="always"):
    tman = _open_engine(disk, sync=sync)
    if "s" not in tman.registry:
        tman.define_stream("s", [("k", "integer"), ("v", "integer")])
        for text in TRIGGERS:
            tman.create_trigger(text)
    return tman


def _accept(payload, accepted):
    new = json.loads(payload).get("new") or {}
    if "k" in new:
        accepted[new["k"]] = new["v"]


def _scan(tman, ledger, accepted):
    """Fold one incarnation's durable evidence into the cumulative caches
    (same protocol as tests/wal/test_crash_loop.py)."""
    for record in tman.catalog_db.wal.scan():
        if record.rtype == ACTION_FIRED:
            body = record.json()
            ledger[(body["seq"], body["idx"])] = (body["trigger"], body["digest"])
        elif record.rtype == TOKEN_DEQUEUE:
            _accept(record.json()["payload"], accepted)
    for _rid, row in tman.queue.table.scan():
        _accept(row[3], accepted)
    for token in tman._replay:
        _accept(token.payload, accepted)


def _oracle_ledger(accepted):
    """A single-threaded engine that never crashes processes exactly the
    accepted updates, in key order; returns its firing ledger."""
    oracle = _boot(SimDisk())
    for k in sorted(accepted):
        oracle.push("s", Operation.INSERT, new={"k": k, "v": accepted[k]})
    oracle.process_all()
    ledger = {}
    _scan(oracle, ledger, {})
    return ledger


def test_concurrent_ddl_stress_matches_oracle():
    """Producers + DDL churn + a 4-driver pool, no faults: the durable
    firing ledger equals the single-threaded oracle's exactly."""
    rng = random.Random(SEED)
    disk = SimDisk()
    tman = _boot(disk)
    per_producer = 30
    values = [
        [rng.randrange(100) for _ in range(per_producer)] for _ in range(2)
    ]

    def producer(pid):
        base = pid * per_producer
        for i, v in enumerate(values[pid]):
            tman.push("s", Operation.INSERT, new={"k": base + i, "v": v})

    def churner(cid):
        for round_no in range(6):
            name = f"churn_{cid}_{round_no}"
            tman.create_trigger(
                f"create trigger {name} from s when {CHURN_PREDICATE} "
                f"do raise event X(s.k)"
            )
            time.sleep(0.002)
            tman.drop_trigger(name)

    with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
        threads = [threading.Thread(target=producer, args=(p,)) for p in (0, 1)]
        threads += [threading.Thread(target=churner, args=(c,)) for c in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert pool.quiesce(timeout=30.0)
        assert pool.errors == []

    ledger, accepted = {}, {}
    _scan(tman, ledger, accepted)
    assert len(accepted) == 2 * per_producer
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay
    assert Counter(ledger.values()) == Counter(_oracle_ledger(accepted).values())
    # Only the three stable triggers ever fire; churn triggers never match.
    assert {t for t, _ in ledger.values()} <= {"high", "low", "seen"}


def test_crash_loop_stress_matches_oracle():
    """The same pool with the WAL fault injector armed: a driver (or the
    producer) dies at a randomized crash point, the machine reboots and
    recovers, and the cumulative ledger still reconciles to the oracle."""
    rng = random.Random(SEED + 1)
    disk = SimDisk()
    ledger, accepted = {}, {}
    tman = _boot(disk)  # setup incarnation runs unfaulted
    next_k = 0
    iterations = 0
    while disk.faults.crashes < TARGET_CRASHES:
        iterations += 1
        assert iterations < TARGET_CRASHES * 30, "crash loop failed to converge"
        crashes_before = disk.faults.crashes
        site, span = SITES[rng.randrange(len(SITES))]
        pool = DriverPool(tman, 4, threshold=0.05, poll_period=0.005)
        pool.start()
        disk.faults.arm(site, rng.randint(1, span), torn=rng.random() < 0.2)
        try:
            for _ in range(rng.randint(2, 6)):
                k = next_k
                next_k += 1
                tman.push(
                    "s", Operation.INSERT, new={"k": k, "v": rng.randrange(100)}
                )
        except SimulatedCrash:
            pass
        # Wait for the pool to either drain or die at the armed site.
        deadline = time.time() + 15
        while time.time() < deadline:
            if pool.errors:
                break
            if pool.quiesce(timeout=0.5):
                break
        pool.stop()
        disk.faults.disarm()
        if disk.faults.crashes > crashes_before:
            # Someone hit the crash point: power-fail, reboot, recover.
            disk.crash()
            tman = _boot(disk)
            _scan(tman, ledger, accepted)
        elif rng.random() < 0.2:
            _scan(tman, ledger, accepted)  # compaction drops records
            tman.checkpoint()

    # Final incarnation drains unfaulted under a live pool.
    with DriverPool(tman, 4, threshold=0.05, poll_period=0.005) as pool:
        assert pool.quiesce(timeout=30.0)
    _scan(tman, ledger, accepted)
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay
    assert disk.faults.crashes >= TARGET_CRASHES
    assert len(set(disk.faults.seen)) >= 4, disk.faults.seen
    assert Counter(ledger.values()) == Counter(_oracle_ledger(accepted).values())
