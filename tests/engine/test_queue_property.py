"""Property test: the durable TableQueue behaves like a FIFO deque model
under random enqueue/dequeue sequences, including mid-sequence restarts."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.descriptors import Operation, UpdateDescriptor
from repro.engine.queue import MemoryQueue, TableQueue
from repro.sql.database import Database


def descriptor(i):
    return UpdateDescriptor("s", Operation.INSERT, new={"i": i})


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("enqueue"), st.integers(0, 10_000)),
            st.tuples(st.just("dequeue"), st.just(0)),
        ),
        max_size=60,
    )
)
def test_table_queue_matches_deque_model(operations):
    queue = TableQueue(Database())
    model = deque()
    for op, value in operations:
        if op == "enqueue":
            queue.enqueue(descriptor(value))
            model.append(value)
        else:
            got = queue.dequeue()
            if model:
                assert got is not None and got.new["i"] == model.popleft()
            else:
                assert got is None
        assert len(queue) == len(model)
    drained = [d.new["i"] for d in queue.drain()]
    assert drained == list(model)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=19),
)
def test_restart_preserves_order_and_backlog(tmp_path_factory, values, consume):
    path = str(tmp_path_factory.mktemp("q"))
    db = Database(path)
    queue = TableQueue(db)
    for v in values:
        queue.enqueue(descriptor(v))
    consumed = min(consume, len(values))
    for _ in range(consumed):
        queue.dequeue()
    db.close()

    db2 = Database(path)
    recovered = TableQueue(db2)
    remaining = [d.new["i"] for d in recovered.drain()]
    assert remaining == values[consumed:]
    db2.close()
