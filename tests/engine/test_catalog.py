"""Unit tests for the TriggerMan system catalogs."""

import pytest

from repro.engine.catalog import DEFAULT_TRIGGER_SET, TriggerManCatalog
from repro.errors import CatalogError, TriggerError
from repro.sql.database import Database


@pytest.fixture
def catalog():
    return TriggerManCatalog(Database())


class TestTriggerSets:
    def test_default_set_exists(self, catalog):
        assert catalog.trigger_set_id(DEFAULT_TRIGGER_SET) >= 1

    def test_create_and_lookup(self, catalog):
        ts_id = catalog.create_trigger_set("mine", "comment")
        assert catalog.trigger_set_id("mine") == ts_id

    def test_duplicate_rejected(self, catalog):
        catalog.create_trigger_set("mine")
        with pytest.raises(CatalogError):
            catalog.create_trigger_set("mine")

    def test_drop_empty_set(self, catalog):
        catalog.create_trigger_set("mine")
        catalog.drop_trigger_set("mine")
        with pytest.raises(CatalogError):
            catalog.trigger_set_id("mine")

    def test_default_cannot_be_dropped(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_trigger_set(DEFAULT_TRIGGER_SET)

    def test_nonempty_set_cannot_be_dropped(self, catalog):
        ts_id = catalog.create_trigger_set("mine")
        catalog.insert_trigger(catalog.next_trigger_id(), ts_id, "t", "text")
        with pytest.raises(CatalogError):
            catalog.drop_trigger_set("mine")

    def test_enable_disable_set(self, catalog):
        ts_id = catalog.create_trigger_set("mine")
        catalog.set_trigger_set_enabled("mine", False)
        assert not catalog.trigger_set_enabled(ts_id)
        catalog.set_trigger_set_enabled("mine", True)
        assert catalog.trigger_set_enabled(ts_id)


class TestTriggers:
    def test_insert_and_lookup(self, catalog):
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        tid = catalog.next_trigger_id()
        catalog.insert_trigger(tid, ts, "t1", "create trigger t1 ...")
        assert catalog.trigger_id("t1") == tid
        assert catalog.trigger_text(tid) == "create trigger t1 ..."
        assert catalog.has_trigger("t1")
        assert catalog.trigger_enabled(tid)

    def test_duplicate_name_rejected(self, catalog):
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        catalog.insert_trigger(catalog.next_trigger_id(), ts, "t1", "x")
        with pytest.raises(TriggerError):
            catalog.insert_trigger(catalog.next_trigger_id(), ts, "t1", "y")

    def test_unknown_trigger(self, catalog):
        with pytest.raises(TriggerError):
            catalog.trigger_id("ghost")
        with pytest.raises(TriggerError):
            catalog.trigger_row(999)

    def test_enable_disable(self, catalog):
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        tid = catalog.next_trigger_id()
        catalog.insert_trigger(tid, ts, "t1", "x")
        catalog.set_trigger_enabled("t1", False)
        assert not catalog.trigger_enabled(tid)

    def test_set_disable_propagates(self, catalog):
        ts_id = catalog.create_trigger_set("mine")
        tid = catalog.next_trigger_id()
        catalog.insert_trigger(tid, ts_id, "t1", "x")
        catalog.set_trigger_set_enabled("mine", False)
        assert not catalog.trigger_enabled(tid)

    def test_delete(self, catalog):
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        tid = catalog.next_trigger_id()
        catalog.insert_trigger(tid, ts, "t1", "x")
        assert catalog.delete_trigger("t1") == tid
        assert not catalog.has_trigger("t1")

    def test_list_triggers_sorted(self, catalog):
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        for name in ("b", "a", "c"):
            catalog.insert_trigger(catalog.next_trigger_id(), ts, name, "x")
        rows = catalog.list_triggers()
        assert [r["name"] for r in rows] == ["b", "a", "c"]  # id order
        assert [r["triggerID"] for r in rows] == sorted(
            r["triggerID"] for r in rows
        )


class TestSignatures:
    def test_insert_and_stats(self, catalog):
        sig_id = catalog.next_signature_id()
        catalog.insert_signature(
            sig_id, "emp", "insert", "(salary > CONSTANT_1)",
            "const_table1", "memory_list",
        )
        catalog.update_signature_stats(sig_id, 42, "memory_index")
        rows = catalog.list_signatures()
        assert rows[0]["constantSetSize"] == 42
        assert rows[0]["constantSetOrganization"] == "memory_index"
        assert rows[0]["signatureDesc"] == "(salary > CONSTANT_1)"


class TestDataSources:
    def test_roundtrip(self, catalog):
        catalog.insert_data_source(1, "emp", "table", "default", "emp")
        catalog.insert_data_source(
            2, "ticks", "stream", None, None, [("sym", "varchar(8)")]
        )
        rows = catalog.list_data_sources()
        assert rows[0]["name"] == "emp"
        assert rows[1]["columns"] == [["sym", "varchar(8)"]]

    def test_delete(self, catalog):
        catalog.insert_data_source(1, "emp", "table", "default", "emp")
        catalog.delete_data_source("emp")
        assert catalog.list_data_sources() == []
        with pytest.raises(CatalogError):
            catalog.delete_data_source("emp")


class TestPersistence:
    def test_ids_continue_after_reload(self, tmp_path):
        path = str(tmp_path / "cat")
        db = Database(path)
        catalog = TriggerManCatalog(db)
        ts = catalog.trigger_set_id(DEFAULT_TRIGGER_SET)
        tid = catalog.next_trigger_id()
        catalog.insert_trigger(tid, ts, "t1", "text1")
        sig = catalog.next_signature_id()
        catalog.insert_signature(sig, "emp", "insert", "d", None, "memory_list")
        db.close()

        db2 = Database(path)
        reloaded = TriggerManCatalog(db2)
        assert reloaded.trigger_id("t1") == tid
        assert reloaded.trigger_text(tid) == "text1"
        assert reloaded.next_trigger_id() > tid
        assert reloaded.next_signature_id() > sig
        db2.close()
