"""Engine-level tests with Gator networks (network_type="gator"),
including materialized-memory maintenance (the stale-join hazard)."""

import pytest

from repro.engine.triggerman import TriggerMan
from repro.errors import TriggerError


def fired(tman, name):
    return [n.args for n in tman.events.history if n.event_name == name]


@pytest.fixture
def gator_estate():
    tman = TriggerMan.in_memory(network_type="gator")
    tman.define_table("house", [("hno", "integer"), ("nno", "integer")])
    tman.define_table(
        "represents", [("spno", "integer"), ("nno", "integer")]
    )
    tman.define_table(
        "salesperson", [("spno", "integer"), ("name", "varchar(20)")]
    )
    tman.insert("salesperson", {"spno": 1, "name": "Iris"})
    tman.insert("represents", {"spno": 1, "nno": 10})
    tman.process_all()
    tman.create_trigger(
        "create trigger alert on insert to house "
        "from salesperson s, house h, represents r "
        "when s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno "
        "do raise event NewHouse(h.hno)"
    )
    return tman


class TestGatorEngine:
    def test_unknown_network_type_rejected(self):
        tman = TriggerMan.in_memory(network_type="rete")
        tman.define_table("t", [("a", "integer")])
        with pytest.raises(TriggerError):
            tman.create_trigger(
                "create trigger x from t do raise event E"
            )

    def test_priming_from_tables(self, gator_estate):
        """§5.1: the trigger is primed with existing rows at creation."""
        runtime = gator_estate.triggers()[0]
        sizes = runtime.network.memory_sizes()
        assert sizes["alpha:s"] == 1  # Iris passed the selection predicate
        assert sizes["alpha:r"] == 1

    def test_join_fires(self, gator_estate):
        gator_estate.insert("house", {"hno": 7, "nno": 10})
        gator_estate.process_all()
        assert fired(gator_estate, "NewHouse") == [(7,)]

    def test_single_source_gator(self):
        tman = TriggerMan.in_memory(network_type="gator")
        tman.define_table("t", [("a", "integer")])
        tman.create_trigger(
            "create trigger x from t on insert when t.a > 1 "
            "do raise event E(t.a)"
        )
        tman.insert("t", {"a": 5})
        tman.process_all()
        assert fired(tman, "E") == [(5,)]

    def test_delete_maintenance_prevents_stale_join(self, gator_estate):
        """A delete that matches no event condition must still retract the
        row from the materialized memories."""
        gator_estate.delete_rows("represents", {"spno": 1, "nno": 10})
        gator_estate.process_all()
        gator_estate.insert("house", {"hno": 8, "nno": 10})
        gator_estate.process_all()
        assert fired(gator_estate, "NewHouse") == []

    def test_update_out_of_selection_retracts(self, gator_estate):
        """Updating Iris to another name: her alpha row must vanish even
        though the update token fails the trigger's selection predicate."""
        gator_estate.update_rows("salesperson", {"spno": 1}, {"name": "Bob"})
        gator_estate.process_all()
        gator_estate.insert("house", {"hno": 9, "nno": 10})
        gator_estate.process_all()
        assert fired(gator_estate, "NewHouse") == []

    def test_update_into_selection_inserts(self, gator_estate):
        gator_estate.insert("salesperson", {"spno": 2, "name": "Joe"})
        gator_estate.insert("represents", {"spno": 2, "nno": 20})
        gator_estate.process_all()
        # Joe isn't Iris; houses in nno 20 don't fire...
        gator_estate.insert("house", {"hno": 10, "nno": 20})
        gator_estate.process_all()
        assert fired(gator_estate, "NewHouse") == []
        # ...until Joe is renamed to Iris (update token now matches the
        # salesperson selection and joins against stored houses... houses
        # are token-sourced for event insert only; renaming then inserting)
        gator_estate.update_rows("salesperson", {"spno": 2}, {"name": "Iris"})
        gator_estate.process_all()
        gator_estate.insert("house", {"hno": 11, "nno": 20})
        gator_estate.process_all()
        assert (11,) in fired(gator_estate, "NewHouse")

    def test_drop_trigger_clears_maintenance(self, gator_estate):
        gator_estate.drop_trigger("alert")
        assert all(
            not bucket
            for bucket in gator_estate._materialized.values()
        )
        # subsequent deletes must not touch the dropped trigger
        gator_estate.delete_rows("represents", {"spno": 1})
        gator_estate.process_all()

    def test_gator_persistent_replay(self, tmp_path):
        path = str(tmp_path / "g")
        tman = TriggerMan.persistent(path, network_type="gator")
        tman.define_table("a", [("k", "integer")])
        tman.define_table("b", [("k", "integer")])
        tman.insert("b", {"k": 1})
        tman.process_all()
        tman.create_trigger(
            "create trigger j from a, b when a.k = b.k "
            "do raise event J(a.k)"
        )
        tman.catalog_db.close()
        tman2 = TriggerMan.persistent(path, network_type="gator")
        tman2.insert("a", {"k": 1})
        tman2.process_all()
        assert fired(tman2, "J") == [(1,)]
        tman2.catalog_db.close()


class TestATreatStreamMaintenance:
    def test_stream_delete_maintains_materialized_alpha(self):
        """A-TREAT stream-fed memories are maintained through the same
        engine path when the delete token matches no event condition...
        streams with implicit insert_or_update events never see deletes via
        the index, so the maintenance hook must catch them."""
        tman = TriggerMan.in_memory()  # atreat
        tman.define_stream("a", [("k", "integer")])
        tman.define_stream("b", [("k", "integer")])
        tman.create_trigger(
            "create trigger j from a, b when a.k = b.k "
            "do raise event J(a.k)"
        )
        from repro.engine.descriptors import Operation

        tman.push("b", Operation.INSERT, new={"k": 1})
        tman.process_all()
        tman.push("b", Operation.DELETE, old={"k": 1})
        tman.process_all()
        tman.push("a", Operation.INSERT, new={"k": 1})
        tman.process_all()
        assert fired(tman, "J") == []
