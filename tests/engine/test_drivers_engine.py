"""Functional multi-driver processing against the real engine (§6,
Figure 1): N driver threads calling TmanTest concurrently must process
every queued token exactly once and fire the same set of actions a single
driver would."""

import time

import pytest

from repro.engine.tasks import Driver
from repro.engine.triggerman import TriggerMan


def build(n_triggers=50):
    tman = TriggerMan.in_memory()
    tman.define_table("emp", [("name", "varchar(40)"), ("salary", "float")])
    for i in range(n_triggers):
        tman.create_trigger(
            f"create trigger t{i} from emp on insert "
            f"when emp.salary > {i * 10} do raise event E(emp.name)"
        )
    return tman


@pytest.mark.parametrize("n_drivers", [1, 4])
def test_drivers_drain_engine_queue(n_drivers):
    tman = build()
    tokens = 60
    for i in range(tokens):
        tman.insert("emp", {"name": f"u{i}", "salary": float(i * 17 % 500)})
    expected_firings = sum(
        1
        for i in range(tokens)
        for j in range(50)
        if float(i * 17 % 500) > j * 10
    )
    drivers = [
        Driver(
            tman.tasks,
            threshold=0.05,
            poll_period=0.005,
            refill=tman._refill_tasks,
            name=f"driver-{d}",
        )
        for d in range(n_drivers)
    ]
    for driver in drivers:
        driver.start()
    deadline = time.time() + 15
    while (
        tman.stats.tokens_processed < tokens
        or len(tman.tasks) > 0
        or len(tman.queue) > 0
    ) and time.time() < deadline:
        time.sleep(0.01)
    time.sleep(0.05)  # let in-flight action tasks finish
    for driver in drivers:
        driver.stop()
    assert tman.stats.tokens_processed == tokens
    assert tman.stats.triggers_fired == expected_firings
    assert len(tman.events.history) <= expected_firings  # ring buffer cap
    assert not tman.actions.failures


def test_compute_driver_count_from_config():
    """§6's N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL) wiring."""
    from repro.engine.tasks import compute_driver_count

    assert compute_driver_count(4, 1.0) == 4
    assert compute_driver_count(4, 0.75) == 3
