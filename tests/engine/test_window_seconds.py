"""Tests for temporal triggers: ``window N seconds [of col]`` — sliding
event-time windows with incremental count/sum/avg thresholds, per
correlation key (the PR-7 tentpole's condition-layer half)."""

import pytest

from repro.condition.windows import (
    WindowSpec,
    compile_incremental_having,
    window_spec_from_flags,
)
from repro.engine.triggerman import TriggerMan
from repro.errors import ParseError, TriggerError
from repro.lang.parser import parse_command


def fired(tman, name):
    return [n.args for n in tman.events.history if n.event_name == name]


@pytest.fixture
def tman_events():
    tman = TriggerMan.in_memory()
    tman.define_stream(
        "ev",
        [
            ("host", "varchar(40)"),
            ("code", "integer"),
            ("ms", "float"),
            ("ts", "float"),
        ],
    )
    yield tman
    tman.close()


def _push(tman, host="a", code=500, ms=10.0, ts=0.0):
    tman.push("ev", "insert", new={"host": host, "code": code, "ms": ms, "ts": ts})


class TestParsing:
    def test_window_seconds_flag(self):
        cmd = parse_command(
            "create trigger t window 30 seconds from ev "
            "having count(*) >= 3 do raise event E"
        )
        assert "WINDOWSEC:30" in cmd.flags
        assert window_spec_from_flags(cmd.flags) == WindowSpec(30.0, "ts")

    def test_window_seconds_of_column(self):
        cmd = parse_command(
            "create trigger t window 5 seconds of stamp from ev "
            "having count(*) >= 2 do raise event E"
        )
        assert "WINDOWSEC:5:stamp" in cmd.flags
        assert window_spec_from_flags(cmd.flags) == WindowSpec(5.0, "stamp")

    def test_fractional_seconds(self):
        cmd = parse_command(
            "create trigger t window 2.5 seconds from ev "
            "having count(*) >= 2 do raise event E"
        )
        assert window_spec_from_flags(cmd.flags).seconds == 2.5

    def test_singular_second(self):
        cmd = parse_command(
            "create trigger t window 1 second from ev "
            "having count(*) >= 2 do raise event E"
        )
        assert "WINDOWSEC:1" in cmd.flags

    def test_count_window_still_integer_only(self):
        cmd = parse_command(
            "create trigger t window 100 from ev "
            "having count(*) > 5 do raise event E"
        )
        assert "WINDOW:100" in cmd.flags
        with pytest.raises(ParseError):
            parse_command("create trigger t window 2.5 from ev do raise event E")

    def test_zero_seconds_rejected(self):
        with pytest.raises(ParseError):
            parse_command(
                "create trigger t window 0 seconds from ev "
                "having count(*) >= 1 do raise event E"
            )


class TestValidation:
    def test_needs_having(self, tman_events):
        with pytest.raises(TriggerError, match="HAVING"):
            tman_events.create_trigger(
                "create trigger t window 10 seconds from ev do raise event E"
            )

    def test_single_tvar_only(self, tman_events):
        tman_events.define_stream("other", [("x", "integer")])
        with pytest.raises(TriggerError, match="single tuple variable"):
            tman_events.create_trigger(
                "create trigger t window 10 seconds from ev, other o "
                "when ev.code = o.x having count(*) >= 2 do raise event E"
            )

    def test_ts_column_must_exist(self, tman_events):
        with pytest.raises(TriggerError, match="nope"):
            tman_events.create_trigger(
                "create trigger t window 10 seconds of nope from ev "
                "having count(*) >= 2 do raise event E"
            )

    def test_cannot_combine_with_count_window(self, tman_events):
        with pytest.raises(TriggerError, match="combine"):
            tman_events.create_trigger(
                "create trigger t window 5 window 10 seconds from ev "
                "having count(*) >= 2 do raise event E"
            )


class TestIncrementalCompiler:
    def _having(self, text):
        cmd = parse_command(
            f"create trigger t window 9 seconds from ev "
            f"having {text} do raise event E"
        )
        return cmd.having

    def test_count_star_threshold(self):
        plan, tracked = compile_incremental_having(self._having("count(*) >= 3"))
        assert plan is not None and tracked == ()

    def test_sum_and_avg_track_columns(self):
        plan, tracked = compile_incremental_having(
            self._having("sum(ms) > 100 and avg(ms) < 900")
        )
        assert plan is not None and tracked == ("ms",)

    def test_flipped_literal_side(self):
        plan, tracked = compile_incremental_having(self._having("3 <= count(*)"))
        assert plan is not None

    def test_min_max_fall_back(self):
        plan, tracked = compile_incremental_having(self._having("min(ms) > 5"))
        assert plan is None and tracked == ()

    def test_non_aggregate_falls_back(self):
        plan, _ = compile_incremental_having(
            self._having("count(*) >= 3 and ms > 5")
        )
        assert plan is None


class TestSemantics:
    def test_count_threshold_slides(self, tman_events):
        tman_events.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "group by ev.host having count(*) >= 3 "
            "do raise event Burst(ev.host)"
        )
        for ts in (1.0, 2.0, 3.0, 4.0, 20.0, 21.0, 22.0):
            _push(tman_events, ts=ts)
        tman_events.process_all()
        # fires at ts=3 (count 3), ts=4 (count 4), and again at ts=22 after
        # the window slid past the first burst entirely
        assert fired(tman_events, "Burst") == [("a",)] * 3

    def test_per_key_isolation(self, tman_events):
        tman_events.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "group by ev.host having count(*) >= 2 "
            "do raise event Burst(ev.host)"
        )
        _push(tman_events, host="a", ts=1.0)
        _push(tman_events, host="b", ts=1.5)
        _push(tman_events, host="a", ts=2.0)
        tman_events.process_all()
        assert fired(tman_events, "Burst") == [("a",)]

    def test_when_filters_before_window(self, tman_events):
        tman_events.create_trigger(
            "create trigger errs window 10 seconds from ev "
            "when ev.code >= 500 group by ev.host having count(*) >= 2 "
            "do raise event Errs(ev.host)"
        )
        _push(tman_events, code=500, ts=1.0)
        _push(tman_events, code=200, ts=2.0)  # filtered: not in the window
        _push(tman_events, code=503, ts=3.0)
        tman_events.process_all()
        assert fired(tman_events, "Errs") == [("a",)]
        assert tman_events.windows.describe("errs")[0]["entries"] == 2

    def test_sum_window(self, tman_events):
        tman_events.create_trigger(
            "create trigger spend window 10 seconds from ev "
            "group by ev.host having sum(ms) > 100 "
            "do raise event Spend(ev.host)"
        )
        _push(tman_events, ms=60.0, ts=1.0)
        _push(tman_events, ms=60.0, ts=2.0)  # sum 120 -> fires
        _push(tman_events, ms=10.0, ts=13.0)  # both evicted; sum 10
        tman_events.process_all()
        assert fired(tman_events, "Spend") == [("a",)]

    def test_avg_fallback_equivalence(self, tman_events):
        """The same threshold through the incremental plan and the general
        evaluator (forced via a non-incremental shape) fire identically."""
        tman_events.create_trigger(
            "create trigger fast window 10 seconds from ev "
            "group by ev.host having avg(ms) < 50 and count(*) >= 2 "
            "do raise event Fast(ev.host)"
        )
        tman_events.create_trigger(
            "create trigger fast2 window 10 seconds from ev "
            "group by ev.host having avg(ms) < 50 and count(ms) >= 2 "
            "and min(ms) >= 0 do raise event Fast2(ev.host)"
        )
        runtimes = {r.name: r for r in tman_events.triggers()}
        assert runtimes["fast"].window_plan is not None
        assert runtimes["fast2"].window_plan is None  # evaluator fallback
        for ms, ts in [(10.0, 1.0), (20.0, 2.0), (400.0, 3.0)]:
            _push(tman_events, ms=ms, ts=ts)
        tman_events.process_all()
        assert fired(tman_events, "Fast") == fired(tman_events, "Fast2") == [
            ("a",)
        ]

    def test_global_window_without_group_by(self, tman_events):
        tman_events.create_trigger(
            "create trigger any window 10 seconds from ev "
            "having count(*) >= 2 do raise event Any(ev.host)"
        )
        _push(tman_events, host="a", ts=1.0)
        _push(tman_events, host="b", ts=2.0)  # one global key
        tman_events.process_all()
        assert fired(tman_events, "Any") == [("b",)]

    def test_bad_timestamp_skipped(self, tman_events):
        tman_events.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "having count(*) >= 1 do raise event Burst(ev.host)"
        )
        tman_events.push("ev", "insert", new={"host": "a", "code": 1, "ms": 1.0})
        tman_events.process_all()
        assert fired(tman_events, "Burst") == []

    def test_late_event_joins_window(self, tman_events):
        tman_events.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "having count(*) >= 3 do raise event Burst(ev.host)"
        )
        _push(tman_events, ts=5.0)
        _push(tman_events, ts=8.0)
        _push(tman_events, ts=6.0)  # late, still inside the window
        tman_events.process_all()
        assert fired(tman_events, "Burst") == [("a",)]

    def test_drop_trigger_forgets_state(self, tman_events):
        tman_events.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "having count(*) >= 2 do raise event Burst(ev.host)"
        )
        _push(tman_events, ts=1.0)
        tman_events.process_all()
        assert tman_events.windows.window_count() == 1
        tman_events.drop_trigger("burst")
        assert tman_events.windows.window_count() == 0


class TestRestart:
    def test_state_survives_clean_restart(self, tmp_path):
        path = str(tmp_path / "db")

        def boot():
            tman = TriggerMan.persistent(path)
            if "ev" not in tman.registry:
                tman.define_stream(
                    "ev", [("host", "varchar(40)"), ("ts", "float")]
                )
                tman.create_trigger(
                    "create trigger burst window 10 seconds from ev "
                    "group by ev.host having count(*) >= 3 "
                    "do raise event Burst(ev.host)"
                )
            return tman

        tman = boot()
        tman.push("ev", "insert", new={"host": "a", "ts": 1.0})
        tman.push("ev", "insert", new={"host": "a", "ts": 2.0})
        tman.process_all()
        tman.close()

        tman = boot()
        assert tman.windows.describe("burst")[0]["entries"] == 2
        tman.push("ev", "insert", new={"host": "a", "ts": 3.0})
        tman.process_all()
        # the third event completes the pre-restart pair: exactly one fire
        assert fired(tman, "Burst") == [("a",)]
        tman.close()

    def test_checkpoint_carries_snapshot(self, tmp_path):
        path = str(tmp_path / "db")
        tman = TriggerMan.persistent(path)
        tman.define_stream("ev", [("host", "varchar(40)"), ("ts", "float")])
        tman.create_trigger(
            "create trigger burst window 10 seconds from ev "
            "having count(*) >= 3 do raise event Burst(ev.host)"
        )
        tman.push("ev", "insert", new={"host": "a", "ts": 1.0})
        tman.process_all()
        tman.checkpoint()  # compacts away the WINDOW_EVENT record
        tman.push("ev", "insert", new={"host": "a", "ts": 2.0})
        tman.process_all()
        tman.close()

        tman = TriggerMan.persistent(path)
        assert tman.windows.describe("burst")[0]["entries"] == 2
        tman.close()
