"""Shared fixtures for the test suite."""

import pytest

from repro.sql.database import Database
from repro.sql.schema import schema


@pytest.fixture
def db():
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def emp_table(db):
    """An employee table with a few rows."""
    table = db.create_table(
        schema(
            "emp",
            ("eno", "integer"),
            ("name", "varchar(40)"),
            ("salary", "float"),
            ("dept", "varchar(20)"),
        )
    )
    rows = [
        (1, "alice", 120000.0, "eng"),
        (2, "bob", 80000.0, "toys"),
        (3, "carol", 95000.0, "eng"),
        (4, "dave", 40000.0, "shoes"),
        (5, "erin", 150000.0, "eng"),
    ]
    for row in rows:
        table.insert(row)
    return table


@pytest.fixture
def tman():
    """A fresh in-memory TriggerMan instance."""
    from repro.engine.triggerman import TriggerMan

    return TriggerMan.in_memory()


@pytest.fixture
def tman_emp(tman):
    """TriggerMan with the canonical emp table defined."""
    tman.define_table(
        "emp",
        [
            ("eno", "integer"),
            ("name", "varchar(40)"),
            ("salary", "float"),
            ("dept", "varchar(20)"),
            ("age", "integer"),
        ],
    )
    return tman
