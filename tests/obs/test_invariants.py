"""Accounting invariants the observability counters made checkable:

* queue: ``enqueued - dequeued == len(queue)`` (restored backlog included);
* cache: ``hits + misses == lookups``;
* cache pins: ``pins - unpins - dropped_pins == sum of live pin counts``.
"""

import pytest

from repro.engine.cache import TriggerCache
from repro.engine.descriptors import UpdateDescriptor
from repro.engine.queue import MemoryQueue, TableQueue
from repro.engine.triggerman import TriggerMan
from repro.sql.database import Database


def token(i=0):
    return UpdateDescriptor("s", "insert", new={"i": i})


def queue_invariant(queue):
    return queue.enqueued - queue.dequeued == len(queue)


class TestQueueAccounting:
    @pytest.mark.parametrize("make", [MemoryQueue, lambda: TableQueue(Database())])
    def test_enqueue_dequeue_balance(self, make):
        queue = make()
        for i in range(5):
            queue.enqueue(token(i))
            assert queue_invariant(queue)
        assert queue.enqueued == 5
        drained = list(queue.drain())
        assert len(drained) == 5
        assert queue.dequeued == 5
        assert queue_invariant(queue)
        assert queue.dequeue() is None
        assert queue.dequeued == 5  # empty dequeue is not counted

    def test_table_queue_counts_restored_backlog(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        queue = TableQueue(db)
        for i in range(4):
            queue.enqueue(token(i))
        queue.dequeue()
        db.close()

        db2 = Database(path)
        restarted = TableQueue(db2)
        # Three rows survived; they count as enqueued in the new incarnation
        # so the depth invariant holds from the first observation.
        assert len(restarted) == 3
        assert restarted.enqueued == 3
        assert restarted.dequeued == 0
        assert queue_invariant(restarted)
        list(restarted.drain())
        assert queue_invariant(restarted)
        db2.close()


class TestCacheAccounting:
    def make_cache(self, **kwargs):
        return TriggerCache(lambda trigger_id: f"runtime-{trigger_id}", **kwargs)

    def test_lookups_is_hits_plus_misses(self):
        cache = self.make_cache()
        cache.pin(1)  # miss
        cache.pin(1)  # hit
        cache.pin(2)  # miss
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses == 3
        assert stats.hits == 1 and stats.misses == 2

    def test_pin_balance(self):
        cache = self.make_cache()
        cache.pin(1)
        cache.pin(1)
        cache.pin(2)
        cache.unpin(1)
        stats = cache.stats
        assert stats.pins - stats.unpins - stats.dropped_pins == 2
        assert cache.current_pins() == 2

    def test_invalidate_drops_held_pins(self):
        cache = self.make_cache()
        cache.pin(1)
        cache.invalidate(1)
        stats = cache.stats
        assert stats.dropped_pins == 1
        assert stats.pins - stats.unpins - stats.dropped_pins == 0
        assert cache.current_pins() == 0

    def test_clear_drops_all_pins(self):
        cache = self.make_cache()
        cache.pin(1)
        cache.pin(2)
        cache.clear()
        stats = cache.stats
        assert stats.dropped_pins == 2
        assert stats.pins - stats.unpins - stats.dropped_pins == 0

    def test_seed_preserves_held_pins(self):
        # Regression: re-seeding a pinned trigger used to discard the old
        # entry's pin count, so the holder's later unpin blew up and the
        # accounting went negative.
        cache = self.make_cache()
        cache.pin(1)
        cache.seed(1, "rebuilt-runtime")
        assert cache.current_pins() == 1
        cache.unpin(1)  # must not raise
        stats = cache.stats
        assert stats.pins - stats.unpins - stats.dropped_pins == 0


class TestEngineLevelInvariants:
    def test_registry_views_balance_after_a_workload(self):
        tman = TriggerMan.in_memory()
        tman.define_table(
            "emp", [("name", "varchar(40)"), ("salary", "float")]
        )
        for i in range(3):
            tman.create_trigger(
                f"create trigger t{i} from emp on insert "
                f"when emp.salary > {i * 100} do raise event E{i}()"
            )
        for i in range(10):
            tman.insert("emp", {"name": f"u{i}", "salary": float(i * 60)})
        tman.process_all()

        snap = tman.stats_snapshot()
        assert snap["queue.enqueued"] - snap["queue.dequeued"] == snap["queue.depth"] == 0
        assert snap["cache.hits"] + snap["cache.misses"] == tman.cache.stats.lookups
        stats = tman.cache.stats
        assert (
            stats.pins - stats.unpins - stats.dropped_pins
            == tman.cache.current_pins()
        )
        assert snap["tasks.enqueued"] - snap["tasks.executed"] == snap["tasks.depth"] == 0
        assert snap["engine.tokens_processed"] == 10

    def test_drop_trigger_keeps_pin_balance(self):
        tman = TriggerMan.in_memory()
        tman.define_table("emp", [("name", "varchar(40)")])
        tman.create_trigger(
            "create trigger t from emp on insert "
            "when emp.name = 'x' do raise event E()"
        )
        tman.insert("emp", {"name": "x"})
        tman.process_all()
        tman.drop_trigger("t")
        stats = tman.cache.stats
        assert (
            stats.pins - stats.unpins - stats.dropped_pins
            == tman.cache.current_pins()
        )
