"""Token tracing: span ordering through the full §5.4 path, JSON export."""

import json

import pytest

from repro.engine.triggerman import TriggerMan
from repro.obs.trace import TraceRecorder


@pytest.fixture
def traced_join_tman():
    """An engine with a two-table join trigger and tracing enabled."""
    tman = TriggerMan.in_memory()
    tman.define_table(
        "emp",
        [("name", "varchar(40)"), ("salary", "float"), ("dept", "varchar(20)")],
    )
    tman.define_table("dept", [("dname", "varchar(20)"), ("floor", "integer")])
    tman.insert("dept", {"dname": "eng", "floor": 3})
    tman.create_trigger(
        "create trigger j on insert to e from emp e, dept d "
        "when e.salary > 1000 and e.dept = d.dname "
        "do raise event J(e.name)"
    )
    tman.set_tracing(True)
    return tman


class TestRecorder:
    def test_disabled_recorder_stamps_nothing(self, tman_emp):
        recorder = tman_emp.obs.trace
        assert not recorder.enabled
        tman_emp.insert("emp", {"eno": 1, "name": "a", "salary": 1.0,
                                "dept": "x", "age": 1})
        tman_emp.process_all()
        assert recorder.traces() == []

    def test_begin_stamps_descriptor(self):
        from repro.engine.descriptors import UpdateDescriptor

        recorder = TraceRecorder(enabled=True)
        descriptor = UpdateDescriptor("s", "insert", new={"a": 1})
        stamped = recorder.begin(descriptor)
        assert stamped.trace_id == 1
        assert descriptor.trace_id == 0  # original untouched (frozen)
        assert recorder.get(1).data_source == "s"

    def test_bounded_buffer_evicts_oldest(self):
        from repro.engine.descriptors import UpdateDescriptor

        recorder = TraceRecorder(enabled=True, max_traces=3)
        for i in range(5):
            recorder.begin(UpdateDescriptor("s", "insert", new={"i": i}))
        ids = [t.trace_id for t in recorder.traces()]
        assert ids == [3, 4, 5]

    def test_token_context_restores_previous(self):
        recorder = TraceRecorder(enabled=True)
        assert recorder.current_id() == 0
        with recorder.token(7):
            assert recorder.current_id() == 7
            with recorder.token(9):
                assert recorder.current_id() == 9
            assert recorder.current_id() == 7
        assert recorder.current_id() == 0

    def test_span_nesting_depth(self):
        recorder = TraceRecorder(enabled=True)
        from repro.engine.descriptors import UpdateDescriptor

        stamped = recorder.begin(
            UpdateDescriptor("s", "insert", new={"a": 1})
        )
        with recorder.token(stamped.trace_id):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    pass
        trace = recorder.get(stamped.trace_id)
        depths = {s.stage: s.depth for s in trace.spans}
        assert depths["inner"] == depths["outer"] + 1


class TestEndToEndJoinTrace:
    def test_insert_records_every_stage(self, traced_join_tman):
        tman = traced_join_tman
        tman.insert("emp", {"name": "ada", "salary": 5000.0, "dept": "eng"})
        tman.process_all()
        trace = tman.obs.trace.last()
        assert trace is not None
        assert trace.data_source == "emp"
        assert trace.operation == "insert"
        stages = trace.stages()
        for expected in [
            "queue",
            "index.probe",
            "org.probe",
            "cache.pin",
            "task.enqueue",
            "task.run",
            "action.execute",
        ]:
            assert expected in stages, f"missing {expected} in {stages}"
        # The network entry node for tuple variable e is its alpha memory.
        assert any(s.startswith("network.alpha:e") for s in stages)

    def test_span_ordering_follows_the_pipeline(self, traced_join_tman):
        tman = traced_join_tman
        tman.insert("emp", {"name": "bo", "salary": 2000.0, "dept": "eng"})
        tman.process_all()
        stages = tman.obs.trace.last().stages()
        # queue residency starts first (span opens at capture time).
        assert stages[0] == "queue"
        order = {stage: i for i, stage in enumerate(stages)}
        network_stage = next(s for s in stages if s.startswith("network."))
        assert order["org.probe"] < order["cache.pin"]
        assert order["cache.pin"] < order[network_stage]
        assert order[network_stage] < order["task.run"]
        assert order["task.run"] < order["action.execute"]

    def test_residual_span_when_residual_present(self, traced_join_tman):
        tman = traced_join_tman
        # salary > 1000 is the indexable conjunct; the equality join clause
        # is handled by the network, so give the trigger a residual-bearing
        # sibling to observe the residual.test stage.
        tman.create_trigger(
            "create trigger r from emp on insert "
            "when emp.salary > 10 and emp.name != 'zz' "
            "do raise event R(emp.name)"
        )
        tman.insert("emp", {"name": "cy", "salary": 3000.0, "dept": "eng"})
        tman.process_all()
        stages = tman.obs.trace.last().stages()
        assert "residual.test" in stages

    def test_non_matching_token_still_traced(self, traced_join_tman):
        tman = traced_join_tman
        tman.insert("emp", {"name": "dee", "salary": 1.0, "dept": "eng"})
        tman.process_all()
        trace = tman.obs.trace.last()
        stages = trace.stages()
        assert "index.probe" in stages
        assert "cache.pin" not in stages  # nothing matched, nothing pinned

    def test_trace_off_stops_recording(self, traced_join_tman):
        tman = traced_join_tman
        tman.set_tracing(False)
        tman.insert("emp", {"name": "ed", "salary": 9000.0, "dept": "eng"})
        tman.process_all()
        assert tman.obs.trace.traces() == []


class TestExport:
    def test_json_schema(self, traced_join_tman):
        tman = traced_join_tman
        tman.insert("emp", {"name": "fi", "salary": 8000.0, "dept": "eng"})
        tman.process_all()
        payload = json.loads(tman.obs.trace.to_json())
        assert payload["schema"] == "triggerman-trace-v1"
        trace = payload["traces"][-1]
        assert set(trace) == {
            "trace_id", "data_source", "operation", "seq", "started_ns",
            "spans",
        }
        span = trace["spans"][0]
        assert set(span) == {"stage", "start_ns", "end_ns", "depth", "detail"}
        assert span["end_ns"] >= span["start_ns"]

    def test_render_tree(self, traced_join_tman):
        tman = traced_join_tman
        tman.insert("emp", {"name": "gus", "salary": 7000.0, "dept": "eng"})
        tman.process_all()
        text = tman.obs.trace.render()
        assert text.startswith("trace ")
        assert "emp:insert" in text
        assert "action.execute" in text

    def test_render_without_traces(self):
        assert TraceRecorder().render() == "(no traces recorded)"

    def test_durable_queue_preserves_trace_id(self, tmp_path):
        # The trace id rides the JSON payload through the table queue.
        tman = TriggerMan.persistent(str(tmp_path / "db"))
        tman.define_table("t", [("a", "integer")])
        tman.create_trigger(
            "create trigger x from t on insert when t.a > 0 "
            "do raise event X(t.a)"
        )
        tman.set_tracing(True)
        tman.insert("t", {"a": 5})
        stamped = tman.queue.dequeue()
        assert stamped.trace_id == 1
        tman.close()
