"""EXPLAIN-style introspection and the console observability commands."""

import json

import pytest

from repro.engine.console import Console
from repro.engine.client import TriggerManClient
from repro.engine.triggerman import TriggerMan
from repro.obs.explain import STRATEGY_NUMBERS, describe_strategy
from repro.predindex.costmodel import Limits


@pytest.fixture
def tman_t():
    tman = TriggerMan.in_memory(limits=Limits(list_max=2, memory_max=1000))
    tman.define_table(
        "emp",
        [("name", "varchar(40)"), ("salary", "float"), ("dept", "varchar(20)")],
    )
    return tman


class TestDescribeStrategy:
    def test_all_four_strategies_numbered(self):
        assert STRATEGY_NUMBERS == {
            "memory_list": 1,
            "memory_index": 2,
            "db_table": 3,
            "db_table_indexed": 4,
        }
        assert describe_strategy("memory_list") == "memory_list (§5.2 strategy 1)"
        assert describe_strategy("custom") == "custom"


class TestExplainTrigger:
    def test_reports_predicate_analysis(self, tman_t):
        tman_t.create_trigger(
            "create trigger t from emp on insert "
            "when emp.salary > 10 and emp.dept = 'x' "
            "do raise event E(emp.name)"
        )
        out = tman_t.explain("t")
        assert "trigger t (id 1)" in out
        assert "network: ATreatNetwork" in out
        assert "predicate analysis (§5.1 step 5):" in out
        # dept = 'x' (equality) beats salary > 10 as the indexable part.
        assert "equality on (dept)" in out
        assert "residual: (salary > 10)" in out
        assert "organization: memory_list (§5.2 strategy 1)" in out
        assert "action: raise event E(emp.name)" in out

    def test_reports_live_organization_after_migration(self, tman_t):
        # list_max=2: the third trigger on the same signature migrates the
        # equivalence class to strategy 2, and explain must say so.
        for i in range(3):
            tman_t.create_trigger(
                f"create trigger t{i} from emp on insert "
                f"when emp.dept = 'd{i}' do raise event E{i}()"
            )
        out = tman_t.explain("t0")
        assert "organization: memory_index (§5.2 strategy 2)" in out
        assert "class size 3" in out

    def test_legacy_console_lines_preserved(self, tman_t):
        tman_t.define_table("dept", [("dname", "varchar(20)")])
        console = Console(tman_t)
        console.execute(
            "create trigger j from emp e, dept d "
            "when e.dept = d.dname do raise event J"
        )
        out = console.execute("explain trigger j")
        assert "join predicates:" in out
        assert "(e.dept = d.dname)" in out
        assert "entry: alpha:e" in out
        assert "fired 0 time(s)" in out


class TestConsoleCommands:
    def test_stats_command(self, tman_t):
        console = Console(tman_t)
        tman_t.insert("emp", {"name": "a", "salary": 1.0, "dept": "x"})
        tman_t.process_all()
        out = console.execute("stats")
        assert "counters and gauges:" in out
        assert "engine.tokens_processed: 1" in out
        assert "observability: metrics off, trace off" in out

    def test_stats_includes_timings_when_metrics_on(self, tman_t):
        tman_t.obs.metrics.enable()
        console = Console(tman_t)
        tman_t.insert("emp", {"name": "a", "salary": 1.0, "dept": "x"})
        tman_t.process_all()
        out = console.execute("stats")
        assert "timings:" in out
        assert "engine.token_ns" in out
        assert "observability: metrics on, trace off" in out

    def test_trace_on_off_status(self, tman_t):
        console = Console(tman_t)
        assert console.execute("trace") == "tracing off (0 trace(s) held)"
        assert console.execute("trace on") == "tracing on"
        assert tman_t.obs.trace.enabled
        assert console.execute("trace off") == "tracing off"
        assert not tman_t.obs.trace.enabled
        assert "usage:" in console.execute("trace bogus")

    def test_trace_show_and_json_and_clear(self, tman_t):
        console = Console(tman_t)
        tman_t.create_trigger(
            "create trigger t from emp on insert "
            "when emp.salary > 10 do raise event E()"
        )
        console.execute("trace on")
        tman_t.insert("emp", {"name": "a", "salary": 50.0, "dept": "x"})
        tman_t.process_all()
        assert "action.execute" in console.execute("trace show")
        payload = json.loads(console.execute("trace json"))
        assert payload["schema"] == "triggerman-trace-v1"
        assert payload["traces"]
        assert console.execute("trace clear") == "traces cleared"
        assert tman_t.obs.trace.traces() == []

    def test_show_stats_legacy_still_works(self, tman_t):
        console = Console(tman_t)
        tman_t.create_trigger(
            "create trigger t from emp on insert "
            "when emp.salary > 10 do raise event E()"
        )
        tman_t.insert("emp", {"name": "a", "salary": 50.0, "dept": "x"})
        tman_t.process_all()
        out = console.execute("show stats")
        assert "triggers_fired: 1" in out


class TestClientApi:
    def test_stats_snapshot(self, tman_t):
        client = TriggerManClient(tman_t)
        tman_t.insert("emp", {"name": "a", "salary": 1.0, "dept": "x"})
        tman_t.process_all()
        snap = client.stats()
        assert snap["engine.tokens_processed"] == 1
        assert snap["queue.enqueued"] == 1
        assert snap["queue.depth"] == 0

    def test_explain_and_tracing(self, tman_t):
        client = TriggerManClient(tman_t)
        client.create_trigger(
            "create trigger t from emp on insert "
            "when emp.dept = 'x' do raise event E()"
        )
        assert "§5.2 strategy" in client.explain_trigger("t")
        client.set_tracing(True)
        tman_t.insert("emp", {"name": "a", "salary": 1.0, "dept": "x"})
        tman_t.process_all()
        payload = json.loads(client.traces_json())
        assert payload["traces"][0]["spans"]
