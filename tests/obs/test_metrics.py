"""The metrics registry: arithmetic, percentiles, and the disabled fast path."""

import pytest

from repro.obs import Observability
from repro.obs.metrics import (
    NULL_TIMER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounterAndGauge:
    def test_counter_arithmetic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_counter_noop_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value == 0

    def test_settable_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7)
        assert gauge.value == 7

    def test_callback_gauge_reports_even_when_disabled(self):
        # Callback gauges bridge the always-on stat dataclasses: they must
        # report regardless of the registry switch.
        registry = MetricsRegistry(enabled=False)
        backing = {"n": 0}
        gauge = registry.gauge("g", callback=lambda: backing["n"])
        backing["n"] = 42
        assert gauge.value == 42
        assert registry.snapshot()["g"] == 42

    def test_broken_callback_does_not_sink_snapshot(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("broken source")

        registry.gauge("bad", callback=boom)
        registry.counter("ok").inc()
        snap = registry.snapshot()
        assert snap["bad"] is None
        assert snap["ok"] == 1


class TestHistogram:
    def test_exact_accounting(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in [10, 20, 30, 40]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 100
        assert hist.min == 10
        assert hist.max == 40
        assert hist.mean == 25

    def test_percentiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(v)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(99) == pytest.approx(99.01)

    def test_percentile_edge_cases(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.percentile(50) is None
        hist.observe(7)
        assert hist.percentile(99) == 7
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_summary_keys(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(5)
        summary = hist.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "p50", "p90", "p99",
        }

    def test_timer_records_nanoseconds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.total >= 0


class TestDisabledFastPath:
    def test_disabled_timer_is_the_shared_singleton(self):
        # The zero-allocation fast path: every disabled time() call returns
        # the same NULL_TIMER object, never a fresh context.
        registry = MetricsRegistry(enabled=False)
        hist = registry.histogram("h")
        assert hist.time() is NULL_TIMER
        assert registry.timer("h") is NULL_TIMER
        with hist.time():
            pass
        assert hist.count == 0

    def test_enable_disable_switch(self):
        registry = MetricsRegistry(enabled=False)
        hist = registry.histogram("h")
        registry.enable()
        assert hist.time() is not NULL_TIMER
        registry.disable()
        assert hist.time() is NULL_TIMER


class TestRegistry:
    def test_create_or_return(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 9
        assert snap["h"]["count"] == 1
        registry.reset()
        snap = registry.snapshot()
        assert snap["c"] == 0
        assert snap["h"]["count"] == 0

    def test_instances_are_separate(self):
        # Two engines in one process must not mix numbers.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc()
        assert b.counter("c").value == 0

    def test_default_registry_is_global_and_starts_disabled(self):
        assert default_registry() is default_registry()
        assert default_registry().enabled is False

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]


class TestObservabilityBundle:
    def test_defaults_off(self):
        obs = Observability()
        assert not obs.metrics.enabled
        assert not obs.trace.enabled
        assert not obs.any_enabled

    def test_enable_disable(self):
        obs = Observability()
        obs.enable()
        assert obs.metrics.enabled and obs.trace.enabled
        assert obs.any_enabled
        obs.disable()
        assert not obs.any_enabled

    def test_constructor_flags(self):
        obs = Observability(enable_metrics=True)
        assert obs.metrics.enabled and not obs.trace.enabled
