"""Differential tests for the predicate compiler: compiled closures must be
observationally equivalent to the interpreter — same values (SQL
three-valued logic included), same canonical errors via the fallback — over
hand-picked truth tables AND a seeded random expression fuzzer."""

import random

import pytest

from repro.errors import ConditionError
from repro.lang import ast
from repro.lang.compiler import (
    STATS,
    CompiledPredicate,
    compile_predicate,
    compile_row_template,
)
from repro.lang.evaluator import Bindings, Evaluator, like_regex, _LIKE_CACHE
from repro.lang.exprparser import parse_expression_text as parse
from repro.condition.signature import generalize


E = Evaluator()


def both(text, rows=None, old=None, params=None):
    """Evaluate ``text`` under the interpreter and the compiled closure;
    assert they agree (value or canonical exception) and return the value."""
    expr = parse(text)
    bindings = Bindings(rows or {}, old, params)
    compiled = compile_predicate(expr, E)
    assert compiled is not None, f"not compilable: {text}"
    try:
        expected = E.evaluate(expr, bindings)
        failed = None
    except (ConditionError, TypeError) as exc:
        expected, failed = None, type(exc)
    if failed is not None:
        with pytest.raises(failed):
            compiled.evaluate(bindings)
        return None
    got = compiled.evaluate(bindings)
    assert got == expected and type(got) is type(expected), (
        f"{text!r}: compiled={got!r} interpreted={expected!r}"
    )
    return got


class TestKleeneTruthTables:
    """SQL three-valued logic, exhaustively on the connectives."""

    VALS = {"true": True, "false": False, "null": None}

    def rows(self, **cols):
        return {"t": dict(cols)}

    @pytest.mark.parametrize("a", ["true", "false", "null"])
    @pytest.mark.parametrize("b", ["true", "false", "null"])
    def test_and_or(self, a, b):
        rows = self.rows(a=self.VALS[a], b=self.VALS[b])
        both("t.a and t.b", rows)
        both("t.a or t.b", rows)

    @pytest.mark.parametrize("a", ["true", "false", "null"])
    def test_not(self, a):
        both("not t.a", self.rows(a=self.VALS[a]))

    @pytest.mark.parametrize("a", ["true", "false", "null"])
    @pytest.mark.parametrize("b", ["true", "false", "null"])
    @pytest.mark.parametrize("c", ["true", "false", "null"])
    def test_three_way_chains(self, a, b, c):
        rows = self.rows(
            a=self.VALS[a], b=self.VALS[b], c=self.VALS[c]
        )
        both("t.a and t.b and t.c", rows)
        both("t.a or t.b or t.c", rows)
        both("(t.a or t.b) and not t.c", rows)

    def test_and_short_circuits_before_error(self):
        # Interpreter stops at the first False; the error in the later arm
        # must not surface from the compiled form either.
        rows = self.rows(a=False, x=1)
        assert both("t.a and t.x < 'str'", rows) is False

    def test_null_comparison_is_null(self):
        rows = self.rows(x=None)
        assert both("t.x = 1", rows) is None
        assert both("t.x <> 1", rows) is None
        assert both("1 < t.x", rows) is None


class TestOperators:
    ROWS = {"emp": {"name": "bob", "salary": 100.0, "age": 30, "dept": None}}

    def test_between(self):
        assert both("emp.salary between 50 and 150", self.ROWS) is True
        assert both("emp.salary not between 50 and 150", self.ROWS) is False
        assert both("emp.dept between 'a' and 'z'", self.ROWS) is None
        assert both("emp.salary between 50 and null", self.ROWS) is None

    def test_in_list(self):
        assert both("emp.age in (10, 20, 30)", self.ROWS) is True
        assert both("emp.age in (10, 20)", self.ROWS) is False
        assert both("emp.age not in (10, 20)", self.ROWS) is True
        assert both("emp.age in (10, null)", self.ROWS) is None
        assert both("emp.age in (30, null)", self.ROWS) is True
        assert both("emp.dept in ('eng')", self.ROWS) is None

    def test_like(self):
        assert both("emp.name like 'b%'", self.ROWS) is True
        assert both("emp.name like '_ob'", self.ROWS) is True
        assert both("emp.name like 'z%'", self.ROWS) is False
        assert both("emp.name not like 'z%'", self.ROWS) is True
        assert both("emp.dept like 'e%'", self.ROWS) is None

    def test_like_non_literal_pattern(self):
        rows = {"t": {"s": "abc", "p": "a%"}}
        assert both("t.s like t.p", rows) is True

    def test_is_null(self):
        assert both("emp.dept is null", self.ROWS) is True
        assert both("emp.name is not null", self.ROWS) is True

    def test_arithmetic_and_division_error(self):
        assert both("emp.salary + emp.age * 2", self.ROWS) == 160.0
        both("emp.salary / 0", self.ROWS)  # canonical error from both
        assert both("emp.dept + 1", self.ROWS) is None

    def test_incomparable_error(self):
        both("emp.name < emp.age", self.ROWS)

    def test_params_and_old(self):
        rows = {"emp": {"salary": 100.0}}
        old = {"emp": {"salary": 80.0}}
        params = {"cap": 90.0}
        assert (
            both("emp.salary > :old.emp.salary", rows, old, params) is True
        )
        assert both(":new.emp.salary > :cap", rows, old, params) is True
        assert both(":old.salary < :cap", rows, old, params) is True

    def test_functions_and_late_registration(self):
        ev = Evaluator()
        expr = parse("shout(t.s) = 'HI'")
        compiled = compile_predicate(expr, ev)
        bindings = Bindings({"t": {"s": "hi"}})
        # Unknown function: the canonical error surfaces through fallback.
        with pytest.raises(ConditionError):
            compiled.evaluate(bindings)
        # Late registration is visible without recompiling (the functions
        # dict is passed live at call time).
        ev.register("shout", lambda s: s.upper())
        assert compiled.evaluate(bindings) is True

    def test_aggregates_not_compilable(self):
        assert compile_predicate(parse("count(t.x) > 1"), E) is None


class TestRandomDifferential:
    """Seeded fuzz: random expressions over random rows, compiled must
    track the interpreter on every sample (value or exception type)."""

    COLUMNS = ["emp.salary", "emp.age", "emp.name", "emp.dept"]

    def _value(self, rng):
        return rng.choice(
            [None, 0, 1, -5, 2.5, 100.0, "bob", "eng", "b%", True, False]
        )

    def _leaf(self, rng):
        pick = rng.random()
        if pick < 0.45:
            return rng.choice(self.COLUMNS)
        if pick < 0.55:
            return rng.choice([":cap", ":old.emp.salary", ":new.emp.age"])
        lit = rng.choice(["1", "2.5", "-3", "'bob'", "'b%'", "null", "0"])
        return lit

    def _expr(self, rng, depth):
        if depth <= 0:
            return self._leaf(rng)
        kind = rng.random()
        a = self._expr(rng, depth - 1)
        b = self._expr(rng, depth - 1)
        if kind < 0.25:
            op = rng.choice(["and", "or"])
            return f"({a} {op} {b})"
        if kind < 0.30:
            return f"(not {a})"
        if kind < 0.55:
            op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
            return f"({a} {op} {b})"
        if kind < 0.65:
            op = rng.choice(["+", "-", "*", "/"])
            return f"({a} {op} {b})"
        if kind < 0.72:
            neg = rng.choice(["", "not "])
            return f"({a} {neg}between {b} and {self._leaf(rng)})"
        if kind < 0.80:
            neg = rng.choice(["", "not "])
            items = ", ".join(
                self._leaf(rng) for _ in range(rng.randint(1, 3))
            )
            return f"({a} {neg}in ({items}))"
        if kind < 0.88:
            neg = rng.choice(["", "not "])
            pat = rng.choice(["'b%'", "'_ob'", "'%e%'", "'eng'"])
            return f"({a} {neg}like {pat})"
        if kind < 0.94:
            neg = rng.choice(["", "not "])
            return f"({a} is {neg}null)"
        return f"(- {a})"

    def _bindings(self, rng):
        def row():
            return {
                "salary": rng.choice([None, 0.0, 50.0, 100.0, -3.5]),
                "age": rng.choice([None, 0, 18, 30, 65]),
                "name": rng.choice([None, "bob", "alice", ""]),
                "dept": rng.choice([None, "eng", "toys"]),
            }

        return (
            {"emp": row()},
            {"emp": row()},
            {"cap": rng.choice([None, 10, 90.0, "eng"])},
        )

    def test_fuzz_compiled_equals_interpreted(self):
        rng = random.Random(0xE12)
        checked = 0
        for _ in range(400):
            text = self._expr(rng, rng.randint(1, 3))
            try:
                expr = parse(text)
            except Exception:
                continue
            compiled = compile_predicate(expr, E)
            if compiled is None:
                continue
            for _ in range(4):
                rows, old, params = self._bindings(rng)
                bindings = Bindings(rows, old, params)
                try:
                    expected = ("value", E.evaluate(expr, bindings))
                except (ConditionError, TypeError) as exc:
                    expected = ("error", type(exc))
                try:
                    got = ("value", compiled.evaluate(bindings))
                except (ConditionError, TypeError) as exc:
                    got = ("error", type(exc))
                assert got == expected, (
                    f"{text!r} on {rows!r}/{old!r}/{params!r}: "
                    f"compiled={got!r} interpreted={expected!r}"
                )
                checked += 1
        assert checked > 500  # the fuzzer actually exercised the subset


class TestRowTemplates:
    """The predicate-index shape: generalized template + constants tuple."""

    def test_template_binds_constant_row(self):
        # Residual templates carry bare (tvar-stripped) column refs, the
        # shape the predicate index stores.
        expr = parse("salary > 100 and name <> 'x'")
        template, constants = generalize(expr)
        slot_map = {i + 1: i for i in range(len(constants))}
        fn = compile_row_template(template, slot_map)
        assert fn is not None
        row = {"salary": 150.0, "name": "bob"}
        assert fn(row, tuple(constants), E.functions) is True
        # Same template, a different trigger's constant row: no recompile.
        assert fn(row, (200.0, "bob"), E.functions) is False
        assert fn({"salary": None, "name": "bob"}, (100.0, "x"),
                  E.functions) is None

    def test_template_differential(self):
        rng = random.Random(7)
        texts = [
            "age between 10 and 50 and dept in ('eng', 'toys')",
            "name like 'b%' or salary >= 90.5",
            "not (age = 30) and dept is not null",
        ]
        for text in texts:
            expr = parse(text)
            template, constants = generalize(expr)
            slot_map = {i + 1: i for i in range(len(constants))}
            fn = compile_row_template(template, slot_map)
            assert fn is not None
            for _ in range(30):
                row = {
                    "salary": rng.choice([None, 50.0, 100.0]),
                    "age": rng.choice([None, 5, 30, 60]),
                    "name": rng.choice([None, "bob", "zed"]),
                    "dept": rng.choice([None, "eng", "hr"]),
                }
                expected = E.evaluate(expr, Bindings({"t": row}))
                assert fn(row, tuple(constants), E.functions) == expected


class TestStatsAndInfra:
    def test_compile_counts(self):
        STATS.reset()
        compile_predicate(parse("1 < 2"), E)
        compile_predicate(parse("max(t.x) > 1"), E)  # aggregate: rejected
        assert STATS.compiles == 1
        assert STATS.compile_failures == 1

    def test_runtime_fallback_counted(self):
        STATS.reset()
        compiled = compile_predicate(parse("t.a = 1"), E)
        with pytest.raises(ConditionError):
            compiled.evaluate(Bindings({}))  # unknown tvar
        assert STATS.runtime_fallbacks == 1

    def test_source_introspection(self):
        compiled = compile_predicate(parse("t.a = 1"), E)
        assert "def _pred" in compiled.source


class TestLikeRegexMemoized:
    def test_same_pattern_same_regex(self):
        _LIKE_CACHE.clear()
        a = like_regex("b%")
        assert like_regex("b%") is a
        assert len(_LIKE_CACHE) == 1
        assert a.match("bob")

    def test_evaluator_uses_cache(self):
        _LIKE_CACHE.clear()
        rows = {"t": {"s": "bob"}}
        for _ in range(5):
            assert E.matches(parse("t.s like 'b_b'"), Bindings(rows))
        assert len(_LIKE_CACHE) == 1


class TestBindingsBind:
    def test_bind_shares_unchanged_maps(self):
        old = {"a": {"x": 1}}
        params = {"p": 2}
        base = Bindings({"a": {"x": 9}}, old, params)
        child = base.bind("b", {"y": 3})
        # rows is a fresh dict (the parent must not see the child's tvar)…
        assert "b" not in base.rows and child.rows["b"] == {"y": 3}
        # …but the untouched maps are shared, not copied (E12b).
        assert child.old_rows is base.old_rows
        assert child.params is base.params
        assert child.column("a", "x") == 9
        assert child.old_column("a", "x") == 1
