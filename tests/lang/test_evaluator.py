"""Unit tests for expression evaluation, including SQL three-valued logic
and aggregate (having-clause) evaluation."""

import pytest

from repro.errors import ConditionError
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse

E = Evaluator()


def ev(text, rows=None, old=None, params=None):
    return E.evaluate(parse(text), Bindings(rows or {}, old, params))


class TestScalars:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 / 4") == 2.5
        assert ev("-(2 + 3)") == -5

    def test_division_by_zero(self):
        with pytest.raises(ConditionError):
            ev("1 / 0")

    def test_comparisons(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("'a' <> 'b'") is True
        assert ev("3 >= 4") is False

    def test_incomparable(self):
        with pytest.raises(ConditionError):
            ev("1 < 'a'")


class TestColumnResolution:
    ROWS = {"emp": {"name": "bob", "salary": 100.0}}

    def test_qualified(self):
        assert ev("emp.salary", self.ROWS) == 100.0

    def test_bare_unambiguous(self):
        assert ev("salary", self.ROWS) == 100.0

    def test_bare_ambiguous(self):
        rows = {"a": {"x": 1}, "b": {"x": 2}}
        with pytest.raises(ConditionError):
            ev("x", rows)

    def test_unknown_column(self):
        with pytest.raises(ConditionError):
            ev("bogus", self.ROWS)

    def test_unknown_tvar(self):
        with pytest.raises(ConditionError):
            ev("dept.x", self.ROWS)


class TestParams:
    def test_new_old(self):
        rows = {"emp": {"salary": 200.0}}
        old = {"emp": {"salary": 100.0}}
        assert ev(":NEW.emp.salary", rows, old) == 200.0
        assert ev(":OLD.emp.salary", rows, old) == 100.0
        assert ev(":NEW.emp.salary - :OLD.emp.salary", rows, old) == 100.0

    def test_named_param(self):
        assert ev(":limit * 2", params={"limit": 10}) == 20

    def test_unbound_param(self):
        with pytest.raises(ConditionError):
            ev(":nope")

    def test_missing_old(self):
        with pytest.raises(ConditionError):
            ev(":OLD.emp.salary", {"emp": {"salary": 1.0}})


class TestThreeValuedLogic:
    ROWS = {"t": {"x": None, "y": 5}}

    def test_null_comparison_is_null(self):
        assert ev("x = 5", self.ROWS) is None
        assert ev("x <> 5", self.ROWS) is None

    def test_and_or_kleene(self):
        assert ev("x = 5 and y = 5", self.ROWS) is None
        assert ev("x = 5 and y = 6", self.ROWS) is False
        assert ev("x = 5 or y = 5", self.ROWS) is True
        assert ev("x = 5 or y = 6", self.ROWS) is None

    def test_not_null(self):
        assert ev("not x = 5", self.ROWS) is None

    def test_is_null(self):
        assert ev("x is null", self.ROWS) is True
        assert ev("y is null", self.ROWS) is False
        assert ev("x is not null", self.ROWS) is False

    def test_in_with_null(self):
        assert ev("y in (1, 2)", self.ROWS) is False
        assert ev("y in (5, 2)", self.ROWS) is True
        assert ev("y in (1, x)", self.ROWS) is None
        assert ev("x in (1, 2)", self.ROWS) is None

    def test_between_with_null(self):
        assert ev("y between 1 and 10", self.ROWS) is True
        assert ev("y between x and 10", self.ROWS) is None
        assert ev("y between 6 and x", self.ROWS) is False  # 6 > 5 decides

    def test_matches_requires_exactly_true(self):
        e = Evaluator()
        bindings = Bindings({"t": {"x": None}})
        assert not e.matches(parse("x = 1"), bindings)


class TestLike:
    ROWS = {"t": {"s": "hello world"}}

    def test_percent(self):
        assert ev("s like 'hello%'", self.ROWS) is True
        assert ev("s like '%world'", self.ROWS) is True
        assert ev("s like '%lo wo%'", self.ROWS) is True
        assert ev("s like 'xyz%'", self.ROWS) is False

    def test_underscore(self):
        assert ev("s like 'hell_ world'", self.ROWS) is True
        assert ev("s like 'hell__world'", self.ROWS) is True

    def test_regex_metachars_escaped(self):
        rows = {"t": {"s": "a.b"}}
        assert ev("s like 'a.b'", rows) is True
        assert ev("s like 'axb'", rows) is False


class TestFunctions:
    def test_builtin(self):
        assert ev("upper('abc')") == "ABC"
        assert ev("length('abcd')") == 4
        assert ev("abs(0 - 5)") == 5

    def test_custom_registration(self):
        e = Evaluator()
        e.register("double", lambda x: x * 2)
        assert e.evaluate(parse("double(21)"), Bindings()) == 42

    def test_unknown_function(self):
        with pytest.raises(ConditionError):
            ev("mystery(1)")

    def test_aggregate_outside_having_rejected(self):
        with pytest.raises(ConditionError):
            ev("count(*) > 1")


class TestAggregates:
    def _groups(self):
        rows = [
            {"dept": "a", "salary": 100.0},
            {"dept": "a", "salary": 200.0},
            {"dept": "a", "salary": None},
        ]
        return [Bindings({"emp": r}) for r in rows]

    def test_count_star_and_column(self):
        group = self._groups()
        bindings = group[-1]
        assert E.evaluate_aggregate(parse("count(*)"), group, bindings) == 3
        assert (
            E.evaluate_aggregate(parse("count(emp.salary)"), group, bindings)
            == 2
        )

    def test_sum_avg_min_max(self):
        group = self._groups()
        b = group[0]
        assert E.evaluate_aggregate(parse("sum(emp.salary)"), group, b) == 300.0
        assert E.evaluate_aggregate(parse("avg(emp.salary)"), group, b) == 150.0
        assert E.evaluate_aggregate(parse("min(emp.salary)"), group, b) == 100.0
        assert E.evaluate_aggregate(parse("max(emp.salary)"), group, b) == 200.0

    def test_empty_aggregate_is_null(self):
        assert E.evaluate_aggregate(parse("sum(emp.salary)"), [], Bindings()) is None

    def test_having_boolean_combination(self):
        group = self._groups()
        b = group[0]
        expr = parse("count(*) > 2 and avg(emp.salary) >= 150")
        assert E.evaluate_aggregate(expr, group, b) is True
        expr = parse("count(*) > 5 or max(emp.salary) = 200")
        assert E.evaluate_aggregate(expr, group, b) is True
        expr = parse("not count(*) > 2")
        assert E.evaluate_aggregate(expr, group, b) is False

    def test_having_mixes_group_columns(self):
        group = self._groups()
        b = Bindings({"emp": {"dept": "a", "salary": 100.0}})
        expr = parse("emp.dept = 'a' and count(*) = 3")
        assert E.evaluate_aggregate(expr, group, b) is True
