"""Unit tests for the TriggerMan command parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_command


class TestCreateTrigger:
    def test_paper_example_update_fred(self):
        cmd = parse_command(
            "create trigger updateFred from emp on update(emp.salary) "
            "when emp.name = 'Bob' "
            "do execSQL 'update emp set salary=:NEW.emp.salary "
            "where emp.name= ''Fred'''"
        )
        assert cmd.name == "updateFred"
        assert cmd.from_list == (ast.FromItem("emp"),)
        assert cmd.event == ast.EventSpec("update", "emp", ("salary",))
        assert isinstance(cmd.action, ast.ExecSqlAction)
        assert ":NEW.emp.salary" in cmd.action.sql

    def test_paper_example_iris(self):
        cmd = parse_command(
            "create trigger IrisHouseAlert on insert to house "
            "from salesperson s, house h, represents r "
            "when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno "
            "do raise event NewHouseInIrisNeighborhood(h.hno, h.address)"
        )
        assert [f.tvar for f in cmd.from_list] == ["s", "h", "r"]
        assert cmd.event.operation == "insert"
        assert cmd.event.source == "house"
        assert isinstance(cmd.action, ast.RaiseEventAction)
        assert len(cmd.action.args) == 2

    def test_trigger_set_membership(self):
        cmd = parse_command(
            "create trigger t1 in mySet from emp do raise event E"
        )
        assert cmd.set_name == "mySet"

    def test_flags(self):
        cmd = parse_command(
            "create trigger t1 disabled from emp do raise event E"
        )
        assert cmd.flags == ("DISABLED",)

    def test_event_after_from_with_from_keyword(self):
        cmd = parse_command(
            "create trigger t from emp on delete from emp do raise event E"
        )
        assert cmd.event.operation == "delete"
        assert cmd.event.source == "emp"

    def test_insert_or_update(self):
        cmd = parse_command(
            "create trigger t from emp on insert or update to emp "
            "do raise event E"
        )
        assert cmd.event.operation == "insert_or_update"

    def test_group_by_having(self):
        cmd = parse_command(
            "create trigger t from emp when emp.salary > 0 "
            "group by emp.dept having count(*) > 5 and avg(emp.salary) > 100 "
            "do raise event Busy(emp.dept)"
        )
        assert cmd.group_by == (ast.ColumnRef("emp", "dept"),)
        assert cmd.having is not None

    def test_call_action(self):
        cmd = parse_command("create trigger t from emp do call my_handler")
        assert cmd.action == ast.CallAction("my_handler")

    def test_no_when_clause(self):
        cmd = parse_command("create trigger t from emp on insert do raise event E")
        assert cmd.when is None

    def test_duplicate_on_rejected(self):
        with pytest.raises(ParseError):
            parse_command(
                "create trigger t on insert to emp from emp on delete from emp "
                "do raise event E"
            )

    def test_missing_do_rejected(self):
        with pytest.raises(ParseError):
            parse_command("create trigger t from emp when emp.a = 1")

    def test_bad_action_rejected(self):
        with pytest.raises(ParseError):
            parse_command("create trigger t from emp do fly")

    def test_event_multi_source_column_list_rejected(self):
        with pytest.raises(ParseError):
            parse_command(
                "create trigger t from a, b on update(a.x, b.y) "
                "do raise event E"
            )


class TestOtherCommands:
    def test_drop_trigger(self):
        assert parse_command("drop trigger t1") == ast.DropTriggerStatement("t1")

    def test_create_trigger_set(self):
        cmd = parse_command("create trigger set s1 comment 'my set'")
        assert cmd == ast.CreateTriggerSetStatement("s1", "my set")

    def test_drop_trigger_set(self):
        assert parse_command("drop trigger set s1") == ast.DropTriggerSetStatement(
            "s1"
        )

    def test_enable_disable(self):
        cmd = parse_command("disable trigger t1")
        assert cmd == ast.AlterTriggerStatement("t1", False, False)
        cmd = parse_command("enable trigger set s1")
        assert cmd == ast.AlterTriggerStatement("s1", True, True)

    def test_define_data_source_from_table(self):
        cmd = parse_command("define data source emp from emp_table in hr")
        assert cmd.table == "emp_table"
        assert cmd.connection == "hr"

    def test_define_stream_source(self):
        cmd = parse_command(
            "define data source ticks as stream "
            "(symbol varchar(8), price float)"
        )
        assert cmd.stream_columns == (
            ("symbol", "varchar(8)"),
            ("price", "float"),
        )

    def test_drop_data_source(self):
        assert parse_command("drop data source s") == ast.DropDataSourceStatement(
            "s"
        )

    def test_unknown_command(self):
        with pytest.raises(ParseError):
            parse_command("explode everything")
