"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.scanner import (
    EOF,
    IDENT,
    NUMBER,
    OP,
    PARAM,
    STRING,
    TokenStream,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("create TRIGGER t1")
        assert [t.kind for t in tokens] == [IDENT, IDENT, IDENT, EOF]
        assert tokens[0].matches_keyword("CREATE")
        assert tokens[1].matches_keyword("trigger")

    def test_numbers(self):
        assert values("42 3.5 1e3 2.5e-2 .75") == ["42", "3.5", "1e3", "2.5e-2", ".75"]
        assert all(k == NUMBER for k in kinds("42 3.5")[:-1])

    def test_dot_disambiguation(self):
        # emp.salary is IDENT OP(.) IDENT, not a float
        tokens = tokenize("emp.salary > 1.5")
        assert [t.kind for t in tokens[:-1]] == [IDENT, OP, IDENT, OP, NUMBER]

    def test_string_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_params(self):
        tokens = tokenize(":NEW.emp.salary :old.x :limit")
        assert tokens[0].kind == PARAM and tokens[0].value == "NEW"
        assert tokens[5].kind == PARAM and tokens[5].value == "old"
        assert tokens[-2].kind == PARAM and tokens[-2].value == "limit"

    def test_bare_colon_rejected(self):
        with pytest.raises(ParseError):
            tokenize("a : b")

    def test_operators(self):
        assert values("<= >= <> != = < > ( ) , . + - * / ;") == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".",
            "+", "-", "*", "/", ";",
        ]

    def test_comments_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestTokenStream:
    def test_accept_expect(self):
        stream = TokenStream.from_text("from emp")
        assert stream.accept_keyword("FROM") == "FROM"
        token = stream.expect_ident("source")
        assert token.value == "emp"
        assert stream.at_end()

    def test_expect_failure(self):
        stream = TokenStream.from_text("when")
        with pytest.raises(ParseError):
            stream.expect_keyword("FROM")

    def test_peek_ahead(self):
        stream = TokenStream.from_text("a b c")
        assert stream.peek(2).value == "c"
        assert stream.peek().value == "a"

    def test_trailing_semicolon_ok(self):
        stream = TokenStream.from_text("a ;")
        stream.next()
        stream.expect_end()

    def test_trailing_garbage_rejected(self):
        stream = TokenStream.from_text("a b")
        stream.next()
        with pytest.raises(ParseError):
            stream.expect_end()
