"""Unit tests for the shared expression grammar."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.exprparser import parse_expression_text as parse


class TestLiterals:
    def test_numbers(self):
        assert parse("42") == ast.Literal(42)
        assert parse("3.5") == ast.Literal(3.5)
        assert parse("-7") == ast.Literal(-7)  # folded negation
        assert parse("1e3") == ast.Literal(1000.0)

    def test_strings(self):
        assert parse("'abc'") == ast.Literal("abc")

    def test_named_constants(self):
        assert parse("NULL") == ast.Literal(None)
        assert parse("true") == ast.Literal(True)
        assert parse("FALSE") == ast.Literal(False)


class TestReferences:
    def test_bare_column(self):
        assert parse("salary") == ast.ColumnRef(None, "salary")

    def test_qualified_column(self):
        assert parse("emp.salary") == ast.ColumnRef("emp", "salary")

    def test_new_param(self):
        assert parse(":NEW.emp.salary") == ast.ParamRef("NEW", "emp", "salary")
        assert parse(":OLD.salary") == ast.ParamRef("OLD", None, "salary")

    def test_named_param(self):
        assert parse(":limit") == ast.ParamRef("PARAM", None, "limit")

    def test_new_requires_column(self):
        with pytest.raises(ParseError):
            parse(":NEW + 1")


class TestOperators:
    def test_precedence_arith_over_comparison(self):
        expr = parse("a + b * 2 > 10")
        assert isinstance(expr, ast.BinaryOp) and expr.op == ">"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = parse("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, ast.BoolOp) and expr.op == "OR"
        assert isinstance(expr.args[1], ast.BoolOp)
        assert expr.args[1].op == "AND"

    def test_not(self):
        expr = parse("not a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_parentheses(self):
        expr = parse("(a = 1 or b = 2) and c = 3")
        assert expr.op == "AND"
        assert expr.args[0].op == "OR"

    def test_neq_normalized(self):
        assert parse("a != 1") == parse("a <> 1")

    def test_nary_and_flattened(self):
        expr = parse("a = 1 and b = 2 and c = 3")
        assert isinstance(expr, ast.BoolOp)
        assert len(expr.args) == 3


class TestPredicates:
    def test_like(self):
        expr = parse("name like 'A%'")
        assert expr.op == "LIKE"

    def test_not_like(self):
        expr = parse("name not like 'A%'")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_in_list(self):
        expr = parse("dept in ('a', 'b')")
        assert isinstance(expr, ast.InList)
        assert not expr.negated
        assert len(expr.items) == 2

    def test_not_in(self):
        expr = parse("dept not in ('a')")
        assert expr.negated

    def test_between(self):
        expr = parse("age between 20 and 30")
        assert isinstance(expr, ast.Between)
        assert expr.low == ast.Literal(20)

    def test_not_between(self):
        assert parse("age not between 1 and 2").negated

    def test_is_null(self):
        expr = parse("x is null")
        assert isinstance(expr, ast.IsNull) and not expr.negated
        assert parse("x is not null").negated

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            parse("a not 5")


class TestFunctions:
    def test_call(self):
        expr = parse("lower(name)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "lower"

    def test_count_star(self):
        expr = parse("count(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_nested(self):
        expr = parse("abs(a - b)")
        assert isinstance(expr.args[0], ast.BinaryOp)


class TestRenderRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a = 1",
            "emp.salary > 80000",
            "a = 1 and b = 2 or not c = 3",
            "name like 'A%'",
            "dept in ('a', 'b', 'c')",
            "age between 20 and 30",
            "x is not null",
            "abs(a * -2 + 1) <= 10",
        ],
    )
    def test_parse_render_parse_fixpoint(self, text):
        first = parse(text)
        again = parse(first.render())
        assert first == again
        assert first.render() == again.render()
