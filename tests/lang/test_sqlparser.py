"""Unit tests for the embedded SQL parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.sqlparser import parse_sql


class TestCreate:
    def test_create_table(self):
        stmt = parse_sql(
            "create table emp (eno integer not null, name varchar(40) null, "
            "salary float)"
        )
        assert stmt.table == "emp"
        assert stmt.columns[0] == ast.ColumnDef("eno", "integer", False)
        assert stmt.columns[1] == ast.ColumnDef("name", "varchar(40)", True)

    def test_create_index(self):
        stmt = parse_sql("create index i on t (a, b)")
        assert stmt.columns == ("a", "b")
        assert not stmt.clustered
        assert stmt.using == "btree"

    def test_create_clustered_index_hash_method(self):
        stmt = parse_sql("create clustered index i on t (a)")
        assert stmt.clustered
        stmt = parse_sql("create index i on t (a) using hash")
        assert stmt.using == "hash"

    def test_bad_index_method(self):
        with pytest.raises(ParseError):
            parse_sql("create index i on t (a) using bitmap")

    def test_clustered_table_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("create clustered table t (a integer)")


class TestDml:
    def test_insert_positional(self):
        stmt = parse_sql("insert into t values (1, 'x', null)")
        assert stmt.columns == ()
        assert len(stmt.values) == 3

    def test_insert_with_columns(self):
        stmt = parse_sql("insert into t (a, b) values (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_update(self):
        stmt = parse_sql("update t set a = a + 1, b = 'x' where a > 0")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_sql("delete from t where a = 1")
        assert stmt.table == "t"

    def test_delete_all(self):
        assert parse_sql("delete from t").where is None


class TestSelect:
    def test_star(self):
        stmt = parse_sql("select * from t")
        assert isinstance(stmt.projection[0], ast.Star)

    def test_projection_order_limit(self):
        stmt = parse_sql(
            "select a, b * 2 from t where a > 1 order by b desc, a limit 5"
        )
        assert len(stmt.projection) == 2
        assert stmt.order_by[0][1] is True  # desc
        assert stmt.order_by[1][1] is False
        assert stmt.limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse_sql("select * from t limit many")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("select * from t garbage")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_sql("vacuum t")
