"""Rendering tests for AST nodes used in catalogs and console output."""

import pytest

from repro.lang import ast
from repro.lang.exprparser import parse_expression_text as parse


class TestExpressionRender:
    def test_literal_escaping(self):
        assert ast.Literal("it's").render() == "'it''s'"
        assert ast.Literal(None).render() == "NULL"
        assert ast.Literal(True).render() == "TRUE"
        assert ast.Literal(False).render() == "FALSE"

    def test_placeholder(self):
        assert ast.Placeholder(3).render() == "CONSTANT_3"

    def test_param_refs(self):
        assert ast.ParamRef("NEW", "emp", "salary").render() == (
            ":NEW.emp.salary"
        )
        assert ast.ParamRef("OLD", None, "x").render() == ":OLD.x"
        assert ast.ParamRef("PARAM", None, "limit").render() == ":limit"

    def test_compound(self):
        text = "(a = 1) AND ((b LIKE 'x%') OR (NOT (c IS NULL)))"
        expr = parse(text)
        assert parse(expr.render()) == expr


class TestStatementRender:
    def test_from_item(self):
        assert ast.FromItem("emp", "e").render() == "emp e"
        assert ast.FromItem("emp").render() == "emp"
        assert ast.FromItem("emp", "e").tvar == "e"
        assert ast.FromItem("emp").tvar == "emp"

    def test_event_spec(self):
        spec = ast.EventSpec("update", "emp", ("salary", "dept"))
        assert spec.render() == "update(salary, dept) to emp"
        assert ast.EventSpec("insert").render() == "insert"

    def test_actions(self):
        assert ast.ExecSqlAction("select 'a'").render() == (
            "execSQL 'select ''a'''"
        )
        raise_action = ast.RaiseEventAction(
            "E", (parse("emp.x"), ast.Literal(1))
        )
        assert raise_action.render() == "raise event E(emp.x, 1)"
        assert ast.CallAction("fn").render() == "call fn"


class TestTransform:
    def test_transform_replaces_bottom_up(self):
        expr = parse("a + 1 > 2")

        def bump(node):
            if isinstance(node, ast.Literal) and isinstance(node.value, int):
                return ast.Literal(node.value * 10)
            return None

        out = expr.transform(bump)
        assert out == parse("a + 10 > 20")
        # original untouched (nodes are immutable)
        assert expr == parse("a + 1 > 2")

    def test_walk_preorder(self):
        expr = parse("a = 1 and b = 2")
        kinds = [type(n).__name__ for n in expr.walk()]
        assert kinds[0] == "BoolOp"
        assert kinds.count("BinaryOp") == 2
        assert kinds.count("Literal") == 2
