"""Acceptance: randomized crash-loop equivalence.

A driver feeds stream updates to an engine while killing it at randomized
fault sites (log append, fsync, enqueue, dequeue, firing, action
execution, completion accounting — with occasional torn writes), rebooting
and recovering after every kill, until at least ``WAL_CRASH_COUNT``
(default 100) crashes have landed.  The harness never trusts an
in-process acknowledgement: which tokens count as *accepted* is decided
purely from durable evidence after recovery —

* rows still in the queue table (redo restored them),
* TOKEN_DEQUEUE records (logged before the row delete), and
* checkpoint-carried in-flight state (surfaced as replay tokens).

The cumulative firing ledger is folded from ACTION_FIRED records, keyed
by ``(seq, idx)`` so a replayed append of the same firing never counts
twice.  At the end, an uncrashed oracle engine processes exactly the
accepted updates; its ledger must equal the survivor's as a multiset of
``(trigger, digest)`` — no firing lost, none invented.
"""

import json
import os
import random
from collections import Counter

import pytest

from conftest import open_engine
from repro.engine.descriptors import Operation
from repro.wal import SimDisk, SimulatedCrash
from repro.wal.log import ACTION_FIRED, TOKEN_DEQUEUE

SEED = int(os.environ.get("WAL_CRASH_SEED", "1999"))
TARGET_CRASHES = int(os.environ.get("WAL_CRASH_COUNT", "100"))

#: (site, max randomized hit count) — every stage of the token pipeline
SITES = [
    ("wal.append", 6),
    ("wal.sync", 3),
    ("disk.log_append", 6),
    ("disk.sync", 3),
    ("queue.enqueue", 3),
    ("queue.dequeue", 3),
    ("engine.fire", 3),
    ("engine.action", 3),
    ("engine.token_done", 2),
]

TRIGGERS = [
    "create trigger high from s when s.v > 50 do raise event High(s.k)",
    "create trigger low from s when s.v < 50 do raise event Low(s.k)",
    "create trigger seen from s do raise event Seen(s.k, s.v)",
]


def _boot(disk, sync="always"):
    tman = open_engine(disk, sync=sync)
    if "s" not in tman.registry:
        tman.define_stream("s", [("k", "integer"), ("v", "integer")])
        for text in TRIGGERS:
            tman.create_trigger(text)
    return tman


def _accept(payload, accepted):
    new = json.loads(payload).get("new") or {}
    if "k" in new:
        accepted[new["k"]] = new["v"]


def _scan(tman, ledger, accepted):
    """Fold this incarnation's durable evidence into the cumulative caches
    (call right after boot and right before any compacting checkpoint)."""
    for record in tman.catalog_db.wal.scan():
        if record.rtype == ACTION_FIRED:
            body = record.json()
            ledger[(body["seq"], body["idx"])] = (body["trigger"], body["digest"])
        elif record.rtype == TOKEN_DEQUEUE:
            _accept(record.json()["payload"], accepted)
    for _rid, row in tman.queue.table.scan():
        _accept(row[3], accepted)
    for token in tman._replay:
        _accept(token.payload, accepted)


def _crash_loop(sync, target_crashes, seed):
    rng = random.Random(seed)
    disk = SimDisk()
    ledger, accepted = {}, {}
    tman = _boot(disk, sync)  # setup incarnation runs unfaulted
    next_k = 0
    iterations = 0
    while disk.faults.crashes < target_crashes:
        iterations += 1
        assert iterations < target_crashes * 30, "crash loop failed to converge"
        site, span = SITES[rng.randrange(len(SITES))]
        disk.faults.arm(site, rng.randint(1, span), torn=rng.random() < 0.3)
        try:
            for _ in range(rng.randint(1, 4)):
                k = next_k
                next_k += 1
                tman.push(
                    "s", Operation.INSERT, new={"k": k, "v": rng.randrange(100)}
                )
            tman.process_all()
            if rng.random() < 0.25:
                _scan(tman, ledger, accepted)  # compaction drops records
                tman.checkpoint()
            disk.faults.disarm()
        except SimulatedCrash:
            disk.faults.disarm()
            disk.crash()
            tman = _boot(disk, sync)
            _scan(tman, ledger, accepted)

    # Final incarnation: drain everything unfaulted, collect the last word.
    tman.process_all()
    _scan(tman, ledger, accepted)
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay

    # Oracle: a machine that never crashes processes exactly the accepted
    # updates, in submission order.
    oracle = _boot(SimDisk())
    for k in sorted(accepted):
        oracle.push("s", Operation.INSERT, new={"k": k, "v": accepted[k]})
    oracle.process_all()
    oracle_ledger = {}
    _scan(oracle, oracle_ledger, {})
    return disk, ledger, oracle_ledger


def test_crash_loop_firing_set_equals_oracle():
    disk, ledger, oracle_ledger = _crash_loop("always", TARGET_CRASHES, SEED)
    assert disk.faults.crashes >= TARGET_CRASHES
    # The loop must have died at a healthy variety of pipeline stages.
    assert len(set(disk.faults.seen)) >= 5, disk.faults.seen
    assert Counter(ledger.values()) == Counter(oracle_ledger.values())


def test_crash_loop_under_group_commit():
    """Group commit widens the at-least-once window for action *effects*,
    but the (seq, idx)-keyed durable ledger still reconciles to exactly
    the oracle's firing multiset."""
    disk, ledger, oracle_ledger = _crash_loop("group", 25, SEED + 1)
    assert disk.faults.crashes >= 25
    assert Counter(ledger.values()) == Counter(oracle_ledger.values())


def _durable_snapshot(disk, tman):
    """Durable state that recovery must not change: every page file's
    contents plus the logical token records.  (The raw log is *allowed* to
    grow across boots — catalog replay rebuilds constant tables, logging
    fresh page images with new LSNs — but the images must redo to the same
    bytes and no token record may appear or vanish.)"""
    pages = {
        name: [bytes(page) for page in pager._durable]
        for name, pager in disk.pagers.items()
    }
    tokens = [
        (r.rtype, r.json())
        for r in tman.catalog_db.wal.scan()
        if r.rtype in (TOKEN_DEQUEUE, ACTION_FIRED)
    ]
    return pages, tokens


def test_double_recovery_is_a_noop(disk):
    """Recover, crash without doing any work, recover again: the second
    pass must land on byte-identical durable state and the same replay."""
    tman = _boot(disk)
    for i in range(5):
        tman.push("s", Operation.INSERT, new={"k": i, "v": 75})
    disk.faults.arm("engine.fire", 2)
    with pytest.raises(SimulatedCrash):
        tman.process_all()
    disk.faults.disarm()
    disk.crash()

    first = _boot(disk)
    replay_first = [(t.seq, dict(t.fired)) for t in first._replay]
    disk.crash()  # nothing processed: only volatile state is lost
    durable_first = _durable_snapshot(disk, first)

    second = _boot(disk)
    replay_second = [(t.seq, dict(t.fired)) for t in second._replay]
    disk.crash()
    durable_second = _durable_snapshot(disk, second)

    assert replay_first == replay_second
    assert durable_first == durable_second
