"""Fuzzy checkpoints: flush + record + compact, end to end on a Database."""

from conftest import open_database
from repro.sql.schema import schema
from repro.wal.log import CHECKPOINT


def _emp(db):
    return db.create_table(
        schema("emp", ("eno", "integer"), ("name", "varchar(40)"),
               registry=db.registry)
    )


def test_checkpoint_flushes_and_compacts(disk):
    db = open_database(disk)
    table = _emp(db)
    for i in range(200):
        table.insert((i, f"e{i}"))
    bytes_before = db.wal.size()
    report = db.checkpoint()
    assert report["pages_flushed"] > 0
    assert report["log_bytes_after"] < bytes_before
    # The checkpoint record is the only thing left in the log.
    records = db.wal.scan()
    assert [r.rtype for r in records] == [CHECKPOINT]
    body = records[0].json()
    assert body["incomplete"] == []
    assert body["page_lsns"]  # carries the durable page-LSN table


def test_recovery_after_checkpoint_redoes_nothing(disk):
    db = open_database(disk)
    table = _emp(db)
    for i in range(50):
        table.insert((i, f"e{i}"))
    db.checkpoint()
    disk.crash()
    db2 = open_database(disk)
    assert db2.recovery.redo_applied == 0
    assert db2.table("emp").count() == 50


def test_mutations_after_checkpoint_are_redone(disk):
    db = open_database(disk)
    table = _emp(db)
    table.insert((1, "before"))
    db.checkpoint()
    table.insert((2, "after"))
    db.wal.flush()
    disk.crash()  # pages with the second row were never flushed
    db2 = open_database(disk)
    assert db2.recovery.redo_applied > 0
    assert sorted(r[1] for r in db2.table("emp").rows()) == ["after", "before"]


def test_close_checkpoints_and_bounds_the_log(disk):
    db = open_database(disk)
    table = _emp(db)
    for i in range(100):
        table.insert((i, f"e{i}"))
    db.close()
    # After a clean close, recovery has nothing to do and the log holds only
    # the final checkpoint.
    db2 = open_database(disk)
    assert db2.recovery.redo_applied == 0
    assert db2.recovery.incomplete == []
    assert db2.table("emp").count() == 100


def test_checkpoint_without_compaction_keeps_history(disk):
    db = open_database(disk)
    table = _emp(db)
    table.insert((1, "x"))
    before = len(db.wal.scan())
    db.checkpoint(compact=False)
    after = db.wal.scan()
    assert len(after) == before + 1  # history + the checkpoint record
    assert after[-1].rtype == CHECKPOINT
