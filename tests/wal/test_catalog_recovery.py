"""Crash/restart of the trigger catalog (satellite: catalog durability).

The trigger catalog lives in ordinary tman_* tables inside the catalog
database, so its durability rides on the WAL like any other data.  These
tests kill the process before and after the log is forced and check that
descriptors come back byte-identical — and that stream-fed triggers, whose
materialized memories cannot be rebuilt from a base table, are re-pinned
for their lifetime on reboot.
"""

import pytest

from conftest import open_engine
from repro.engine.descriptors import Operation
from repro.wal import SimulatedCrash

EMP_TRIGGER = (
    "create trigger highpaid from emp on insert "
    "when emp.salary > 100 do raise event HighPaid(emp.name)"
)
DEPT_TRIGGER = (
    "create trigger newdept from emp on insert "
    "do raise event NewDept(emp.dept)"
)
JOIN_TRIGGER = (
    "create trigger j from a, b when a.k = b.k do raise event J(a.k)"
)


def _engine_with_emp(disk, sync="always"):
    tman = open_engine(disk, sync=sync)
    if "emp" not in tman.registry:
        tman.define_table(
            "emp",
            [("name", "varchar(20)"), ("salary", "float"),
             ("dept", "varchar(20)")],
        )
    return tman


def test_descriptors_identical_after_kill_past_flush(disk):
    tman = _engine_with_emp(disk)
    tman.create_trigger(EMP_TRIGGER)
    tman.create_trigger(DEPT_TRIGGER)
    before = tman.catalog.list_triggers()
    disk.crash()  # sync=always: every log append is already durable

    tman2 = _engine_with_emp(disk)
    assert tman2.catalog.list_triggers() == before
    # The replayed trigger is live, not just listed.
    events = []
    tman2.register_for_event("HighPaid", lambda n: events.append(n.args))
    tman2.insert("emp", {"name": "ada", "salary": 200.0, "dept": "eng"})
    tman2.process_all()
    assert events == [("ada",)]


def test_kill_before_flush_loses_the_definition_cleanly(disk):
    tman = _engine_with_emp(disk, sync="off")
    tman.catalog_db.wal.flush()  # table + data source are durable
    tman.create_trigger(EMP_TRIGGER)
    disk.crash()  # the trigger's catalog rows never reached the disk

    tman2 = _engine_with_emp(disk, sync="off")
    assert tman2.catalog.list_triggers() == []
    # Nothing half-written blocks redefining it.
    tman2.create_trigger(EMP_TRIGGER)
    assert [row["name"] for row in tman2.catalog.list_triggers()] == ["highpaid"]


def test_kill_after_explicit_flush_keeps_the_definition(disk):
    tman = _engine_with_emp(disk, sync="off")
    tman.create_trigger(EMP_TRIGGER)
    before = tman.catalog.list_triggers()
    tman.catalog_db.wal.flush()
    disk.crash()

    tman2 = _engine_with_emp(disk, sync="off")
    assert tman2.catalog.list_triggers() == before


def test_stream_fed_trigger_is_repinned_on_reboot(disk):
    tman = open_engine(disk)
    tman.define_stream("a", [("k", "integer")])
    tman.define_stream("b", [("k", "integer")])
    tid = tman.create_trigger(JOIN_TRIGGER)
    assert tid in tman._permanent_pins
    disk.crash()

    tman2 = open_engine(disk)
    assert tid in tman2._permanent_pins
    assert tman2.cache.current_pins() >= 1  # the runtime holds its lifetime pin
    # The join memory works across the reboot (both inputs post-crash: the
    # stream's pre-crash alpha memory is legitimately volatile state).
    events = []
    tman2.register_for_event("J", lambda n: events.append(n.args))
    tman2.push("b", Operation.INSERT, new={"k": 1})
    tman2.process_all()
    tman2.push("a", Operation.INSERT, new={"k": 1})
    tman2.process_all()
    assert events == [(1,)]


def test_disabled_flag_survives_a_crash(disk):
    tman = _engine_with_emp(disk)
    tman.create_trigger(EMP_TRIGGER)
    tman.set_trigger_enabled("highpaid", False)
    disk.crash()

    tman2 = _engine_with_emp(disk)
    (row,) = tman2.catalog.list_triggers()
    assert row["isEnabled"] is False
    assert tman2._enabled[row["triggerID"]] is False


def test_crash_mid_creation_leaves_catalog_usable(disk):
    """Kill the process partway through CREATE TRIGGER's catalog writes.
    The trigger may or may not have made it to the trigger table, but the
    survivor must reboot and accept definitions either way."""
    tman = _engine_with_emp(disk)
    disk.faults.arm("wal.append", 2)
    with pytest.raises(SimulatedCrash):
        tman.create_trigger(EMP_TRIGGER)
    disk.faults.disarm()
    disk.crash()

    tman2 = _engine_with_emp(disk)
    names = [row["name"] for row in tman2.catalog.list_triggers()]
    if "highpaid" not in names:
        tman2.create_trigger(EMP_TRIGGER)
    events = []
    tman2.register_for_event("HighPaid", lambda n: events.append(n.args))
    tman2.insert("emp", {"name": "bob", "salary": 500.0, "dept": "ops"})
    tman2.process_all()
    assert events == [("bob",)]
