"""The log itself: framing, CRCs, torn-tail repair, group commit."""

import os

import pytest

from repro.errors import WalError
from repro.wal.log import (
    ACTION_FIRED,
    MAGIC,
    TOKEN_DONE,
    FileLogStorage,
    MemoryLogStorage,
    WriteAheadLog,
    encode_record,
    scan_records,
)


def test_lsns_are_assigned_monotonically():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    lsns = [wal.append(TOKEN_DONE, b"{}") for _ in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    assert wal.last_lsn == wal.durable_lsn == 5


def test_records_round_trip_through_scan():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    wal.append_json(TOKEN_DONE, {"seq": 7})
    wal.append_json(ACTION_FIRED, {"seq": 8, "digest": "abc"})
    records = wal.scan()
    assert [r.rtype for r in records] == [TOKEN_DONE, ACTION_FIRED]
    assert records[0].json() == {"seq": 7}
    assert records[1].json()["digest"] == "abc"


def test_page_image_round_trip():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    data = bytes(range(256)) * 16  # 4096 bytes
    lsn = wal.log_page("emp.tbl", 3, data)
    assert wal.page_lsns[("emp.tbl", 3)] == lsn
    (record,) = wal.scan()
    assert record.page_image() == ("emp.tbl", 3, data)


def test_scan_stops_at_crc_mismatch():
    storage = MemoryLogStorage()
    wal = WriteAheadLog(storage, sync="always")
    wal.append(TOKEN_DONE, b"first")
    wal.append(TOKEN_DONE, b"second")
    # Flip a payload byte of the second record.
    storage.data[-1] ^= 0xFF
    records, valid = scan_records(bytes(storage.data))
    assert len(records) == 1
    assert records[0].payload == b"first"
    assert valid < len(storage.data)


def test_torn_tail_is_truncated_on_open():
    storage = MemoryLogStorage()
    wal = WriteAheadLog(storage, sync="always")
    wal.append(TOKEN_DONE, b"keep me")
    good_size = storage.size()
    # A crash mid-append leaves half a record behind.
    torn = encode_record(2, TOKEN_DONE, b"torn away")
    storage.append(torn[: len(torn) // 2])
    reopened = WriteAheadLog(storage, sync="always")
    assert storage.size() == good_size
    assert [r.payload for r in reopened.scan()] == [b"keep me"]
    # LSN assignment resumes after the last valid record.
    assert reopened.append(TOKEN_DONE, b"next") == 2


def test_bad_magic_is_rejected():
    storage = MemoryLogStorage()
    storage.append(b"definitely not a wal file")
    with pytest.raises(WalError):
        WriteAheadLog(storage)


def test_group_commit_batches_fsyncs():
    storage = MemoryLogStorage()
    wal = WriteAheadLog(storage, sync="group", group_size=10)
    for _ in range(25):
        wal.append(TOKEN_DONE, b"x")
    # 25 appends with group_size=10: two automatic flushes, 5 still buffered.
    assert wal.fsyncs == 2
    assert wal.durable_lsn == 20
    wal.flush()
    assert wal.durable_lsn == 25


def test_sync_always_flushes_every_append():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    for _ in range(5):
        wal.append(TOKEN_DONE, b"x")
    assert wal.fsyncs == 5
    assert wal.durable_lsn == 5


def test_sync_off_defers_until_explicit_flush():
    wal = WriteAheadLog(MemoryLogStorage(), sync="off")
    for _ in range(50):
        wal.append(TOKEN_DONE, b"x")
    assert wal.fsyncs == 0
    assert wal.durable_lsn == 0
    assert wal.scan() == []  # nothing durable yet
    wal.flush()
    assert wal.durable_lsn == 50
    assert len(wal.scan()) == 50


def test_flush_upto_is_a_noop_when_already_durable():
    wal = WriteAheadLog(MemoryLogStorage(), sync="off")
    lsn = wal.append(TOKEN_DONE, b"x")
    wal.flush(upto=lsn)
    fsyncs = wal.fsyncs
    wal.flush(upto=lsn)  # already durable through lsn
    assert wal.fsyncs == fsyncs


def test_compact_keeps_records_from_lsn():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    for i in range(10):
        wal.append_json(TOKEN_DONE, {"seq": i})
    wal.compact(keep_from_lsn=8)
    assert [r.lsn for r in wal.scan()] == [8, 9, 10]
    # LSNs keep increasing after compaction.
    assert wal.append(TOKEN_DONE, b"x") == 11


def test_unknown_sync_mode_is_rejected():
    with pytest.raises(WalError):
        WriteAheadLog(MemoryLogStorage(), sync="sometimes")


def test_file_storage_round_trip(tmp_path):
    path = os.path.join(tmp_path, "wal.log")
    storage = FileLogStorage(path)
    wal = WriteAheadLog(storage, sync="always")
    wal.append_json(TOKEN_DONE, {"seq": 1})
    wal.close()
    with open(path, "rb") as fh:
        assert fh.read(len(MAGIC)) == MAGIC
    reopened = WriteAheadLog(FileLogStorage(path), sync="always")
    assert [r.json() for r in reopened.scan()] == [{"seq": 1}]
    reopened.close()
