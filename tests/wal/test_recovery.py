"""Redo, pageLSN idempotence, and token analysis."""

from collections import Counter

from repro.sql.page import PAGE_SIZE, page_checksum
from repro.wal.log import (
    ACTION_FIRED,
    TOKEN_DEQUEUE,
    TOKEN_DONE,
    MemoryLogStorage,
    WriteAheadLog,
)
from repro.wal.recovery import analyze_tokens, recover
from repro.wal.faults import CrashingPager


def _page(fill):
    return bytes([fill]) * PAGE_SIZE


def test_redo_replays_logged_page_images(disk):
    wal = WriteAheadLog(disk.log, sync="always")
    wal.log_page("emp.tbl", 0, _page(1))
    wal.log_page("emp.tbl", 1, _page(2))
    wal.log_page("idx.idx", 0, _page(3))
    result = recover(wal, disk.pager_factory)
    assert result.redo_applied == 3
    assert result.files_touched == 2
    assert disk.pager_factory("emp.tbl").durable_page(1) == _page(2)
    assert disk.pager_factory("idx.idx").durable_page(0) == _page(3)


def test_redo_skips_pages_durable_at_or_beyond_record_lsn(disk):
    wal = WriteAheadLog(disk.log, sync="always")
    wal.log_page("emp.tbl", 0, _page(1))
    first = recover(wal, disk.pager_factory)
    assert first.redo_applied == 1
    # A checkpoint carries the page-LSN table forward; recovery from it
    # skips the already-durable image.
    from repro.wal.checkpoint import take_checkpoint

    class _NoPool:
        def flush(self):
            return 0

    take_checkpoint(_NoPool(), wal, compact=False)
    second = recover(WriteAheadLog(disk.log, sync="always"), disk.pager_factory)
    assert second.redo_applied == 0


def test_redo_repairs_a_torn_page(disk):
    """A page half-written at crash time is byte-identical after redo."""
    wal = WriteAheadLog(disk.log, sync="always")
    good = bytes(range(256)) * 16
    wal.log_page("emp.tbl", 0, good)
    pager = disk.pager_factory("emp.tbl")
    torn = good[: PAGE_SIZE // 2] + bytes(PAGE_SIZE // 2)
    pager._durable = [torn]
    pager._volatile = [bytearray(torn)]
    assert page_checksum(pager.durable_page(0)) != page_checksum(good)
    recover(wal, disk.pager_factory)
    assert page_checksum(pager.durable_page(0)) == page_checksum(good)


def test_double_recovery_is_idempotent(disk):
    wal = WriteAheadLog(disk.log, sync="always")
    wal.log_page("emp.tbl", 0, _page(7))
    recover(wal, disk.pager_factory)
    before = disk.pager_factory("emp.tbl").durable_page(0)
    # Run recovery again over the same durable log: full-image redo writes
    # the same bytes, so the state cannot change.
    recover(WriteAheadLog(disk.log, sync="always"), disk.pager_factory)
    assert disk.pager_factory("emp.tbl").durable_page(0) == before


def test_redo_extends_a_short_file(disk):
    """An image for page 5 of a 0-page file redoes cleanly (gap zero-fill)."""
    wal = WriteAheadLog(disk.log, sync="always")
    wal.log_page("emp.tbl", 5, _page(9))
    recover(wal, disk.pager_factory)
    pager = disk.pager_factory("emp.tbl")
    assert pager.num_pages == 6
    assert pager.durable_page(5) == _page(9)
    assert pager.durable_page(2) == bytes(PAGE_SIZE)


def _dequeue(wal, seq):
    wal.append_json(
        TOKEN_DEQUEUE,
        {"seq": seq, "dataSrc": "s", "op": "insert", "payload": "{}"},
    )


def test_token_analysis_folds_the_lifecycle():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    _dequeue(wal, 1)
    wal.append_json(ACTION_FIRED, {"seq": 1, "idx": 0, "trigger": "t", "digest": "d1"})
    wal.append_json(TOKEN_DONE, {"seq": 1})
    _dequeue(wal, 2)
    wal.append_json(ACTION_FIRED, {"seq": 2, "idx": 0, "trigger": "t", "digest": "d2"})
    wal.append_json(ACTION_FIRED, {"seq": 2, "idx": 1, "trigger": "t", "digest": "d2"})
    incomplete, done = analyze_tokens(wal.scan(), None)
    assert done == {1}
    assert [t.seq for t in incomplete] == [2]
    assert incomplete[0].fired == Counter({"d2": 2})
    assert incomplete[0].fired_total() == 2


def test_token_analysis_seeds_from_checkpoint_state():
    wal = WriteAheadLog(MemoryLogStorage(), sync="always")
    checkpoint = {
        "incomplete": [
            {"seq": 5, "dataSrc": "s", "op": "insert", "payload": "{}",
             "fired": {"d5": 1}},
        ]
    }
    wal.append_json(ACTION_FIRED, {"seq": 5, "idx": 1, "trigger": "t", "digest": "d6"})
    incomplete, done = analyze_tokens(wal.scan(), checkpoint)
    assert [t.seq for t in incomplete] == [5]
    assert incomplete[0].fired == Counter({"d5": 1, "d6": 1})
    assert done == set()


def test_recovery_seeds_the_live_page_lsn_table(disk):
    wal = WriteAheadLog(disk.log, sync="always")
    lsn = wal.log_page("emp.tbl", 0, _page(1))
    fresh = WriteAheadLog(disk.log, sync="always")
    result = recover(fresh, disk.pager_factory)
    assert result.page_lsns[("emp.tbl", 0)] == lsn
    assert fresh.page_lsns[("emp.tbl", 0)] == lsn
