"""Shared fixtures for the durability suite: simulated machines that can be
killed and rebooted, and engines built over them."""

import pytest

from repro.sql.database import Database
from repro.wal import SimDisk, WriteAheadLog


@pytest.fixture
def disk():
    """One simulated machine's stable storage (with a fault injector)."""
    return SimDisk()


def open_database(disk, sync="always", **kwargs):
    """A Database incarnation over ``disk`` (call again after a crash)."""
    wal = WriteAheadLog(disk.log, sync=sync, faults=disk.faults)
    return Database(
        path=None,
        wal=wal,
        pager_factory=disk.pager_factory,
        catalog_store=disk.catalog,
        faults=disk.faults,
        **kwargs,
    )


def open_engine(disk, sync="always", **kwargs):
    """A TriggerMan incarnation over ``disk``."""
    from repro.engine.triggerman import TriggerMan

    return TriggerMan(open_database(disk, sync=sync), **kwargs)
