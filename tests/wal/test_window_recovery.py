"""Acceptance: temporal-window state survives crashes with exactly-once
firing.

Same oracle technique as test_crash_loop.py, with the window machinery in
the kill zone: a sliding-window trigger accumulates per-host state that
must be rebuilt byte-equivalently after every kill — from the checkpoint
snapshot plus post-checkpoint WINDOW_EVENT records — or the survivor's
firing ledger diverges from the uncrashed oracle's (a lost window entry
suppresses a firing; a double-observed one invents a firing)."""

import json
import os
import random
from collections import Counter

import pytest

from conftest import open_engine
from repro.engine.descriptors import Operation
from repro.wal import SimDisk, SimulatedCrash
from repro.wal.log import ACTION_FIRED, TOKEN_DEQUEUE

SEED = int(os.environ.get("WAL_CRASH_SEED", "2026"))
TARGET_CRASHES = int(os.environ.get("WAL_WINDOW_CRASH_COUNT", "60"))

#: every token-pipeline site plus the new window-observe append
SITES = [
    ("wal.append", 6),
    ("wal.sync", 3),
    ("disk.log_append", 6),
    ("disk.sync", 3),
    ("queue.enqueue", 3),
    ("queue.dequeue", 3),
    ("window.observe", 3),
    ("engine.fire", 3),
    ("engine.action", 3),
    ("engine.token_done", 2),
]

TRIGGERS = [
    # the tentpole: incremental count over a 5-second window per host
    "create trigger burst window 5 seconds from s group by s.host "
    "having count(*) >= 3 do raise event Burst(s.host)",
    # a sum window (tracked-column aggregates in the kill zone too)
    "create trigger load window 4 seconds from s group by s.host "
    "having sum(v) > 150 do raise event Load(s.host)",
    # a plain trigger: the classic path must keep working alongside
    "create trigger seen from s when s.v > 90 do raise event Seen(s.k)",
]


def _boot(disk, sync="always"):
    tman = open_engine(disk, sync=sync)
    if "s" not in tman.registry:
        tman.define_stream(
            "s",
            [("k", "integer"), ("host", "varchar(8)"), ("v", "integer"),
             ("ts", "float")],
        )
        for text in TRIGGERS:
            tman.create_trigger(text)
    return tman


def _row(k, v):
    """Event rows carry their own timestamps (0.7 s apart, two hosts), so
    the oracle replays the identical event-time stream."""
    return {"k": k, "host": f"h{k % 2}", "v": v, "ts": round(k * 0.7, 3)}


def _accept(payload, accepted):
    new = json.loads(payload).get("new") or {}
    if "k" in new:
        accepted[new["k"]] = new


def _scan(tman, ledger, accepted):
    for record in tman.catalog_db.wal.scan():
        if record.rtype == ACTION_FIRED:
            body = record.json()
            ledger[(body["seq"], body["idx"])] = (body["trigger"], body["digest"])
        elif record.rtype == TOKEN_DEQUEUE:
            _accept(record.json()["payload"], accepted)
    for _rid, row in tman.queue.table.scan():
        _accept(row[3], accepted)
    for token in tman._replay:
        _accept(token.payload, accepted)


def _crash_loop(sync, target_crashes, seed):
    rng = random.Random(seed)
    disk = SimDisk()
    ledger, accepted = {}, {}
    tman = _boot(disk, sync)
    next_k = 0
    iterations = 0
    while disk.faults.crashes < target_crashes:
        iterations += 1
        assert iterations < target_crashes * 30, "crash loop failed to converge"
        site, span = SITES[rng.randrange(len(SITES))]
        disk.faults.arm(site, rng.randint(1, span), torn=rng.random() < 0.3)
        try:
            for _ in range(rng.randint(1, 4)):
                k = next_k
                next_k += 1
                tman.push("s", Operation.INSERT, new=_row(k, rng.randrange(100)))
            tman.process_all()
            if rng.random() < 0.25:
                _scan(tman, ledger, accepted)  # compaction drops records
                tman.checkpoint()  # snapshot carries the window state
            disk.faults.disarm()
        except SimulatedCrash:
            disk.faults.disarm()
            disk.crash()
            tman = _boot(disk, sync)
            _scan(tman, ledger, accepted)

    tman.process_all()
    _scan(tman, ledger, accepted)
    assert len(tman.queue) == 0
    assert tman._inflight == {}
    assert not tman._replay
    survivor_windows = tman.windows.snapshot()

    # Oracle: an uncrashed machine fed exactly the accepted rows in order.
    oracle = _boot(SimDisk())
    for k in sorted(accepted):
        oracle.push("s", Operation.INSERT, new=accepted[k])
    oracle.process_all()
    oracle_ledger = {}
    _scan(oracle, oracle_ledger, {})
    return disk, ledger, oracle_ledger, survivor_windows, oracle.windows


def test_window_crash_loop_firing_set_equals_oracle():
    disk, ledger, oracle_ledger, survivor_windows, oracle_windows = (
        _crash_loop("always", TARGET_CRASHES, SEED)
    )
    assert disk.faults.crashes >= TARGET_CRASHES
    assert len(set(disk.faults.seen)) >= 5, disk.faults.seen
    # window.observe specifically must have been a kill site
    assert "window.observe" in set(disk.faults.seen)
    # exactly-once: no firing lost, none invented
    assert Counter(ledger.values()) == Counter(oracle_ledger.values())
    # and the surviving window *state* equals the oracle's (same entries,
    # same watermarks), so future firings stay equivalent too
    assert survivor_windows == oracle_windows.snapshot()


def test_window_crash_loop_under_group_commit():
    """Under group commit the accepted-set reconstruction undercounts
    (buffered token records can be compacted before ever being durable-
    scanned), so the oracle may see fewer rows than the survivor's
    checkpoint-carried window state — state equality is a sync=always
    invariant only.  The (seq, idx)-keyed ledger still reconciles exactly,
    which is the exactly-once claim."""
    disk, ledger, oracle_ledger, _survivor_windows, _oracle_windows = (
        _crash_loop("group", 20, SEED + 1)
    )
    assert disk.faults.crashes >= 20
    assert Counter(ledger.values()) == Counter(oracle_ledger.values())


def test_single_crash_at_window_observe(disk):
    """Deterministic version of the loop: die exactly when the third event
    is being observed into the window, recover, and fire exactly once."""
    tman = _boot(disk)
    for k in range(4):  # h0 gets k=0 and k=2; h1 gets k=1 and k=3
        tman.push("s", Operation.INSERT, new=_row(k, 10))
    tman.process_all()
    tman.push("s", Operation.INSERT, new=_row(4, 10))  # h0's third event
    disk.faults.arm("window.observe", 1)
    with pytest.raises(SimulatedCrash):
        tman.process_all()
    disk.faults.disarm()
    disk.crash()

    tman = _boot(disk)
    # recovery rebuilt the observed entries (including the crashed seq's,
    # whose WINDOW_EVENT is durable) and queued the in-flight token for
    # replay; draining fires the burst exactly once, not zero, not two
    tman.process_all()
    ledger = {}
    _scan(tman, ledger, {})
    fired = Counter(trigger for trigger, _ in ledger.values())
    assert fired["burst"] == 1
    descriptions = {d["key"][0]: d for d in tman.windows.describe("burst")}
    assert descriptions["h0"]["entries"] == 3
    assert descriptions["h1"]["entries"] == 2


def test_recovered_window_ages_out_identically(disk):
    """Eviction after recovery uses the persisted watermark: entries that
    would have slid out on the uncrashed machine slide out here too."""
    tman = _boot(disk)
    tman.push("s", Operation.INSERT, new=_row(0, 10))  # h0 @ ts 0.0
    tman.push("s", Operation.INSERT, new=_row(2, 10))  # h0 @ ts 1.4
    tman.process_all()
    disk.crash()  # kill -9 with both entries durable

    tman = _boot(disk)
    # an event far in the future evicts both recovered entries before the
    # count can reach 3: no firing
    tman.push("s", Operation.INSERT, new={"k": 100, "host": "h0", "v": 10,
                                          "ts": 50.0})
    tman.process_all()
    ledger = {}
    _scan(tman, ledger, {})
    assert Counter(t for t, _ in ledger.values())["burst"] == 0
    assert tman.windows.describe("burst")[0]["entries"] == 1
