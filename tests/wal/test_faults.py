"""The fault harness itself: counted crash points, volatile/durable layers,
torn writes on both the page and log paths."""

import pytest

from conftest import open_database
from repro.sql.page import PAGE_SIZE, page_checksum
from repro.sql.schema import schema
from repro.wal import FaultInjector, SimDisk, SimulatedCrash
from repro.wal.faults import CrashingPager
from repro.wal.log import TOKEN_DONE, WriteAheadLog


def test_injector_crashes_on_the_nth_hit():
    faults = FaultInjector()
    faults.arm("site", 3)
    faults.hit("site")
    faults.hit("site")
    with pytest.raises(SimulatedCrash):
        faults.hit("site")
    assert faults.crashes == 1
    assert faults.counters["site"] == 3


def test_simulated_crash_pierces_except_exception():
    """The engine isolates action failures with ``except Exception``; a
    simulated kill must cut through that like a real SIGKILL."""
    faults = FaultInjector()
    faults.arm("site", 1)
    with pytest.raises(SimulatedCrash):
        try:
            faults.hit("site")
        except Exception:  # noqa: BLE001 - the point of the test
            pytest.fail("SimulatedCrash must not be caught as Exception")


def test_unsynced_writes_vanish_on_crash():
    pager = CrashingPager("f")
    pager.allocate()
    pager.write(0, b"\x01" * PAGE_SIZE)
    pager.sync()
    pager.write(0, b"\x02" * PAGE_SIZE)  # volatile only
    pager.crash()
    assert pager.read(0) == bytearray(b"\x01" * PAGE_SIZE)


def test_torn_page_write_leaves_a_mixed_page():
    faults = FaultInjector()
    pager = CrashingPager("f", faults)
    pager.allocate()
    pager.write(0, b"\x01" * PAGE_SIZE)
    pager.sync()
    pager.write(0, b"\x02" * PAGE_SIZE)
    faults.arm("disk.sync", 1, torn=True)
    with pytest.raises(SimulatedCrash):
        pager.sync()
    pager.crash()
    durable = pager.durable_page(0)
    half = PAGE_SIZE // 2
    assert durable[:half] == b"\x02" * half  # new prefix promoted
    assert durable[half:] == b"\x01" * half  # old suffix left behind
    assert page_checksum(durable) not in (
        page_checksum(b"\x01" * PAGE_SIZE),
        page_checksum(b"\x02" * PAGE_SIZE),
    )


def test_torn_log_append_keeps_a_prefix():
    disk = SimDisk()
    wal = WriteAheadLog(disk.log, sync="always", faults=disk.faults)
    wal.append(TOKEN_DONE, b"good")
    good_size = len(disk.log.data)
    disk.faults.arm("disk.log_append", 1, torn=True)
    with pytest.raises(SimulatedCrash):
        wal.append(TOKEN_DONE, b"torn")
    assert len(disk.log.data) > good_size  # a partial suffix landed
    # Reopen: the torn tail is truncated back to the last valid record.
    reopened = WriteAheadLog(disk.log, sync="always")
    assert [r.payload for r in reopened.scan()] == [b"good"]
    assert len(disk.log.data) == good_size


def test_database_survives_a_torn_page_flush(disk):
    """Crash mid-flush with a torn page; redo repairs it byte-for-byte."""
    db = open_database(disk)
    table = db.create_table(
        schema("emp", ("eno", "integer"), ("name", "varchar(40)"),
               registry=db.registry)
    )
    for i in range(50):
        table.insert((i, f"e{i}"))
    db.wal.flush()
    disk.faults.arm("disk.sync", 1, torn=True)
    with pytest.raises(SimulatedCrash):
        db.flush()
    disk.faults.disarm()
    disk.crash()
    db2 = open_database(disk)
    assert db2.recovery.redo_applied > 0
    assert db2.table("emp").count() == 50
    assert sorted(r[0] for r in db2.table("emp").rows()) == list(range(50))


def test_crash_during_recovery_is_survivable(disk):
    """Recovery itself can die (power cut during restart): a second
    recovery still converges to the same state."""
    db = open_database(disk)
    table = db.create_table(
        schema("emp", ("eno", "integer"), registry=db.registry)
    )
    for i in range(30):
        table.insert((i,))
    db.wal.flush()
    disk.crash()
    disk.faults.arm("disk.sync", 1)
    with pytest.raises(SimulatedCrash):
        open_database(disk)
    disk.faults.disarm()
    disk.crash()
    db2 = open_database(disk)
    assert db2.table("emp").count() == 30
