"""cluster-smoke: coordinator + real worker subprocesses, end to end.

Runs ``examples/stock_alerts.py`` once in-process (the oracle) and once in
``--cluster 2`` mode (a coordinator spawning two ``repro.cluster.worker``
subprocesses) and asserts the **notification digests are identical**: the
digest is an order-independent hash of (event, args, trigger), so equal
digests mean sharding partitioned the work without changing the answer.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
EXAMPLE = os.path.join(REPO, "examples", "stock_alerts.py")

SMOKE_ENV = {
    "STOCK_USERS": "150",
    "STOCK_TICKS": "20",
    "STOCK_WATCH": "40",
}


def example_env():
    env = dict(os.environ)
    env.update(SMOKE_ENV)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env["PYTHONUNBUFFERED"] = "1"
    env["PYTHONFAULTHANDLER"] = "1"
    return env


def digest_line(output: str) -> str:
    for line in output.splitlines():
        if line.startswith("notification digest:"):
            return line
    raise AssertionError(f"no digest line in output:\n{output}")


def _run_example(*args):
    result = subprocess.run(
        [sys.executable, EXAMPLE, *args],
        capture_output=True, text=True, env=example_env(), timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_cluster_digest_matches_in_process_oracle():
    oracle = _run_example()
    clustered = _run_example("--cluster", "2")
    assert digest_line(clustered) == digest_line(oracle)
    # Sanity: the cluster actually ran sharded (both workers spawned).
    assert "spawned 2 workers" in clustered


def test_cluster_console_status_roundtrip():
    """`python -m repro --cluster 2` boots a fleet and answers cluster
    verbs through the routed REPL."""
    script = (
        "define data source ticks as stream (symbol varchar(8), "
        "price float)\n"
        "create trigger hot from ticks on insert when ticks.price > 100 "
        "do raise event Hot(ticks.price)\n"
        "cluster status\n"
        "cluster ping\n"
        "quit\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--cluster", "2"],
        input=script, capture_output=True, text=True,
        env=example_env(), timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "cluster of 2 workers up" in result.stdout
    assert '"epoch": 1' in result.stdout
    assert "shard 0:" in result.stdout and "shard 1:" in result.stdout
