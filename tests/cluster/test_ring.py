"""Consistent-hash ring properties the cluster's correctness rests on.

Determinism must hold *across processes* (coordinator and workers compute
ownership independently from the same map), balance must hold within the
vnode bound, and membership changes must move only the keys the new
topology demands.
"""

import os
import subprocess
import sys

import repro
from repro.cluster.ring import DEFAULT_VNODES, HashRing, build_ring
from repro.cluster.routing import source_key, trigger_key

KEYS = [f"trig:src{i % 37}:structure-{i % 11}" for i in range(4000)]


class TestDeterminism:
    def test_same_map_same_owner(self):
        a = build_ring([0, 1, 2, 3])
        b = build_ring([3, 2, 1, 0])  # insertion order must not matter
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_wire_round_trip(self):
        ring = build_ring([0, 1, 2], vnodes=16)
        clone = HashRing.from_wire(ring.to_wire())
        assert clone.vnodes == 16
        assert sorted(clone.shards) == [0, 1, 2]
        assert [ring.owner(k) for k in KEYS] == [clone.owner(k) for k in KEYS]

    def test_owners_stable_across_processes(self):
        """Python's str hash is per-process salted; the ring must not be.
        A fresh interpreter (fresh hash seed) must compute identical
        owners for identical maps."""
        keys = KEYS[:200]
        local = build_ring([0, 1, 2])
        script = (
            "from repro.cluster.ring import build_ring\n"
            f"ring = build_ring([0, 1, 2])\n"
            f"print([ring.owner(k) for k in {keys!r}])\n"
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="random"),
        ).stdout
        assert eval(output) == [local.owner(k) for k in keys]


class TestBalance:
    def test_spread_within_20_percent_at_default_vnodes(self):
        assert DEFAULT_VNODES == 64
        ring = build_ring([0, 1, 2, 3])
        spread = ring.spread(f"key-{i}" for i in range(40000))
        ideal = 40000 / 4
        for shard, count in spread.items():
            assert abs(count - ideal) / ideal <= 0.20, (shard, spread)

    def test_routing_keys_spread_too(self):
        """The real key shapes (trigger structure keys, source keys) must
        land on every shard, not clump."""
        ring = build_ring([0, 1, 2, 3])
        keys = [
            trigger_key(f"source{i % 29}", f"x.f{i % 13} > CONST")
            for i in range(2000)
        ] + [source_key(f"source{i}") for i in range(200)]
        spread = ring.spread(keys)
        assert set(spread) == {0, 1, 2, 3}
        ideal = len(keys) / 4
        for count in spread.values():
            assert abs(count - ideal) / ideal <= 0.25, spread


class TestMinimalMovement:
    def test_join_moves_keys_only_to_the_new_shard(self):
        before = build_ring([0, 1, 2])
        owners_before = {k: before.owner(k) for k in KEYS}
        after = build_ring([0, 1, 2])
        after.add(3)
        moved = other = 0
        for key, old in owners_before.items():
            new = after.owner(key)
            if new != old:
                moved += 1
                if new != 3:
                    other += 1
        assert other == 0, "a join relocated keys between old shards"
        # Roughly 1/4 of the keyspace should migrate to the newcomer.
        assert 0.10 <= moved / len(owners_before) <= 0.40

    def test_leave_moves_only_the_departed_shards_keys(self):
        before = build_ring([0, 1, 2, 3])
        owners_before = {k: before.owner(k) for k in KEYS}
        after = build_ring([0, 1, 2, 3])
        after.remove(3)
        for key, old in owners_before.items():
            if old != 3:
                assert after.owner(key) == old, key

    def test_remove_then_add_is_identity(self):
        ring = build_ring([0, 1, 2, 3])
        owners = {k: ring.owner(k) for k in KEYS}
        ring.remove(2)
        ring.add(2)
        assert {k: ring.owner(k) for k in KEYS} == owners
