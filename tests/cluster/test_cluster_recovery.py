"""Kill -9 a worker, respawn it, and audit the durable firing ledger.

The exactly-once story must survive sharding: each worker's ACTION_FIRED
ledger lives in its *own* WAL, recovery is shard-local, and the union of
the per-shard ledgers must equal — as a multiset of (trigger, digest)
pairs, digests being content-based — the ledger a single-process oracle
produces for the same workload.  No firing lost, none duplicated.
"""

import os

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.routing import trigger_key
from repro.cluster.worker import shard_dir
from repro.engine.triggerman import TriggerMan
from repro.sql.database import Database
from repro.wal.log import ACTION_FIRED, scan_file

pytestmark = pytest.mark.slow

DEFINE = (
    "define data source {0} as stream (symbol varchar(8), price float)"
)


def _trigger(name, source):
    return (
        f"create trigger {name} from {source} on insert "
        f"when {source}.price > 100 do raise event Hit{name}({source}.price)"
    )


def _rows(count, offset=0):
    return [
        {"symbol": f"s{i % 3}", "price": float(50 + 7 * (i + offset))}
        for i in range(count)
    ]


def _ledger(wal_path):
    """The (trigger, digest) multiset of one WAL's ACTION_FIRED records."""
    return sorted(
        (record.json()["trigger"], record.json()["digest"])
        for record in scan_file(wal_path)
        if record.rtype == ACTION_FIRED
    )


def _sources_on_both_shards(ring):
    """Two source names whose trigger keys land on different shards."""
    first = "ticks"
    first_owner = ring.owner(trigger_key(first, f"{first}.price > 100"))
    for i in range(1000):
        name = f"alt{i}"
        if ring.owner(trigger_key(name, f"{name}.price > 100")) != first_owner:
            return first, name
    raise AssertionError("no second-shard source found")


def test_killed_worker_recovers_its_own_wal_exactly_once(tmp_path):
    cluster_dir = str(tmp_path / "cluster")
    oracle_dir = str(tmp_path / "oracle")

    coordinator = ClusterCoordinator(
        shards=2, data_dir=cluster_dir, wal_sync="always"
    ).start()
    try:
        src_a, src_b = _sources_on_both_shards(coordinator.ring)
        for source in (src_a, src_b):
            coordinator.execute_command(DEFINE.format(source))
            coordinator.execute_command(_trigger(f"on_{source}", source))
        assert len({s for _, _, s in coordinator.triggers.values()}) == 2

        # Phase 1: fired and durable before the crash.
        for source in (src_a, src_b):
            for row in _rows(10):
                coordinator.push(source, "insert", new=row)
        assert coordinator.process_all() == 20

        # Phase 2: ingested (ACKed durable under sync=always) but NOT yet
        # processed — the tokens the restarted worker must replay.
        victim = coordinator.triggers[f"on_{src_a}"][2]
        for source in (src_a, src_b):
            for row in _rows(10, offset=100):
                coordinator.push(source, "insert", new=row)
        coordinator.shards[victim].worker.kill()  # SIGKILL, no flush

        coordinator.restart_worker(victim)
        assert coordinator.shards[victim].worker.restarts == 1
        assert coordinator.epoch == 2
        # The survivor drains its half; the restarted worker replays the
        # tokens its WAL preserved and then drains them.
        assert coordinator.process_all() >= 10
        # Post-recovery the shard keeps working end to end.
        coordinator.push(src_a, "insert", new={"symbol": "z",
                                               "price": 999.0})
        assert coordinator.process_all() == 1
        # Read the ledgers while the workers are live: graceful shutdown
        # checkpoints, and checkpoint compaction drops ledger records.
        cluster_ledger = sorted(
            entry
            for shard_id in (0, 1)
            for entry in _ledger(
                os.path.join(shard_dir(cluster_dir, shard_id),
                             Database.WAL_FILE)
            )
        )
    finally:
        coordinator.close()

    # Oracle: the same workload in one persistent single-process engine.
    oracle = TriggerMan.persistent(oracle_dir, wal_sync="always")
    for source in (src_a, src_b):
        oracle.execute_command(DEFINE.format(source))
        oracle.execute_command(_trigger(f"on_{source}", source))
        for row in _rows(10):
            oracle.push(source, "insert", new=row)
        for row in _rows(10, offset=100):
            oracle.push(source, "insert", new=row)
    oracle.push(src_a, "insert", new={"symbol": "z", "price": 999.0})
    oracle.process_all()
    oracle.flush()
    oracle_ledger = _ledger(os.path.join(oracle_dir, Database.WAL_FILE))
    oracle.close()

    assert len(oracle_ledger) > 0
    assert cluster_ledger == oracle_ledger  # nothing lost, nothing doubled


def test_recovery_report_is_printed_by_the_respawned_worker(tmp_path):
    """The worker's stdout carries its shard-local recovery summary (the
    operator-facing proof that replay ran locally)."""
    from repro.cluster.worker import WorkerProcess

    worker = WorkerProcess(
        0, data_dir=str(tmp_path), wal_sync="always"
    ).spawn()
    try:
        from repro.net.remote import RemoteTriggerManClient

        with RemoteTriggerManClient(*worker.address) as client:
            client.command(DEFINE.format("ticks"))
            client.command(_trigger("hot", "ticks"))
            client.conn.call("ingest", source="ticks", operation="insert",
                             new={"symbol": "a", "price": 500.0})
        worker.kill()
        worker.respawn()
        assert any("recovery shard=0" in line for line in worker.banner), (
            worker.banner
        )
        with RemoteTriggerManClient(*worker.address) as client:
            assert client.process() == 1
    finally:
        worker.terminate()
