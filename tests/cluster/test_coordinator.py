"""Coordinator routing, gossip, redirects, events, and rebalancing.

These tests attach the coordinator to *in-process* served engines (no
subprocesses), so they can assert against each shard's engine state
directly; the subprocess paths are covered by the smoke/recovery tests.
"""

import time

import pytest

from repro.cluster.client import ClusterClient, ClusterDataSourceProgram
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.routing import trigger_key
from repro.engine.triggerman import TriggerMan
from repro.errors import RemoteError
from repro.net.protocol import E_WRONG_SHARD

DEFINE = "define data source ticks as stream (symbol varchar(8), price float)"


def _trigger(name, source="ticks", condition="ticks.price > 100"):
    return (
        f"create trigger {name} from {source} on insert "
        f"when {condition} do raise event Hit{name}({source}.price)"
    )


@pytest.fixture
def cluster():
    """Two served in-memory engines behind one coordinator."""
    engines = [TriggerMan.in_memory() for _ in range(2)]
    servers = [tman.serve("127.0.0.1", 0) for tman in engines]
    coordinator = ClusterCoordinator(
        workers=[server.address for server in servers]
    ).start()
    yield coordinator, engines
    coordinator.close()
    for tman in engines:
        tman.close()


def other_shard_source(coordinator, condition_shape="{0}.price > 100"):
    """A source name whose standard trigger key lands on the other shard
    than ticks' does (deterministic: the ring is SHA-1 based)."""
    ticks_owner = coordinator.ring.owner(
        trigger_key("ticks", condition_shape.format("ticks"))
    )
    for i in range(1000):
        name = f"alt{i}"
        key = trigger_key(name, condition_shape.format(name))
        if coordinator.ring.owner(key) != ticks_owner:
            return name
    raise AssertionError("no source found on the other shard")


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRouting:
    def test_broadcast_reaches_every_shard_and_is_journaled(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        assert coordinator.broadcast_log == [DEFINE]
        for tman in engines:
            assert "ticks" in tman.registry

    def test_trigger_lands_on_its_ring_owner(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        text = _trigger("t0", condition="ticks.price > 100")
        coordinator.execute_command(text)
        key, _, shard = coordinator.triggers["t0"]
        assert shard == coordinator.ring.owner(key)
        assert len(engines[shard].triggers()) == 1
        assert len(engines[1 - shard].triggers()) == 0

    def test_same_structure_triggers_coreside(self, cluster):
        """One §5.1 equivalence class (same source + condition shape,
        different constants) must stay on one shard, so its constant-set
        organization is never fragmented."""
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        for i, threshold in enumerate((10, 250, 4000)):
            coordinator.execute_command(
                _trigger(f"s{i}", condition=f"ticks.price > {threshold}")
            )
        shards = {shard for _, _, shard in coordinator.triggers.values()}
        assert len(shards) == 1

    def test_drop_routes_to_the_journaled_shard(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        coordinator.execute_command(_trigger("t0"))
        _, _, shard = coordinator.triggers["t0"]
        coordinator.execute_command("drop trigger t0")
        assert "t0" not in coordinator.triggers
        assert coordinator.source_triggers.get("ticks", {}) == {}
        assert len(engines[shard].triggers()) == 0

    def test_ingest_fans_only_to_shards_with_triggers(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        coordinator.execute_command(_trigger("t0"))
        _, _, shard = coordinator.triggers["t0"]
        copies = coordinator.push(
            "ticks", "insert", new={"symbol": "ACME", "price": 150.0}
        )
        assert copies == 1
        assert coordinator.process_all() == 1
        assert engines[shard].metrics()["tokens_processed"] == 1
        assert engines[1 - shard].metrics()["tokens_processed"] == 0

    def test_ingest_without_triggers_goes_to_source_owner(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        assert coordinator.push("ticks", "insert", new={"price": 1.0}) == 1


class TestGossip:
    def test_workers_learn_shard_and_epoch(self, cluster):
        coordinator, engines = cluster
        for shard_id, state in coordinator.shards.items():
            hello = state.client.ping()
            assert hello["shard"] == shard_id
            assert hello["epoch"] == coordinator.epoch == 1

    def test_stale_epoch_refused(self, cluster):
        coordinator, engines = cluster
        state = coordinator.shards[0]
        with pytest.raises(RemoteError, match="stale epoch"):
            state.client.conn.call(
                "cluster.hello", shard=0, epoch=0,
                members={}, ring=coordinator.ring.to_wire(),
            )

    def test_wrong_shard_refusal_heals_by_regossip(self, cluster):
        """Poison one worker's map (it thinks the *other* shard owns
        everything); the coordinator must absorb the E_WRONG_SHARD
        refusal, re-gossip the authoritative map, and land the trigger —
        counting the redirect."""
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        text = _trigger("t0")
        key = trigger_key("ticks", "ticks.price > 100")
        owner = coordinator.ring.owner(key)
        poisoned_ring = {
            "vnodes": coordinator.ring.vnodes, "shards": [1 - owner]
        }
        coordinator.shards[owner].client.conn.call(
            "cluster.hello", shard=owner, epoch=coordinator.epoch,
            members={}, ring=poisoned_ring,
        )
        # Refusal is visible worker-side before the coordinator heals it.
        with pytest.raises(RemoteError) as refused:
            coordinator.shards[owner].client.command(text)
        assert refused.value.code == E_WRONG_SHARD
        assert refused.value.data["owner"] == 1 - owner
        coordinator.execute_command(text)
        assert coordinator.triggers["t0"][2] == owner
        assert coordinator._m_redirects.value == 1
        assert len(engines[owner].triggers()) == 1


class TestEventsAndStatus:
    def test_merged_event_plane(self, cluster):
        """Triggers living on different shards push into one client inbox."""
        coordinator, engines = cluster
        client = ClusterClient(coordinator)
        client.command(DEFINE)
        other = other_shard_source(coordinator)
        client.command(
            f"define data source {other} as stream (symbol varchar(8), "
            "price float)"
        )
        client.create_trigger(
            _trigger("a", source="ticks", condition="ticks.price > 100")
        )
        client.create_trigger(
            _trigger("b", source=other, condition=f"{other}.price > 100")
        )
        shards = {shard for _, _, shard in coordinator.triggers.values()}
        assert shards == {0, 1}, "triggers must span both shards"
        client.register_for_event("Hita")
        client.register_for_event("Hitb")
        ticks = ClusterDataSourceProgram(client, "ticks")
        bonds = ClusterDataSourceProgram(client, other)
        ticks.insert({"symbol": "x", "price": 200.0})
        bonds.insert({"symbol": "y", "price": 300.0})
        client.process()
        assert wait_for(lambda: len(client.inbox) == 2)
        events = {client.next_notification().event_name for _ in range(2)}
        assert events == {"Hita", "Hitb"}
        client.disconnect()

    def test_status_metrics_and_ping(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        coordinator.execute_command(_trigger("t0"))
        rtts = coordinator.ping_all()
        assert set(rtts) == {0, 1}
        assert all(rtt is not None for rtt in rtts.values())
        status = coordinator.status()
        assert status["epoch"] == 1
        assert status["triggers_tracked"] == 1
        assert sum(s["triggers"] for s in status["shards"].values()) == 1
        metrics = coordinator.cluster_metrics()
        assert metrics["shards"] == 2
        assert metrics["commands_routed"] == 1
        snapshot = coordinator.metrics.snapshot()
        assert snapshot["cluster.shards"] == 2
        assert snapshot["cluster.shard.0.up"] == 1
        assert snapshot["cluster.ping_rtt_ns"]["count"] == 2


class TestRebalance:
    def test_remove_worker_drains_its_triggers(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        other = other_shard_source(coordinator)
        coordinator.execute_command(
            f"define data source {other} as stream (symbol varchar(8), "
            "price float)"
        )
        for i, source in enumerate(["ticks", other, "ticks", other]):
            coordinator.execute_command(
                _trigger(f"t{i}", source=source,
                         condition=f"{source}.price > 100")
            )
        placed = {
            shard for _, _, shard in coordinator.triggers.values()
        }
        assert placed == {0, 1}, "fixture needs both shards populated"
        coordinator.remove_worker(1)
        assert set(coordinator.shards) == {0}
        assert all(
            shard == 0 for _, _, shard in coordinator.triggers.values()
        )
        # Every trigger is actually resident on the survivor's engine.
        assert len(engines[0].triggers()) == 4
        # ...and still fires there.
        coordinator.push("ticks", "insert", new={"symbol": "x",
                                                 "price": 500.0})
        assert coordinator.process_all() == 1

    def test_rebalance_is_a_noop_when_placement_matches(self, cluster):
        coordinator, engines = cluster
        coordinator.execute_command(DEFINE)
        coordinator.execute_command(_trigger("t0"))
        assert coordinator.rebalance() == 0
