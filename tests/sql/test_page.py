"""Unit and property tests for slotted pages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFullError, StorageError
from repro.sql.page import MAX_RECORD_SIZE, PAGE_SIZE, SlottedPage


class TestBasicOperations:
    def test_fresh_page_is_empty(self):
        page = SlottedPage()
        assert page.num_slots == 0
        assert page.live_count() == 0
        assert page.free_space() == PAGE_SIZE - 8

    def test_zeroed_buffer_initializes(self):
        page = SlottedPage(bytearray(PAGE_SIZE))
        assert page.free_ptr == PAGE_SIZE

    def test_insert_read(self):
        page = SlottedPage()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_inserts_distinct_slots(self):
        page = SlottedPage()
        slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
        assert len(set(slots)) == 10
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"rec{i}".encode()

    def test_delete_tombstones(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        assert not page.is_live(slot)
        with pytest.raises(StorageError):
            page.read(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_slot_reuse_after_delete(self):
        page = SlottedPage()
        slot = page.insert(b"a")
        page.insert(b"b")
        page.delete(slot)
        reused = page.insert(b"c")
        assert reused == slot
        assert page.read(reused) == b"c"

    def test_wrong_size_buffer_rejected(self):
        with pytest.raises(StorageError):
            SlottedPage(bytearray(100))

    def test_oversized_record_rejected(self):
        page = SlottedPage()
        with pytest.raises(StorageError):
            page.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_page_full(self):
        page = SlottedPage()
        record = b"y" * 1000
        inserted = 0
        with pytest.raises(PageFullError):
            for _ in range(10):
                page.insert(record)
                inserted += 1
        assert inserted == 4  # 4 * (1000+8) + header < 4096 < 5 * 1008


class TestUpdate:
    def test_in_place_shrink(self):
        page = SlottedPage()
        slot = page.insert(b"longer record")
        assert page.update(slot, b"short")
        assert page.read(slot) == b"short"

    def test_grow_within_free_space(self):
        page = SlottedPage()
        slot = page.insert(b"ab")
        assert page.update(slot, b"a much longer record body")
        assert page.read(slot) == b"a much longer record body"

    def test_grow_after_compaction(self):
        page = SlottedPage()
        filler = [page.insert(b"z" * 900) for _ in range(4)]
        slot = page.insert(b"tiny")
        for other in filler:
            page.delete(other)
        # Free space is fragmented until compaction; update must succeed.
        assert page.update(slot, b"w" * 2000)
        assert page.read(slot) == b"w" * 2000

    def test_grow_impossible_returns_false_and_preserves_record(self):
        page = SlottedPage()
        slots = [page.insert(b"z" * 900) for _ in range(4)]
        assert page.update(slots[0], b"w" * 3900) is False
        assert page.read(slots[0]) == b"z" * 900

    def test_update_deleted_slot_fails(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.update(slot, b"y")


class TestCompaction:
    def test_compact_reclaims_space(self):
        page = SlottedPage()
        slots = [page.insert(b"r" * 500) for _ in range(7)]
        for slot in slots[:6]:
            page.delete(slot)
        before = page.free_space()
        page.compact()
        assert page.free_space() > before
        assert page.read(slots[6]) == b"r" * 500

    def test_records_iteration(self):
        page = SlottedPage()
        page.insert(b"a")
        b_slot = page.insert(b"b")
        page.insert(b"c")
        page.delete(b_slot)
        assert [rec for _slot, rec in page.records()] == [b"a", b"c"]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.binary(min_size=0, max_size=120),
        ),
        max_size=60,
    )
)
def test_page_model_property(operations):
    """The page behaves like a dict slot->record under random ops."""
    page = SlottedPage()
    model = {}
    for op, payload in operations:
        if op == "insert":
            try:
                slot = page.insert(payload)
            except PageFullError:
                continue
            model[slot] = payload
        elif op == "delete" and model:
            slot = sorted(model)[0]
            page.delete(slot)
            del model[slot]
        elif op == "update" and model:
            slot = sorted(model)[-1]
            if page.update(slot, payload):
                model[slot] = payload
            # on failure the old record is preserved; model unchanged
    live = dict(page.records())
    assert live == model
