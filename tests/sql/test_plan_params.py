"""Access-path selection with named parameters: a plan-time constant from
``params`` must enable index probes exactly like a literal."""

import pytest

from repro.lang.sqlparser import parse_sql
from repro.sql.database import Database
from repro.sql.executor import choose_plan
from repro.sql.schema import schema


@pytest.fixture
def db():
    db = Database()
    db.create_table(schema("t", ("a", "integer"), ("b", "varchar(10)")))
    table = db.table("t")
    for i in range(40):
        table.insert([i, f"v{i % 5}"])
    db.create_index("t_a", "t", ["a"])
    db.create_index("t_b", "t", ["b"], using="hash")
    return db


class TestParamPlans:
    def test_equality_param_uses_index(self, db):
        statement = parse_sql("select * from t where a = :target")
        plan = choose_plan(db.table("t"), statement.where, {"target": 7})
        assert plan.kind == "index_eq"
        rows = db.execute("select b from t where a = :target", {"target": 7})
        assert rows == [("v2",)]

    def test_range_param_uses_index(self, db):
        statement = parse_sql("select * from t where a >= :lo")
        plan = choose_plan(db.table("t"), statement.where, {"lo": 35})
        assert plan.kind == "index_range"
        rows = db.execute(
            "select a from t where a >= :lo order by a", {"lo": 35}
        )
        assert [r[0] for r in rows] == list(range(35, 40))

    def test_unbound_param_falls_back_to_scan(self, db):
        statement = parse_sql("select * from t where a = :missing")
        plan = choose_plan(db.table("t"), statement.where, {})
        assert plan.kind == "scan"

    def test_hash_param(self, db):
        rows = db.execute(
            "select count(*) from t where b = :v", {"v": "v1"}
        )
        assert rows == [(8,)]

    def test_param_in_update_and_delete(self, db):
        n = db.execute("update t set b = 'z' where a = :k", {"k": 3})
        assert n == 1
        n = db.execute("delete from t where b = :v", {"v": "z"})
        assert n == 1
        assert db.table("t").count() == 39
