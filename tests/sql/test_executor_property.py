"""Property test: access-path selection never changes SELECT results.

Random conjunctive WHERE clauses are executed against the same data twice —
once on a table with no indexes (pure scan) and once on a heavily indexed
copy (hash + clustered/non-clustered B+trees) — and must return identical
row sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.database import Database
from repro.sql.schema import schema

ROWS = [
    (i, f"name{i % 7}", float((i * 37) % 100), f"d{i % 4}")
    for i in range(120)
]


def make_db(indexed):
    db = Database()
    db.create_table(
        schema(
            "t",
            ("eno", "integer"),
            ("name", "varchar(20)"),
            ("salary", "float"),
            ("dept", "varchar(10)"),
        )
    )
    table = db.table("t")
    for row in ROWS:
        table.insert(row)
    if indexed:
        db.create_index("t_eno", "t", ["eno"])
        db.create_index("t_name", "t", ["name"], using="hash")
        db.create_index("t_sal", "t", ["salary"], clustered=True)
        db.create_index("t_ds", "t", ["dept", "salary"])
    return db


_PLAIN = make_db(indexed=False)
_INDEXED = make_db(indexed=True)

_conditions = st.lists(
    st.one_of(
        st.builds(
            lambda v: f"eno = {v}", st.integers(0, 130)
        ),
        st.builds(
            lambda v: f"name = 'name{v}'", st.integers(0, 8)
        ),
        st.builds(
            lambda op, v: f"salary {op} {v}",
            st.sampled_from(["<", "<=", ">", ">=", "="]),
            st.integers(0, 100),
        ),
        st.builds(
            lambda v: f"dept = 'd{v}'", st.integers(0, 5)
        ),
        st.builds(
            lambda lo, width: f"salary between {lo} and {lo + width}",
            st.integers(0, 90),
            st.integers(0, 30),
        ),
    ),
    min_size=1,
    max_size=3,
)


@settings(max_examples=150, deadline=None)
@given(_conditions)
def test_indexed_equals_scan(conjuncts):
    where = " and ".join(conjuncts)
    sql = f"select eno, name, salary, dept from t where {where}"
    scan_rows = sorted(_PLAIN.execute(sql))
    indexed_rows = sorted(_INDEXED.execute(sql))
    assert indexed_rows == scan_rows
