"""Unit tests for table schemas and the row codec."""

import pytest

from repro.errors import SchemaError
from repro.sql.schema import Column, TableSchema, schema
from repro.sql.types import FLOAT, INTEGER, VarCharType


@pytest.fixture
def emp_schema():
    return schema(
        "emp",
        ("eno", "integer", False),
        ("name", "varchar(40)"),
        ("salary", "float"),
    )


class TestSchemaConstruction:
    def test_builder(self, emp_schema):
        assert emp_schema.name == "emp"
        assert emp_schema.column_names() == ["eno", "name", "salary"]
        assert not emp_schema.column("eno").nullable

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER), Column("a", FLOAT)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_column_name(self):
        with pytest.raises(SchemaError):
            Column("has space", INTEGER)

    def test_position_lookup(self, emp_schema):
        assert emp_schema.position("salary") == 2
        with pytest.raises(SchemaError):
            emp_schema.position("nope")


class TestRowValidation:
    def test_check_row(self, emp_schema):
        row = emp_schema.check_row([1, "ann", 10])
        assert row == (1, "ann", 10.0)

    def test_arity_mismatch(self, emp_schema):
        with pytest.raises(SchemaError):
            emp_schema.check_row([1, "ann"])

    def test_not_null_enforced(self, emp_schema):
        with pytest.raises(SchemaError):
            emp_schema.check_row([None, "ann", 10.0])

    def test_nullable_allows_none(self, emp_schema):
        assert emp_schema.check_row([1, None, None]) == (1, None, None)

    def test_check_dict_fills_nulls(self, emp_schema):
        assert emp_schema.check_dict({"eno": 1}) == (1, None, None)

    def test_check_dict_unknown_column(self, emp_schema):
        with pytest.raises(SchemaError):
            emp_schema.check_dict({"eno": 1, "bogus": 2})


class TestRowCodec:
    def test_roundtrip(self, emp_schema):
        row = emp_schema.check_row([7, "o'hara", 12345.5])
        assert emp_schema.decode_row(emp_schema.encode_row(row)) == row

    def test_roundtrip_with_nulls(self, emp_schema):
        row = (9, None, None)
        assert emp_schema.decode_row(emp_schema.encode_row(row)) == row

    def test_row_to_dict(self, emp_schema):
        assert emp_schema.row_to_dict((1, "a", 2.0)) == {
            "eno": 1,
            "name": "a",
            "salary": 2.0,
        }


class TestCatalogRoundtrip:
    def test_to_from_catalog(self, emp_schema):
        rebuilt = TableSchema.from_catalog(emp_schema.to_catalog())
        assert rebuilt == emp_schema
        assert rebuilt.column("eno").nullable is False
