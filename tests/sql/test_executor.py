"""Unit tests for the SQL executor and its access-path selection."""

import pytest

from repro.lang.sqlparser import parse_sql
from repro.sql.database import Database
from repro.sql.executor import choose_plan, split_conjuncts
from repro.sql.schema import schema


@pytest.fixture
def db():
    db = Database()
    db.execute(
        "create table emp (eno integer not null, name varchar(40), "
        "salary float, dept varchar(20))"
    )
    for i in range(50):
        db.execute(
            f"insert into emp values ({i}, 'emp{i}', {i * 1000}.0, "
            f"'d{i % 5}')"
        )
    return db


class TestDDL:
    def test_create_table_via_sql(self, db):
        assert db.has_table("emp")
        assert db.table("emp").schema.column("eno").nullable is False

    def test_create_index_via_sql(self, db):
        db.execute("create index emp_eno on emp (eno)")
        assert "emp_eno" in db.table("emp").indexes

    def test_create_clustered_index(self, db):
        db.execute("create clustered index emp_s on emp (salary)")
        assert db.table("emp").indexes["emp_s"].clustered

    def test_drop_table(self, db):
        db.execute("drop table emp")
        assert not db.has_table("emp")


class TestSelect:
    def test_select_star(self, db):
        rows = db.execute("select * from emp where eno = 7")
        assert rows == [(7, "emp7", 7000.0, "d2")]

    def test_projection_expressions(self, db):
        rows = db.execute("select name, salary * 2 from emp where eno = 3")
        assert rows == [("emp3", 6000.0)]

    def test_order_by_desc_limit(self, db):
        rows = db.execute(
            "select eno from emp order by salary desc limit 3"
        )
        assert [r[0] for r in rows] == [49, 48, 47]

    def test_order_by_asc(self, db):
        rows = db.execute(
            "select eno from emp where salary >= 47000 order by eno"
        )
        assert [r[0] for r in rows] == [47, 48, 49]

    def test_where_and(self, db):
        rows = db.execute(
            "select eno from emp where dept = 'd0' and salary > 20000"
        )
        assert sorted(r[0] for r in rows) == [25, 30, 35, 40, 45]

    def test_where_or(self, db):
        rows = db.execute("select eno from emp where eno = 1 or eno = 2")
        assert sorted(r[0] for r in rows) == [1, 2]

    def test_like(self, db):
        rows = db.execute("select eno from emp where name like 'emp4_'")
        assert sorted(r[0] for r in rows) == list(range(40, 50))

    def test_in_and_between(self, db):
        rows = db.execute(
            "select eno from emp where eno in (3, 5, 99)"
        )
        assert sorted(r[0] for r in rows) == [3, 5]
        rows = db.execute(
            "select eno from emp where salary between 2000 and 4000"
        )
        assert sorted(r[0] for r in rows) == [2, 3, 4]

    def test_params(self, db):
        rows = db.execute(
            "select name from emp where eno = :target", {"target": 9}
        )
        assert rows == [("emp9",)]


class TestDml:
    def test_update_counts(self, db):
        n = db.execute("update emp set salary = -1.0 where dept = 'd1'")
        assert n == 10
        rows = db.execute("select eno from emp where salary = -1.0")
        assert len(rows) == 10

    def test_update_expression_uses_old_value(self, db):
        db.execute("update emp set salary = salary + 1 where eno = 0")
        assert db.execute("select salary from emp where eno = 0") == [(1.0,)]

    def test_delete(self, db):
        n = db.execute("delete from emp where eno >= 45")
        assert n == 5
        assert db.table("emp").count() == 45

    def test_insert_with_columns(self, db):
        db.execute("insert into emp (eno, name) values (999, 'newbie')")
        rows = db.execute("select salary from emp where eno = 999")
        assert rows == [(None,)]


class TestPlanSelection:
    def _plan(self, db, sql):
        statement = parse_sql(sql)
        return choose_plan(db.table("emp"), statement.where, {})

    def test_full_scan_without_index(self, db):
        assert self._plan(db, "select * from emp where eno = 1").kind == "scan"

    def test_equality_uses_hash_index(self, db):
        db.execute("create index emp_dept on emp (dept) using hash")
        plan = self._plan(db, "select * from emp where dept = 'd1'")
        assert plan.kind == "index_eq"
        assert plan.index.name == "emp_dept"

    def test_range_uses_btree(self, db):
        db.execute("create index emp_sal on emp (salary)")
        plan = self._plan(db, "select * from emp where salary > 10000")
        assert plan.kind == "index_range"

    def test_composite_equality_prefix(self, db):
        db.execute("create index emp_ds on emp (dept, salary)")
        plan = self._plan(
            db, "select * from emp where dept = 'd0' and salary > 1000"
        )
        assert plan.kind == "index_range"
        assert plan.low == ("d0", 1000)

    def test_mirrored_comparison(self, db):
        db.execute("create index emp_sal on emp (salary)")
        plan = self._plan(db, "select * from emp where 10000 < salary")
        assert plan.kind == "index_range"

    def test_or_prevents_index(self, db):
        db.execute("create index emp_sal on emp (salary)")
        plan = self._plan(
            db, "select * from emp where salary = 1 or dept = 'd1'"
        )
        assert plan.kind == "scan"

    def test_split_conjuncts(self):
        from repro.lang.exprparser import parse_expression_text

        expr = parse_expression_text("a = 1 and (b = 2 and c = 3) and d > 4")
        assert len(split_conjuncts(expr)) == 4

    def test_index_plan_matches_scan_results(self, db):
        """Index-assisted execution returns exactly what a scan returns."""
        scan_rows = sorted(
            db.execute("select eno from emp where salary >= 10000 and "
                       "salary <= 20000")
        )
        db.execute("create clustered index emp_sal on emp (salary)")
        indexed_rows = sorted(
            db.execute("select eno from emp where salary >= 10000 and "
                       "salary <= 20000")
        )
        assert indexed_rows == scan_rows
