"""Unit and property tests for the disk-based B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.sql.btree import BPlusTree
from repro.sql.buffer import BufferPool
from repro.sql.pager import MemoryPager


def make_tree(order=8, pool_capacity=256):
    pool = BufferPool(pool_capacity)
    fid = pool.register(MemoryPager())
    return BPlusTree(pool, fid, order=order)


class TestBasics:
    def test_empty_search(self):
        tree = make_tree()
        assert tree.search((1,)) == []
        assert list(tree.items()) == []
        assert tree.count() == 0

    def test_insert_search(self):
        tree = make_tree()
        tree.insert((5,), "five")
        assert tree.search((5,)) == ["five"]
        assert tree.search((6,)) == []

    def test_scalar_key_normalized(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert tree.search((5,)) == ["five"]

    def test_duplicates(self):
        tree = make_tree(order=4)
        for i in range(20):
            tree.insert((7,), f"v{i}")
        assert sorted(tree.search((7,))) == sorted(f"v{i}" for i in range(20))

    def test_null_key_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.insert((None,), "x")

    def test_many_inserts_splits(self):
        tree = make_tree(order=4)
        for i in range(500):
            tree.insert((i,), i * 10)
        assert tree.depth() > 2
        for i in range(0, 500, 37):
            assert tree.search((i,)) == [i * 10]
        tree.check_invariants()

    def test_reverse_insert_order(self):
        tree = make_tree(order=4)
        for i in reversed(range(300)):
            tree.insert((i,), i)
        assert [k[0] for k, _v in tree.items()] == list(range(300))


class TestRangeScan:
    def test_closed_range(self):
        tree = make_tree(order=4)
        for i in range(100):
            tree.insert((i,), i)
        got = [k[0] for k, _ in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 21))

    def test_open_bounds(self):
        tree = make_tree(order=4)
        for i in range(50):
            tree.insert((i,), i)
        assert len(list(tree.range_scan(None, (9,)))) == 10
        assert len(list(tree.range_scan((40,), None))) == 10

    def test_exclusive_bounds(self):
        tree = make_tree(order=4)
        for i in range(30):
            tree.insert((i,), i)
        got = [
            k[0]
            for k, _ in tree.range_scan(
                (10,), (20,), include_low=False, include_high=False
            )
        ]
        assert got == list(range(11, 20))

    def test_exclusive_low_with_duplicates_across_leaves(self):
        tree = make_tree(order=4)
        for i in range(10):
            tree.insert((5,), f"dup{i}")
        tree.insert((6,), "six")
        got = [v for _k, v in tree.range_scan((5,), None, include_low=False)]
        assert got == ["six"]

    def test_composite_prefix_scan(self):
        tree = make_tree(order=4)
        for a in range(5):
            for b in range(5):
                tree.insert((a, b), (a, b))
        got = [v for _k, v in tree.prefix_scan((3,))]
        assert got == [(3, b) for b in range(5)]


class TestDelete:
    def test_delete_single(self):
        tree = make_tree()
        tree.insert((1,), "a")
        assert tree.delete((1,)) == 1
        assert tree.search((1,)) == []

    def test_delete_by_value(self):
        tree = make_tree()
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert tree.delete((1,), "a") == 1
        assert tree.search((1,)) == ["b"]

    def test_delete_missing(self):
        tree = make_tree()
        assert tree.delete((9,)) == 0

    def test_delete_duplicates_across_leaves(self):
        tree = make_tree(order=4)
        for i in range(30):
            tree.insert((5,), i)
        assert tree.delete((5,)) == 30
        assert tree.search((5,)) == []

    def test_count_after_deletes(self):
        tree = make_tree(order=4)
        for i in range(100):
            tree.insert((i,), i)
        assert tree.count() == 100
        for i in range(0, 100, 2):
            tree.delete((i,))
        assert tree.count() == 50


class TestPersistenceAcrossBufferPressure:
    def test_small_pool_forces_io(self):
        """The tree stays correct when the buffer pool is smaller than the
        tree (pages evicted and reread)."""
        pool = BufferPool(8)
        fid = pool.register(MemoryPager())
        tree = BPlusTree(pool, fid, order=8)
        for i in range(2000):
            tree.insert((i,), i)
        assert pool.stats.evictions > 0
        for i in range(0, 2000, 111):
            assert tree.search((i,)) == [i]
        tree.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), st.integers()),
        max_size=200,
    ),
    st.lists(st.integers(min_value=0, max_value=200), max_size=40),
)
def test_btree_matches_dict_model(inserts, deletes):
    """Property: after random inserts and deletes, the tree agrees with a
    dict-of-lists model on every key and on full iteration order."""
    tree = make_tree(order=4)
    model = {}
    for key, value in inserts:
        tree.insert((key,), value)
        model.setdefault(key, []).append(value)
    for key in deletes:
        removed = tree.delete((key,))
        expected = len(model.pop(key, []))
        assert removed == expected
    for key, values in model.items():
        assert sorted(tree.search((key,)), key=repr) == sorted(values, key=repr)
    flattened = [k[0] for k, _v in tree.items()]
    assert flattened == sorted(flattened)
    assert tree.count() == sum(len(v) for v in model.values())
    # range scans agree with the model on a few windows
    for low, high in ((0, 50), (50, 150), (100, 200), (37, 38)):
        got = [k[0] for k, _v in tree.range_scan((low,), (high,))]
        expected = sorted(
            key
            for key, values in model.items()
            if low <= key <= high
            for _ in values
        )
        assert got == expected
