"""Unit tests for the column type system."""

import pytest

from repro.errors import SchemaError, TypeError_
from repro.sql.types import (
    DEFAULT_REGISTRY,
    FLOAT,
    INTEGER,
    CharType,
    TypeRegistry,
    UserDefinedType,
    VarCharType,
)


class TestIntegerType:
    def test_check_accepts_int(self):
        assert INTEGER.check(42) == 42

    def test_check_rejects_bool(self):
        with pytest.raises(TypeError_):
            INTEGER.check(True)

    def test_check_rejects_string(self):
        with pytest.raises(TypeError_):
            INTEGER.check("7")

    def test_check_rejects_out_of_range(self):
        with pytest.raises(TypeError_):
            INTEGER.check(2**63)
        with pytest.raises(TypeError_):
            INTEGER.check(-(2**63) - 1)

    def test_encode_decode_roundtrip(self):
        for value in (0, 1, -1, 2**62, -(2**62)):
            data = INTEGER.encode(value)
            decoded, offset = INTEGER.decode(data, 0)
            assert decoded == value
            assert offset == len(data)


class TestFloatType:
    def test_coerces_int(self):
        assert FLOAT.check(3) == 3.0
        assert isinstance(FLOAT.check(3), float)

    def test_rejects_bool(self):
        with pytest.raises(TypeError_):
            FLOAT.check(False)

    def test_roundtrip(self):
        data = FLOAT.encode(2.5)
        assert FLOAT.decode(data, 0) == (2.5, 8)


class TestVarCharType:
    def test_length_enforced(self):
        t = VarCharType(5)
        assert t.check("hello") == "hello"
        with pytest.raises(TypeError_):
            t.check("toolong")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError_):
            VarCharType(5).check(5)

    def test_roundtrip_unicode(self):
        t = VarCharType(20)
        data = t.encode("héllo wörld")
        value, _ = t.decode(data, 0)
        assert value == "héllo wörld"

    def test_zero_length_rejected(self):
        with pytest.raises(SchemaError):
            VarCharType(0)


class TestCharType:
    def test_strips_trailing_blanks(self):
        t = CharType(8)
        assert t.check("abc") == "abc"

    def test_name(self):
        assert CharType(8).name == "char(8)"


class TestNullableCodec:
    def test_none_roundtrip(self):
        data = INTEGER.encode_nullable(None)
        assert INTEGER.decode_nullable(data, 0) == (None, 1)

    def test_present_roundtrip(self):
        data = INTEGER.encode_nullable(9)
        value, offset = INTEGER.decode_nullable(data, 0)
        assert value == 9
        assert offset == len(data)


class TestTypeRegistry:
    def test_resolves_builtins(self):
        r = TypeRegistry()
        assert r.resolve("integer") is INTEGER
        assert r.resolve("float") is FLOAT
        assert r.resolve("varchar(10)").max_length == 10
        assert r.resolve("char(4)").name == "char(4)"

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            TypeRegistry().resolve("blob")

    def test_bad_parameter(self):
        with pytest.raises(SchemaError):
            TypeRegistry().resolve("varchar(x)")

    def test_udt_roundtrip(self):
        r = TypeRegistry()
        point = UserDefinedType(
            "point",
            validate=lambda v: (float(v[0]), float(v[1])),
            to_bytes=lambda v: f"{v[0]},{v[1]}".encode(),
            from_bytes=lambda b: tuple(float(x) for x in b.decode().split(",")),
        )
        r.register(point)
        resolved = r.resolve("point")
        assert resolved.check((1, 2)) == (1.0, 2.0)
        data = resolved.encode((1.0, 2.0))
        assert resolved.decode(data, 0)[0] == (1.0, 2.0)

    def test_udt_cannot_shadow_builtin(self):
        r = TypeRegistry()
        bad = UserDefinedType(
            "integer", lambda v: v, lambda v: b"", lambda b: None
        )
        with pytest.raises(SchemaError):
            r.register(bad)

    def test_duplicate_udt(self):
        r = TypeRegistry()
        udt = UserDefinedType("p", lambda v: v, lambda v: b"", lambda b: None)
        r.register(udt)
        with pytest.raises(SchemaError):
            r.register(udt)

    def test_udt_validation_error_wrapped(self):
        udt = UserDefinedType(
            "strict", lambda v: (_ for _ in ()).throw(ValueError("nope")),
            lambda v: b"", lambda b: None,
        )
        with pytest.raises(TypeError_):
            udt.check(1)
