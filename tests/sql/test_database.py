"""Unit tests for the Database facade: DDL, index maintenance, persistence,
and capture listeners."""

import pytest

from repro.errors import CatalogError
from repro.sql.database import Database
from repro.sql.schema import schema


@pytest.fixture
def simple_db():
    db = Database()
    db.create_table(schema("t", ("a", "integer"), ("b", "varchar(20)")))
    return db


class TestTableDDL:
    def test_create_and_lookup(self, simple_db):
        assert simple_db.has_table("t")
        assert simple_db.table("t").name == "t"

    def test_duplicate_rejected(self, simple_db):
        with pytest.raises(CatalogError):
            simple_db.create_table(schema("t", ("x", "integer")))

    def test_missing_table(self, simple_db):
        with pytest.raises(CatalogError):
            simple_db.table("nope")

    def test_drop(self, simple_db):
        simple_db.drop_table("t")
        assert not simple_db.has_table("t")


class TestIndexMaintenance:
    def test_index_backfilled(self, simple_db):
        t = simple_db.table("t")
        for i in range(20):
            t.insert([i, f"v{i}"])
        simple_db.create_index("t_a", "t", ["a"])
        assert [r for _rid, r in t.index_lookup("t_a", (7,))] == [(7, "v7")]

    def test_index_maintained_on_insert(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"])
        t = simple_db.table("t")
        t.insert([5, "five"])
        assert len(t.index_lookup("t_a", (5,))) == 1

    def test_index_maintained_on_delete(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"])
        t = simple_db.table("t")
        rid = t.insert([5, "five"])
        t.delete(rid)
        assert t.index_lookup("t_a", (5,)) == []

    def test_index_maintained_on_update(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"])
        t = simple_db.table("t")
        rid = t.insert([5, "five"])
        t.update(rid, {"a": 6})
        assert t.index_lookup("t_a", (5,)) == []
        assert len(t.index_lookup("t_a", (6,))) == 1

    def test_hash_index(self, simple_db):
        simple_db.create_index("t_b", "t", ["b"], using="hash")
        t = simple_db.table("t")
        t.insert([1, "x"])
        t.insert([2, "x"])
        assert len(t.index_lookup("t_b", ("x",))) == 2

    def test_clustered_index_returns_rows_inline(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"], clustered=True)
        t = simple_db.table("t")
        t.insert([3, "three"])
        hits = t.index_lookup("t_a", (3,))
        assert hits[0][1] == (3, "three")

    def test_nulls_not_indexed(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"])
        t = simple_db.table("t")
        t.insert([None, "null-key"])
        assert t.index_lookup("t_a", (0,)) == []
        assert t.count() == 1

    def test_duplicate_index_name(self, simple_db):
        simple_db.create_index("i", "t", ["a"])
        with pytest.raises(CatalogError):
            simple_db.create_index("i", "t", ["b"])

    def test_clustered_hash_rejected(self, simple_db):
        with pytest.raises(CatalogError):
            simple_db.create_index("i", "t", ["a"], clustered=True, using="hash")

    def test_unknown_column_rejected(self, simple_db):
        with pytest.raises(Exception):
            simple_db.create_index("i", "t", ["zzz"])

    def test_drop_index(self, simple_db):
        simple_db.create_index("i", "t", ["a"])
        simple_db.drop_index("i")
        assert "i" not in simple_db.table("t").indexes
        with pytest.raises(CatalogError):
            simple_db.drop_index("i")

    def test_find_index_prefix(self, simple_db):
        simple_db.create_index("i_ab", "t", ["a", "b"])
        t = simple_db.table("t")
        assert t.find_index(["a"]).name == "i_ab"
        assert t.find_index(["b"]) is None


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "dbdir")
        db = Database(path)
        db.create_table(schema("t", ("a", "integer"), ("b", "varchar(10)")))
        db.create_index("t_a", "t", ["a"], clustered=True)
        for i in range(100):
            db.table("t").insert([i, f"v{i}"])
        db.close()

        db2 = Database(path)
        t = db2.table("t")
        assert t.count() == 100
        assert t.index_lookup("t_a", (42,))[0][1] == (42, "v42")
        db2.close()

    def test_hash_index_rebuilt_on_open(self, tmp_path):
        path = str(tmp_path / "dbdir")
        db = Database(path)
        db.create_table(schema("t", ("a", "integer")))
        db.create_index("t_a", "t", ["a"], using="hash")
        db.table("t").insert([7])
        db.close()
        db2 = Database(path)
        assert len(db2.table("t").index_lookup("t_a", (7,))) == 1
        db2.close()


class TestCaptureListeners:
    def test_listener_sees_all_ops(self, simple_db):
        events = []
        t = simple_db.table("t")
        t.listeners.append(lambda op, old, new: events.append((op, old, new)))
        rid = t.insert([1, "x"])
        t.update(rid, {"b": "y"})
        t.delete(rid)
        assert [e[0] for e in events] == ["insert", "update", "delete"]
        assert events[0][2] == {"a": 1, "b": "x"}
        assert events[1][1]["b"] == "x" and events[1][2]["b"] == "y"
        assert events[2][1]["b"] == "y"

    def test_sql_path_fires_listeners(self, simple_db):
        events = []
        t = simple_db.table("t")
        t.listeners.append(lambda op, old, new: events.append(op))
        simple_db.execute("insert into t values (1, 'a')")
        simple_db.execute("update t set b = 'z' where a = 1")
        simple_db.execute("delete from t where a = 1")
        assert events == ["insert", "update", "delete"]


class TestTruncate:
    def test_truncate_clears_indexes(self, simple_db):
        simple_db.create_index("t_a", "t", ["a"])
        simple_db.create_index("t_b", "t", ["b"], using="hash")
        t = simple_db.table("t")
        for i in range(10):
            t.insert([i, "v"])
        t.truncate()
        assert t.count() == 0
        assert t.index_lookup("t_a", (3,)) == []
        assert t.index_lookup("t_b", ("v",)) == []
