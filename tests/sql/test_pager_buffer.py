"""Unit tests for page files and the buffer pool."""

import os

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.sql.buffer import BufferPool
from repro.sql.page import PAGE_SIZE, SlottedPage
from repro.sql.pager import FilePager, MemoryPager, open_pager


class TestMemoryPager:
    def test_allocate_sequential(self):
        pager = MemoryPager()
        assert pager.allocate() == 0
        assert pager.allocate() == 1
        assert pager.num_pages == 2

    def test_write_read_roundtrip(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        data = bytes([7]) * PAGE_SIZE
        pager.write(page_no, data)
        assert bytes(pager.read(page_no)) == data

    def test_read_returns_copy(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        view = pager.read(page_no)
        view[0] = 99
        assert pager.read(page_no)[0] == 0

    def test_free_and_reuse(self):
        pager = MemoryPager()
        a = pager.allocate()
        pager.free(a)
        assert pager.allocate() == a

    def test_out_of_range(self):
        pager = MemoryPager()
        with pytest.raises(StorageError):
            pager.read(0)

    def test_bad_write_size(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        with pytest.raises(StorageError):
            pager.write(page_no, b"short")

    def test_io_counters(self):
        pager = MemoryPager()
        page_no = pager.allocate()
        pager.read(page_no)
        pager.read(page_no)
        assert pager.reads == 2
        assert pager.writes >= 1  # allocate writes zeros


class TestFilePager:
    def test_persistence(self, tmp_path):
        path = str(tmp_path / "data.pg")
        pager = FilePager(path)
        page_no = pager.allocate()
        pager.write(page_no, bytes([3]) * PAGE_SIZE)
        pager.close()
        reopened = FilePager(path)
        assert reopened.num_pages == 1
        assert bytes(reopened.read(page_no)) == bytes([3]) * PAGE_SIZE
        reopened.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = str(tmp_path / "bad.pg")
        with open(path, "wb") as fh:
            fh.write(b"x" * 100)
        with pytest.raises(StorageError):
            FilePager(path)

    def test_open_pager_dispatch(self, tmp_path):
        assert isinstance(open_pager(None), MemoryPager)
        pager = open_pager(str(tmp_path / "f.pg"))
        assert isinstance(pager, FilePager)
        pager.close()


class TestBufferPool:
    def _pool(self, capacity=4):
        pool = BufferPool(capacity)
        file_id = pool.register(MemoryPager())
        return pool, file_id

    def test_pin_returns_live_view(self):
        pool, fid = self._pool()
        page_no = pool.allocate(fid)
        page = pool.pin(fid, page_no)
        slot = page.insert(b"data")
        pool.unpin(fid, page_no, dirty=True)
        again = pool.pin(fid, page_no)
        assert again.read(slot) == b"data"
        pool.unpin(fid, page_no)

    def test_hit_miss_accounting(self):
        pool, fid = self._pool()
        page_no = pool.allocate(fid)
        pool.pin(fid, page_no)
        pool.unpin(fid, page_no)
        pool.pin(fid, page_no)
        pool.unpin(fid, page_no)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio() == 0.5

    def test_eviction_writes_back_dirty(self):
        pool, fid = self._pool(capacity=2)
        pages = [pool.allocate(fid) for _ in range(3)]
        page = pool.pin(fid, pages[0])
        slot = page.insert(b"persisted")
        pool.unpin(fid, pages[0], dirty=True)
        # Touch two more pages to force eviction of page 0.
        for page_no in pages[1:]:
            pool.pin(fid, page_no)
            pool.unpin(fid, page_no)
        assert pool.stats.evictions >= 1
        reread = pool.pin(fid, pages[0])
        assert reread.read(slot) == b"persisted"
        pool.unpin(fid, pages[0])

    def test_pinned_pages_not_evicted(self):
        pool, fid = self._pool(capacity=2)
        pages = [pool.allocate(fid) for _ in range(3)]
        pool.pin(fid, pages[0])  # stays pinned
        pool.pin(fid, pages[1])
        pool.unpin(fid, pages[1])
        pool.pin(fid, pages[2])  # must evict pages[1], not pages[0]
        assert (fid, pages[0]) in pool._frames
        pool.unpin(fid, pages[2])
        pool.unpin(fid, pages[0])

    def test_all_pinned_raises(self):
        pool, fid = self._pool(capacity=2)
        pages = [pool.allocate(fid) for _ in range(3)]
        pool.pin(fid, pages[0])
        pool.pin(fid, pages[1])
        with pytest.raises(BufferPoolError):
            pool.pin(fid, pages[2])

    def test_unbalanced_unpin_raises(self):
        pool, fid = self._pool()
        page_no = pool.allocate(fid)
        with pytest.raises(BufferPoolError):
            pool.unpin(fid, page_no)

    def test_flush_clears_dirty(self):
        pool, fid = self._pool()
        page_no = pool.allocate(fid)
        page = pool.pin(fid, page_no)
        page.insert(b"x")
        pool.unpin(fid, page_no, dirty=True)
        pool.flush()
        raw = pool.pager(fid).read(page_no)
        assert SlottedPage(raw).live_count() == 1

    def test_multiple_files(self):
        pool = BufferPool(8)
        fid_a = pool.register(MemoryPager())
        fid_b = pool.register(MemoryPager())
        page_a = pool.allocate(fid_a)
        page_b = pool.allocate(fid_b)
        view_a = pool.pin(fid_a, page_a)
        view_a.insert(b"a-file")
        pool.unpin(fid_a, page_a, dirty=True)
        view_b = pool.pin(fid_b, page_b)
        assert view_b.live_count() == 0
        pool.unpin(fid_b, page_b)

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(0)
