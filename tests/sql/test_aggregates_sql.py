"""Unit tests for GROUP BY / HAVING / aggregate SELECT in the SQL executor."""

import pytest

from repro.sql.database import Database


@pytest.fixture
def db():
    db = Database()
    db.execute(
        "create table emp (name varchar(40), salary float, dept varchar(10))"
    )
    rows = [
        ("a", 100.0, "eng"),
        ("b", 200.0, "eng"),
        ("c", 300.0, "eng"),
        ("d", 50.0, "toys"),
        ("e", 150.0, "toys"),
        ("f", None, "shoes"),
    ]
    for row in rows:
        db.execute(
            "insert into emp values ("
            + ", ".join(
                "null" if v is None else (f"'{v}'" if isinstance(v, str) else str(v))
                for v in row
            )
            + ")"
        )
    return db


class TestGlobalAggregates:
    def test_count_star(self, db):
        assert db.execute("select count(*) from emp") == [(6,)]

    def test_count_column_skips_nulls(self, db):
        assert db.execute("select count(salary) from emp") == [(5,)]

    def test_sum_avg_min_max(self, db):
        assert db.execute(
            "select sum(salary), avg(salary), min(salary), max(salary) "
            "from emp"
        ) == [(800.0, 160.0, 50.0, 300.0)]

    def test_aggregate_with_where(self, db):
        assert db.execute(
            "select count(*) from emp where dept = 'eng'"
        ) == [(3,)]

    def test_empty_table_global_aggregate(self, db):
        db.execute("create table empty (x integer)")
        assert db.execute("select count(*), sum(x) from empty") == [(0, None)]

    def test_aggregate_arithmetic(self, db):
        assert db.execute(
            "select max(salary) - min(salary) from emp where dept = 'eng'"
        ) == [(200.0,)]


class TestGroupBy:
    def test_group_counts(self, db):
        rows = db.execute(
            "select dept, count(*) from emp group by dept order by dept"
        )
        assert rows == [("eng", 3), ("shoes", 1), ("toys", 2)]

    def test_group_avg(self, db):
        rows = db.execute(
            "select dept, avg(salary) from emp group by dept "
            "order by avg(salary) desc"
        )
        assert rows[0] == ("eng", 200.0)

    def test_having(self, db):
        rows = db.execute(
            "select dept from emp group by dept having count(*) >= 2 "
            "order by dept"
        )
        assert rows == [("eng",), ("toys",)]

    def test_having_with_where(self, db):
        rows = db.execute(
            "select dept, count(*) from emp where salary > 75 "
            "group by dept having count(*) > 1"
        )
        assert rows == [("eng", 3)]

    def test_group_by_expression(self, db):
        rows = db.execute(
            "select count(*) from emp group by salary > 100 "
            "order by count(*)"
        )
        # groups: salary>100 {b,c,e}, salary<=100 {a,d}, NULL {f}
        assert sorted(r[0] for r in rows) == [1, 2, 3]

    def test_limit_applies_after_grouping(self, db):
        rows = db.execute(
            "select dept from emp group by dept order by dept limit 2"
        )
        assert rows == [("eng",), ("shoes",)]

    def test_empty_group_result(self, db):
        rows = db.execute(
            "select dept from emp group by dept having count(*) > 10"
        )
        assert rows == []
