"""Unit tests for the main-memory hash index."""

import pytest

from repro.errors import StorageError
from repro.sql.buffer import BufferPool
from repro.sql.hashindex import HashIndex
from repro.sql.heap import HeapFile
from repro.sql.pager import MemoryPager
from repro.sql.schema import schema


class TestHashIndex:
    def test_insert_search(self):
        idx = HashIndex(["k"])
        idx.insert((1,), (0, 0))
        idx.insert((1,), (0, 1))
        idx.insert((2,), (0, 2))
        assert sorted(idx.search((1,))) == [(0, 0), (0, 1)]
        assert idx.search((3,)) == []

    def test_scalar_key_normalized(self):
        idx = HashIndex(["k"])
        idx.insert(5, (0, 0))
        assert idx.search(5) == [(0, 0)]
        assert idx.search((5,)) == [(0, 0)]

    def test_composite_key(self):
        idx = HashIndex(["a", "b"])
        idx.insert(("x", 1), (0, 0))
        assert idx.search(("x", 1)) == [(0, 0)]
        assert idx.search(("x", 2)) == []

    def test_delete(self):
        idx = HashIndex(["k"])
        idx.insert((1,), (0, 0))
        assert idx.delete((1,), (0, 0))
        assert not idx.delete((1,), (0, 0))
        assert idx.search((1,)) == []
        assert idx.count() == 0

    def test_null_rejected(self):
        idx = HashIndex(["k"])
        with pytest.raises(StorageError):
            idx.insert((None,), (0, 0))

    def test_no_columns_rejected(self):
        with pytest.raises(StorageError):
            HashIndex([])

    def test_counts(self):
        idx = HashIndex(["k"])
        for i in range(10):
            idx.insert((i % 3,), (0, i))
        assert idx.count() == 10
        assert idx.distinct_keys() == 3

    def test_rebuild_from_heap_skips_nulls(self):
        pool = BufferPool(16)
        fid = pool.register(MemoryPager())
        heap = HeapFile(schema("t", ("k", "integer"), ("v", "integer")), pool, fid)
        heap.insert([1, 10])
        heap.insert([None, 20])
        heap.insert([1, 30])
        idx = HashIndex(["k"])
        idx.rebuild(heap)
        assert idx.count() == 2
        assert len(idx.search((1,))) == 2

    def test_items_iteration(self):
        idx = HashIndex(["k"])
        idx.insert((1,), (0, 0))
        idx.insert((2,), (0, 1))
        assert sorted(idx.items()) == [((1,), (0, 0)), ((2,), (0, 1))]
