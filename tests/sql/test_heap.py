"""Unit and property tests for heap files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.sql.buffer import BufferPool
from repro.sql.heap import HeapFile
from repro.sql.pager import MemoryPager
from repro.sql.schema import schema


def make_heap(pool_capacity=64):
    pool = BufferPool(pool_capacity)
    fid = pool.register(MemoryPager())
    s = schema("t", ("k", "integer"), ("v", "varchar(200)"))
    return HeapFile(s, pool, fid)


class TestHeapBasics:
    def test_insert_read(self):
        heap = make_heap()
        rid = heap.insert([1, "one"])
        assert heap.read(rid) == (1, "one")

    def test_insert_validates(self):
        heap = make_heap()
        with pytest.raises(Exception):
            heap.insert(["not-int", "x"])

    def test_delete(self):
        heap = make_heap()
        rid = heap.insert([1, "x"])
        heap.delete(rid)
        assert not heap.exists(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_update_in_place(self):
        heap = make_heap()
        rid = heap.insert([1, "short"])
        new_rid = heap.update(rid, [1, "tiny"])
        assert new_rid == rid
        assert heap.read(rid) == (1, "tiny")

    def test_update_relocates_when_page_full(self):
        heap = make_heap()
        rids = [heap.insert([i, "x" * 190]) for i in range(25)]
        # grow one row enough that its (now full) page cannot hold it
        target = rids[0]
        new_rid = heap.update(target, [0, "y" * 199])
        assert heap.read(new_rid) == (0, "y" * 199)

    def test_scan_yields_all_live(self):
        heap = make_heap()
        rids = [heap.insert([i, f"v{i}"]) for i in range(100)]
        heap.delete(rids[10])
        heap.delete(rids[50])
        scanned = {row[0] for _rid, row in heap.scan()}
        assert scanned == set(range(100)) - {10, 50}

    def test_count_tracks_mutations(self):
        heap = make_heap()
        rids = [heap.insert([i, "v"]) for i in range(10)]
        assert heap.count() == 10
        heap.delete(rids[0])
        assert heap.count() == 9
        heap.insert([99, "v"])
        assert heap.count() == 10

    def test_spans_pages(self):
        heap = make_heap()
        for i in range(200):
            heap.insert([i, "z" * 150])
        assert heap.num_pages > 1
        assert heap.count() == 200

    def test_truncate(self):
        heap = make_heap()
        for i in range(50):
            heap.insert([i, "v"])
        pages_before = heap.num_pages
        heap.truncate()
        assert heap.count() == 0
        assert list(heap.scan()) == []
        # pages are retained and reused
        assert heap.num_pages == pages_before
        heap.insert([1, "again"])
        assert heap.num_pages == pages_before

    def test_exists_out_of_range(self):
        heap = make_heap()
        assert not heap.exists((99, 0))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=0, max_value=1000),
            st.text(max_size=60),
        ),
        max_size=80,
    )
)
def test_heap_model_property(operations):
    """Heap behaves like a dict rid->row under random mutations."""
    heap = make_heap()
    model = {}
    for op, k, v in operations:
        if op == "insert":
            rid = heap.insert([k, v])
            model[rid] = (k, v)
        elif op == "delete" and model:
            rid = next(iter(model))
            heap.delete(rid)
            del model[rid]
        elif op == "update" and model:
            rid = next(iter(model))
            new_rid = heap.update(rid, [k, v])
            del model[rid]
            model[new_rid] = (k, v)
    assert dict(heap.scan()) == model
    assert heap.count() == len(model)
