"""The event-loop front end and asyncio client, plus the deadline cap.

The async server must be behaviourally identical to the threaded one on
the wire — the shared ``ServerCore`` makes that true by construction, and
these tests pin the parts that are front-end-specific: oversized-frame
recovery on the incremental decoder, slow-consumer policies on the loop's
outboxes, ingest admission, quiesce, batched wakeups, loop-lag
observability, and the ``REPRO_NET_ASYNC`` selector.

The firing-ledger equivalence test is the §-level oracle: the same seeded
workload through the threaded server, the async server, and the
in-process engine must fold to identical ACTION_FIRED digest multisets.
"""

import asyncio
import json
import random
import socket
import struct
import time
from collections import Counter

import pytest

from repro.engine.triggerman import TriggerMan
from repro.errors import RemoteError
from repro.net import protocol
from repro.net.aremote import (
    AsyncRemoteConnection,
    AsyncRemoteDataSourceProgram,
    AsyncRemoteTriggerManClient,
)
from repro.net.aserver import AsyncTriggerManServer
from repro.net.remote import (
    RemoteConnection,
    RemoteDataSourceProgram,
    RemoteTriggerManClient,
)
from repro.net.server import TriggerManServer
from repro.wal.log import ACTION_FIRED


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def aserved():
    tman = TriggerMan.in_memory()
    tman.execute_command(
        "define data source ticks as stream (symbol varchar(8), price float)"
    )
    server = tman.serve("127.0.0.1", 0, async_io=True)
    yield tman, server
    tman.close()


class TestAsyncRoundTrips:
    def test_sync_client_full_round_trip(self, aserved):
        tman, server = aserved
        assert isinstance(server, AsyncTriggerManServer)
        with RemoteTriggerManClient(*server.address) as client:
            assert client.ping()["schema"] == protocol.WIRE_SCHEMA
            client.command(
                "create trigger hot from ticks on insert "
                "when ticks.price > 100 do raise event Hot(ticks.price)"
            )
            client.register_for_event("Hot")
            feed = RemoteDataSourceProgram(client, "ticks")
            feed.insert({"symbol": "ACME", "price": 150.0})
            feed.insert({"symbol": "ACME", "price": 50.0})
            assert client.process() == 2
            assert wait_for(lambda: len(client.inbox) == 1)
            notification = client.next_notification()
            assert notification.event_name == "Hot"
            assert notification.args == (150.0,)

    def test_async_client_full_round_trip(self, aserved):
        tman, server = aserved

        async def main():
            async with await AsyncRemoteTriggerManClient.connect(
                *server.address
            ) as client:
                assert (await client.ping())["schema"] == protocol.WIRE_SCHEMA
                await client.command(
                    "create trigger hot from ticks on insert "
                    "when ticks.price > 100 do raise event Hot(ticks.price)"
                )
                await client.register_for_event("Hot")
                feed = AsyncRemoteDataSourceProgram(client, "ticks")
                await feed.insert({"symbol": "ACME", "price": 150.0})
                await feed.insert({"symbol": "ACME", "price": 50.0})
                assert await client.process() == 2
                for _ in range(500):
                    if client.inbox:
                        break
                    await asyncio.sleep(0.01)
                notification = client.next_notification()
                assert notification.event_name == "Hot"
                assert notification.args == (150.0,)
                await client.disconnect()

        asyncio.run(main())

    def test_async_client_works_against_threaded_server_too(self):
        tman = TriggerMan.in_memory()
        # pin the threaded front end regardless of REPRO_NET_ASYNC
        server = tman.serve("127.0.0.1", 0, async_io=False)
        assert isinstance(server, TriggerManServer)

        async def main():
            async with await AsyncRemoteTriggerManClient.connect(
                *server.address
            ) as client:
                assert (await client.ping())["engine"] == "triggerman"

        try:
            asyncio.run(main())
        finally:
            tman.close()

    def test_env_knob_selects_the_front_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_ASYNC", "1")
        tman = TriggerMan.in_memory()
        try:
            server = tman.serve("127.0.0.1", 0)
            assert isinstance(server, AsyncTriggerManServer)
            assert server.status()["mode"] == "async"
        finally:
            tman.close()
        monkeypatch.setenv("REPRO_NET_ASYNC", "0")
        tman = TriggerMan.in_memory()
        try:
            assert isinstance(tman.serve("127.0.0.1", 0), TriggerManServer)
        finally:
            tman.close()


class TestOversizedRecovery:
    """Satellite: a frame over the cap answers ``E_PARSE`` and the
    connection keeps working — on both front ends, at the exact boundary."""

    @pytest.mark.parametrize("async_io", [False, True])
    def test_cap_boundary_live(self, async_io):
        cap = 4096
        tman = TriggerMan.in_memory()
        server = tman.serve("127.0.0.1", 0, async_io=async_io, max_frame=cap)
        sock = socket.create_connection(server.address, timeout=5.0)
        rfile = sock.makefile("rb")
        try:
            def padded(request_id, body_len):
                base = protocol.request(request_id, "ping", pad="")
                overhead = (
                    len(protocol.encode_frame(base)) - protocol.HEADER_SIZE
                )
                return protocol.encode_frame(
                    protocol.request(
                        request_id, "ping", pad="x" * (body_len - overhead)
                    )
                )

            # exactly at the cap: answered
            sock.sendall(padded(1, cap))
            response = protocol.read_frame(rfile)
            assert response["id"] == 1 and response["ok"]

            # one past the cap: E_PARSE, connection survives
            sock.sendall(padded(2, cap + 1))
            response = protocol.read_frame(rfile)
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.E_PARSE
            assert "max_frame" in response["error"]["message"]

            # ...and the very next frame still gets served
            sock.sendall(padded(3, cap - 1))
            response = protocol.read_frame(rfile)
            assert response["id"] == 3 and response["ok"]
            assert server.status()["connections"] == 1
        finally:
            sock.close()
            tman.close()

    def test_giant_declared_length_is_not_allocated(self, aserved):
        tman, server = aserved
        sock = socket.create_connection(server.address, timeout=5.0)
        rfile = sock.makefile("rb")
        try:
            # half-gigabyte declared length, no body bytes at all yet
            sock.sendall(struct.pack(">I", 512 * 1024 * 1024))
            response = protocol.read_frame(rfile)
            assert response["error"]["code"] == protocol.E_PARSE
        finally:
            sock.close()


class TestAsyncBackpressure:
    def test_ingest_admission_control(self):
        tman = TriggerMan.in_memory()
        tman.execute_command(
            "define data source ticks as stream (symbol varchar(8))"
        )
        server = tman.serve(
            "127.0.0.1", 0, async_io=True, ingest_high_water=3
        )
        try:
            feed = RemoteDataSourceProgram(
                "127.0.0.1", "ticks", server.address[1], retries=0
            )
            with pytest.raises(RemoteError) as excinfo:
                for _ in range(20):
                    feed.insert({"symbol": "A"})
            assert excinfo.value.code == protocol.E_BACKPRESSURE
            assert excinfo.value.retryable
            assert server.status()["ingest_rejected"] >= 1
            assert len(tman.queue) <= 4
            feed.close()
        finally:
            tman.close()

    def _stalled_subscriber(self, server):
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(
            protocol.encode_frame(
                protocol.request(1, "register_event", event="E")
            )
        )
        rfile = sock.makefile("rb")
        assert protocol.read_frame(rfile)["ok"]
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
        return sock

    def test_drop_policy_bounds_outbox_and_counts(self):
        tman = TriggerMan.in_memory()
        server = tman.serve("127.0.0.1", 0, async_io=True, outbox_limit=16)
        try:
            sock = self._stalled_subscriber(server)
            for _ in range(5000):
                tman.events.raise_event("E", ("x" * 200,), "t", 1)
            connection = next(iter(server._connections.values()))
            assert connection.outbox_depth() <= 16 + 1
            assert server.status()["notifications_dropped"] > 0
            assert server.status()["outbox_hwm"] >= 1
            with RemoteTriggerManClient(*server.address) as other:
                assert other.ping()["engine"] == "triggerman"
            sock.close()
        finally:
            tman.close()

    def test_disconnect_policy_closes_the_stalled_connection(self):
        tman = TriggerMan.in_memory()
        server = tman.serve(
            "127.0.0.1", 0, async_io=True,
            outbox_limit=8, slow_consumer="disconnect",
        )
        try:
            sock = self._stalled_subscriber(server)
            for _ in range(5000):
                tman.events.raise_event("E", ("x" * 200,), "t", 1)
            assert wait_for(
                lambda: server.status()["slow_consumer_disconnects"] >= 1
            )
            assert wait_for(lambda: server.status()["connections"] == 0)
            sock.close()
        finally:
            tman.close()

    def test_event_burst_batches_wakeups(self, aserved):
        """A burst of pushes from engine threads coalesces into far fewer
        loop wakeups than frames — the one-wakeup-per-burst design."""
        tman, server = aserved
        with RemoteTriggerManClient(*server.address) as client:
            client.register_for_event("E")
            before = server.status()["wakeups"]
            burst = 500
            for _ in range(burst):
                tman.events.raise_event("E", ("x",), "t", 1)
            assert wait_for(lambda: len(client.inbox) == burst)
            wakeups = server.status()["wakeups"] - before
            assert wakeups <= burst // 2  # batched, not one wakeup per frame
            assert server.status()["frames_flushed"] >= burst


class TestAsyncLifecycle:
    def test_quiesce_refuses_new_commands_and_drains(self, aserved):
        tman, server = aserved
        with RemoteTriggerManClient(*server.address, retries=0) as client:
            assert client.ping()
            server._quiescing = True
            with pytest.raises(RemoteError) as excinfo:
                client.command("create trigger t from ticks on insert do "
                               "raise event E")
            assert excinfo.value.code == protocol.E_SHUTTING_DOWN
            server._quiescing = False

    def test_stop_is_clean_and_idempotent(self):
        tman = TriggerMan.in_memory()
        server = tman.serve("127.0.0.1", 0, async_io=True)
        address = server.address
        with RemoteTriggerManClient(*address) as client:
            assert client.ping()
        server.stop()
        server.stop()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)
        tman.close()

    def test_connections_refused_while_quiescing(self, aserved):
        tman, server = aserved
        server._quiescing = True
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.sendall(protocol.encode_frame(protocol.request(1, "ping")))
            # the front end drops adopted-while-quiescing transports: the
            # client sees EOF or a reset, never a response
            try:
                assert sock.makefile("rb").read(1) == b""
            except ConnectionError:
                pass
            sock.close()
            assert server.status()["connections"] == 0
        finally:
            server._quiescing = False

    def test_status_surfaces_loop_health(self, aserved):
        tman, server = aserved
        with RemoteTriggerManClient(*server.address) as client:
            client.ping()
        time.sleep(0.15)  # let a couple of lag probes tick
        status = server.status()
        assert status["mode"] == "async"
        assert status["bridge_threads"] >= 1
        assert isinstance(status["loop_lag_p99_ns"], int)
        assert status["loop_lag_p99_ns"] >= 0
        assert status["wakeups"] >= 1
        assert status["frames_flushed"] >= 1


class TestDeadline:
    """Satellite: the retry loop's total elapsed time is capped."""

    def _slow_server(self, async_io=False, delay=3.0):
        tman = TriggerMan.in_memory()
        server = tman.serve("127.0.0.1", 0, async_io=async_io)
        original = server._op_ping

        def slow_ping(connection, payload):
            time.sleep(delay)
            return original(connection, payload)

        server._op_ping = slow_ping
        return tman, server

    def test_sync_deadline_caps_total_elapsed(self):
        tman, server = self._slow_server()
        conn = RemoteConnection(
            *server.address, timeout=5.0, retries=10,
            backoff=1.0, backoff_cap=8.0,
        )
        try:
            start = time.monotonic()
            with pytest.raises(RemoteError) as excinfo:
                conn.call("ping", deadline=0.4)
            elapsed = time.monotonic() - start
            assert excinfo.value.code == protocol.E_TIMEOUT
            assert elapsed < 2.0  # not retries x (timeout + backoff)
        finally:
            conn.close()
            tman.close()

    def test_connection_level_deadline_is_the_default(self):
        tman, server = self._slow_server()
        conn = RemoteConnection(
            *server.address, timeout=5.0, retries=10, deadline=0.4,
        )
        try:
            start = time.monotonic()
            with pytest.raises(RemoteError):
                conn.call("ping")
            assert time.monotonic() - start < 2.0
        finally:
            conn.close()
            tman.close()

    def test_no_deadline_preserves_old_retry_behaviour(self):
        tman, server = self._slow_server(delay=0.0)
        conn = RemoteConnection(*server.address, timeout=5.0)
        try:
            assert conn.deadline is None
            assert conn.call("ping")["engine"] == "triggerman"
        finally:
            conn.close()
            tman.close()

    def test_async_deadline_caps_total_elapsed(self):
        tman, server = self._slow_server(async_io=True)

        async def main():
            conn = await AsyncRemoteConnection.open(
                *server.address, timeout=5.0, retries=10,
                backoff=1.0, backoff_cap=8.0,
            )
            try:
                start = time.monotonic()
                with pytest.raises(RemoteError) as excinfo:
                    await conn.call("ping", deadline=0.4)
                assert excinfo.value.code == protocol.E_TIMEOUT
                assert time.monotonic() - start < 2.0
            finally:
                await conn.close()

        try:
            asyncio.run(main())
        finally:
            tman.close()


TRIGGERS = (
    "create trigger big from ticks on insert "
    "when ticks.price > 500 do raise event Big(ticks.symbol, ticks.price)",
    "create trigger acme from ticks on insert "
    "when ticks.symbol = 'ACME' and ticks.price > 100 "
    "do raise event AcmeHot(ticks.price)",
)


def _workload(seed=1999, count=300):
    rng = random.Random(seed)
    return [
        {"symbol": rng.choice(["ACME", "GLOBEX", "INITECH"]),
         "price": round(rng.uniform(0.0, 1000.0), 2)}
        for _ in range(count)
    ]


def _ledger(tman):
    """The durable firing ledger as a multiset of (trigger, digest)."""
    ledger = Counter()
    for record in tman.catalog_db.wal.scan():
        if record.rtype == ACTION_FIRED:
            body = record.json()
            ledger[(body["trigger"], body["digest"])] += 1
    return ledger


class TestLedgerEquivalence:
    """One seeded workload, three execution paths, identical ACTION_FIRED
    digests: the async front end changes scheduling, never semantics."""

    def _run(self, tmp_path, mode):
        tman = TriggerMan.persistent(str(tmp_path / mode))
        try:
            tman.define_stream(
                "ticks", [("symbol", "varchar(8)"), ("price", "float")]
            )
            for text in TRIGGERS:
                tman.create_trigger(text)
            if mode == "in-process":
                for row in _workload():
                    tman.insert("ticks", row)
                tman.process_all()
            else:
                server = tman.serve(
                    "127.0.0.1", 0, async_io=(mode == "async")
                )
                assert server.status()["mode"] == mode
                with RemoteTriggerManClient(*server.address) as client:
                    feed = RemoteDataSourceProgram(client, "ticks")
                    for row in _workload():
                        feed.insert(row)
                    client.process()
            tman.flush()
            return _ledger(tman)
        finally:
            tman.close()

    def test_identical_digests_across_all_three_paths(self, tmp_path):
        in_process = self._run(tmp_path, "in-process")
        threaded = self._run(tmp_path, "threaded")
        async_ledger = self._run(tmp_path, "async")
        assert sum(in_process.values()) > 0  # the workload really fired
        assert threaded == in_process
        assert async_ledger == in_process
