"""``triggerman-wire-v1`` frame-level tests: round trips plus the
malformed-frame, oversized-frame, and mid-frame-disconnect paths."""

import io
import struct

import pytest

from repro.errors import WireError
from repro.net import protocol


def frame_stream(*payloads, max_frame=protocol.MAX_FRAME):
    return io.BytesIO(
        b"".join(protocol.encode_frame(p, max_frame) for p in payloads)
    )


class TestRoundTrip:
    def test_encode_read_round_trip(self):
        payload = {"id": 1, "op": "command", "text": "create trigger ..."}
        stream = frame_stream(payload)
        assert protocol.read_frame(stream) == payload
        assert protocol.read_frame(stream) is None  # clean EOF

    def test_multiple_frames_in_sequence(self):
        payloads = [protocol.request(i, "ping") for i in range(5)]
        stream = frame_stream(*payloads)
        for expected in payloads:
            assert protocol.read_frame(stream) == expected

    def test_unicode_and_nested_values_survive(self):
        payload = protocol.request(
            7, "ingest", new={"symbol": "héllo™", "price": 1.5},
            old=None, nested={"a": [1, [2, {"b": None}]]},
        )
        assert protocol.read_frame(frame_stream(payload)) == payload

    def test_response_helpers(self):
        ok = protocol.ok_response(3, {"x": 1})
        assert protocol.parse_response(ok) == (3, True, {"x": 1})
        err = protocol.error_response(4, protocol.E_BACKPRESSURE, "full")
        request_id, success, error = protocol.parse_response(err)
        assert (request_id, success) == (4, False)
        assert error["retryable"] is True  # backpressure defaults retryable
        err2 = protocol.error_response(5, protocol.E_PARSE, "bad")
        assert protocol.parse_response(err2)[2]["retryable"] is False


class TestMalformedFrames:
    def test_garbage_body_raises(self):
        body = b"not json at all"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError, match="not valid JSON"):
            protocol.read_frame(stream)

    def test_non_object_payload_raises(self):
        body = b"[1,2,3]"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError, match="must be a JSON object"):
            protocol.read_frame(stream)

    def test_oversized_declared_length_refused_before_allocation(self):
        stream = io.BytesIO(struct.pack(">I", 10 * 1024 * 1024))
        with pytest.raises(WireError, match="exceeds max_frame"):
            protocol.read_frame(stream)

    def test_oversized_payload_refused_on_send(self):
        with pytest.raises(WireError, match="exceeds max_frame"):
            protocol.encode_frame({"blob": "x" * 100}, max_frame=50)

    def test_unserializable_payload_refused_on_send(self):
        with pytest.raises(WireError, match="not JSON-serializable"):
            protocol.encode_frame({"bad": object()})


class TestMidFrameDisconnect:
    def test_truncated_header(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(WireError, match="truncated frame header"):
            protocol.read_frame(stream)

    def test_truncated_body(self):
        full = protocol.encode_frame({"id": 1, "op": "ping"})
        stream = io.BytesIO(full[:-3])  # peer died mid-body
        with pytest.raises(WireError, match="truncated frame body"):
            protocol.read_frame(stream)

    def test_eof_at_frame_boundary_is_clean(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None
