"""net-smoke: the full process boundary, end to end.

Starts ``python -m repro --serve`` as a real subprocess, runs
``examples/stock_alerts.py`` against it through ``RemoteTriggerManClient``,
and asserts the notification digest is identical to the in-process run of
the same example — then shuts the server down cleanly (SIGINT → exit 0).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLE = os.path.join(REPO, "examples", "stock_alerts.py")

SMOKE_ENV = {
    "STOCK_USERS": "150",
    "STOCK_TICKS": "20",
    "STOCK_WATCH": "40",
}


def example_env():
    env = dict(os.environ)
    env.update(SMOKE_ENV)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def digest_line(output: str) -> str:
    for line in output.splitlines():
        if line.startswith("notification digest:"):
            return line
    raise AssertionError(f"no digest line in output:\n{output}")


@pytest.mark.slow
def test_example_identical_in_process_and_remote():
    env = example_env()
    local = subprocess.run(
        [sys.executable, EXAMPLE],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert local.returncode == 0, local.stderr
    local_digest = digest_line(local.stdout)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        stdin=subprocess.DEVNULL, env=env, cwd=REPO,
    )
    try:
        line = server.stdout.readline().strip()
        assert line.startswith("serving on "), line
        address = line.split()[-1]

        remote = subprocess.run(
            [sys.executable, EXAMPLE, "--connect", address],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert remote.returncode == 0, remote.stderr
        assert digest_line(remote.stdout) == local_digest
        # the remote run matched the in-process headline numbers too
        for key in ("tokens processed", "triggers fired"):
            local_line = next(
                l for l in local.stdout.splitlines() if l.startswith(key)
            )
            assert local_line in remote.stdout
    finally:
        # graceful shutdown: SIGINT must quiesce and exit 0
        server.send_signal(signal.SIGINT)
        try:
            out, err = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise AssertionError("server did not shut down on SIGINT")
    assert server.returncode == 0, (out, err)


@pytest.mark.slow
def test_headless_server_survives_misbehaving_client():
    """A client that sends garbage and disconnects mid-frame must not take
    the server down for the next well-behaved client."""
    import socket
    import struct

    from repro.net.remote import RemoteTriggerManClient

    env = example_env()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        stdin=subprocess.DEVNULL, env=env, cwd=REPO,
    )
    try:
        line = server.stdout.readline().strip()
        host, _, port = line.split()[-1].rpartition(":")

        bad = socket.create_connection((host, int(port)), timeout=5.0)
        bad.sendall(struct.pack(">I", 999) + b"partial")
        bad.close()
        time.sleep(0.1)

        client = RemoteTriggerManClient(host, int(port))
        assert client.ping()["engine"] == "triggerman"
        client.close()
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise
    assert server.returncode == 0
