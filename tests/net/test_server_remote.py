"""End-to-end server/remote-client tests over real sockets.

Covers the tentpole behaviours: command/ingest/notification round trips
matching the in-process path, ingest admission control (retryable
backpressure), the slow-consumer policies (drop-oldest with counters, or
disconnect), malformed/oversized/mid-frame wire faults, client-side
timeout+retry, and graceful quiesce.
"""

import socket
import struct
import threading
import time

import pytest

from repro.engine.client import DataSourceProgram, TriggerManClient
from repro.engine.triggerman import TriggerMan
from repro.errors import RemoteError
from repro.net import protocol
from repro.net.remote import (
    RemoteDataSourceProgram,
    RemoteTriggerManClient,
)


@pytest.fixture
def served():
    """A served in-memory engine with the ticks stream defined."""
    tman = TriggerMan.in_memory()
    tman.execute_command(
        "define data source ticks as stream (symbol varchar(8), price float)"
    )
    server = tman.serve("127.0.0.1", 0)
    yield tman, server
    tman.close()


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRoundTrips:
    def test_ping_command_ingest_process_metrics(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            assert client.ping()["schema"] == protocol.WIRE_SCHEMA
            client.command(
                "create trigger hot from ticks on insert "
                "when ticks.price > 100 do raise event Hot(ticks.price)"
            )
            client.register_for_event("Hot")
            feed = RemoteDataSourceProgram(client, "ticks")
            feed.insert({"symbol": "ACME", "price": 150.0})
            feed.insert({"symbol": "ACME", "price": 50.0})
            assert client.process() == 2
            assert wait_for(lambda: len(client.inbox) == 1)
            notification = client.next_notification()
            assert notification.event_name == "Hot"
            assert notification.args == (150.0,)
            metrics = client.metrics()
            assert metrics["tokens_processed"] == 2
            assert metrics["triggers_fired"] == 1

    def test_remote_matches_in_process_notifications(self, served):
        """The wire client must see byte-for-byte the notifications the
        in-process client sees for the same workload."""
        tman, server = served
        ticks = [
            {"symbol": "ACME", "price": float(price)}
            for price in (50, 150, 250, 99, 101)
        ]
        with RemoteTriggerManClient(*server.address) as remote:
            remote.command(
                "create trigger hot from ticks on insert "
                "when ticks.price > 100 do raise event Hot(ticks.price)"
            )
            local = TriggerManClient(tman)
            local.register_for_event("Hot")
            remote.register_for_event("Hot")
            feed = RemoteDataSourceProgram(remote, "ticks")
            for tick in ticks:
                feed.insert(tick)
            remote.process()
            assert wait_for(lambda: len(remote.inbox) == len(local.inbox))
            assert list(remote.inbox) == list(local.inbox)  # identical tuples

    def test_sql_console_explain_stats(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            client.command(
                "create trigger hot from ticks on insert "
                "when ticks.price > 100 do raise event Hot"
            )
            assert "hot" in client.console("show triggers")
            assert "hot" in client.explain_trigger("hot")
            assert "queue.depth" in client.stats() or client.stats()
            client.sql("create table t (a integer)")
            client.sql("insert into t values (42)")
            assert client.sql("select a from t") == [[42]]

    def test_engine_errors_carry_wire_code(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.command("drop trigger nosuch")
            assert excinfo.value.code == protocol.E_COMMAND
            assert not excinfo.value.retryable
            with pytest.raises(RemoteError) as excinfo:
                client.conn.call("definitely_not_an_op")
            assert excinfo.value.code == protocol.E_UNKNOWN_OP

    def test_unregister_stops_push(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            client.command(
                "create trigger t from ticks on insert do raise event E"
            )
            client.register_for_event("E")
            feed = RemoteDataSourceProgram(client, "ticks")
            feed.insert({"symbol": "A", "price": 1.0})
            client.process()
            assert wait_for(lambda: len(client.inbox) == 1)
            client.disconnect()
            assert tman.events.subscriber_count("E") == 0
            feed.insert({"symbol": "A", "price": 2.0})
            client.process()
            time.sleep(0.1)
            assert len(client.inbox) == 1


class TestAdmissionControl:
    def test_ingest_rejected_over_high_water(self):
        tman = TriggerMan.in_memory()
        tman.execute_command(
            "define data source ticks as stream (symbol varchar(8))"
        )
        server = tman.serve("127.0.0.1", 0, ingest_high_water=3)
        try:
            feed = RemoteDataSourceProgram(
                "127.0.0.1", "ticks", server.address[1], retries=0
            )
            with pytest.raises(RemoteError) as excinfo:
                for _ in range(20):
                    feed.insert({"symbol": "A"})
            assert excinfo.value.code == protocol.E_BACKPRESSURE
            assert excinfo.value.retryable
            assert server.status()["ingest_rejected"] >= 1
            assert len(tman.queue) <= 4  # backlog stayed bounded
            feed.close()
        finally:
            tman.close()

    def test_backpressure_retry_succeeds_once_drained(self):
        """A feed with retries enabled rides out backpressure while a
        consumer drains the queue."""
        tman = TriggerMan.in_memory()
        tman.execute_command(
            "define data source ticks as stream (symbol varchar(8))"
        )
        server = tman.serve("127.0.0.1", 0, ingest_high_water=2)
        stop = threading.Event()

        def drain():
            while not stop.is_set():
                tman.process_all()
                time.sleep(0.005)

        drainer = threading.Thread(target=drain)
        drainer.start()
        try:
            feed = RemoteDataSourceProgram(
                "127.0.0.1", "ticks", server.address[1],
                retries=8, backoff=0.01,
            )
            for _ in range(30):
                feed.insert({"symbol": "A"})
            feed.close()
        finally:
            stop.set()
            drainer.join(5.0)
            tman.close()
        assert tman.stats.tokens_processed + len(tman.queue) == 30


class TestSlowConsumer:
    def _stalled_subscriber(self, server):
        """A raw socket that registers for an event and then never reads."""
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(
            protocol.encode_frame(protocol.request(1, "register_event",
                                                   event="E"))
        )
        rfile = sock.makefile("rb")
        response = protocol.read_frame(rfile)
        assert response["ok"]
        # tiny receive buffer so the server's sends back up quickly
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
        return sock

    def test_drop_policy_bounds_memory_and_counts(self):
        tman = TriggerMan.in_memory()
        server = tman.serve("127.0.0.1", 0, outbox_limit=16)
        try:
            sock = self._stalled_subscriber(server)
            for _ in range(5000):
                tman.events.raise_event("E", ("x" * 200,), "t", 1)
            connection = next(iter(server._connections.values()))
            assert connection.outbox_depth() <= 16 + 1  # bounded outbox
            assert server.status()["notifications_dropped"] > 0
            # the server is still responsive to other clients
            with RemoteTriggerManClient(*server.address) as other:
                assert other.ping()["engine"] == "triggerman"
            sock.close()
        finally:
            tman.close()

    def test_disconnect_policy_closes_the_stalled_connection(self):
        tman = TriggerMan.in_memory()
        server = tman.serve(
            "127.0.0.1", 0, outbox_limit=8, slow_consumer="disconnect"
        )
        try:
            sock = self._stalled_subscriber(server)
            for _ in range(5000):
                tman.events.raise_event("E", ("x" * 200,), "t", 1)
            assert wait_for(
                lambda: server.status()["slow_consumer_disconnects"] >= 1
            )
            assert wait_for(lambda: server.status()["connections"] == 0)
            sock.close()
        finally:
            tman.close()


class TestWireFaults:
    def test_malformed_frame_gets_error_then_close(self, served):
        tman, server = served
        sock = socket.create_connection(server.address, timeout=5.0)
        body = b"this is not json"
        sock.sendall(struct.pack(">I", len(body)) + body)
        rfile = sock.makefile("rb")
        response = protocol.read_frame(rfile)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_PARSE
        assert rfile.read(1) == b""  # server closed the connection
        sock.close()
        # and the server survived
        with RemoteTriggerManClient(*server.address) as client:
            assert client.ping()

    def test_oversized_frame_is_refused(self, served):
        tman, server = served
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(struct.pack(">I", 512 * 1024 * 1024))
        rfile = sock.makefile("rb")
        response = protocol.read_frame(rfile)
        assert response["error"]["code"] == protocol.E_PARSE
        sock.close()

    def test_mid_frame_disconnect_leaves_server_up(self, served):
        tman, server = served
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(struct.pack(">I", 1000) + b"only part of the bo")
        sock.close()  # died mid-frame
        assert wait_for(lambda: server.status()["connections"] == 0)
        with RemoteTriggerManClient(*server.address) as client:
            assert client.ping()

    def test_pending_calls_fail_when_connection_lost(self, served):
        tman, server = served
        client = RemoteTriggerManClient(*server.address, timeout=5.0)
        # cut the transport from under an in-flight call
        original = server._op_ping

        def slow_ping(connection, payload):
            client.conn._sock.shutdown(socket.SHUT_RDWR)
            time.sleep(0.1)
            return original(connection, payload)

        server._op_ping = slow_ping
        with pytest.raises(RemoteError) as excinfo:
            client.ping()
        assert excinfo.value.code in (
            protocol.E_CONNECTION, protocol.E_TIMEOUT
        )
        client.close()


class TestTimeoutRetry:
    def test_timeout_is_retried_then_raised(self, served):
        tman, server = served
        calls = []
        original = server._op_ping

        def stuck(connection, payload):
            calls.append(1)
            time.sleep(0.5)
            return original(connection, payload)

        server._op_ping = stuck
        client = RemoteTriggerManClient(
            *server.address, timeout=0.05, retries=2, backoff=0.01
        )
        start = time.monotonic()
        with pytest.raises(RemoteError) as excinfo:
            client.ping()
        assert excinfo.value.code == protocol.E_TIMEOUT
        assert excinfo.value.retryable
        assert len(calls) >= 1  # requests actually reached the server
        assert time.monotonic() - start < 5.0
        server._op_ping = original
        # connection still usable afterwards (generous timeout: the server
        # is still chewing through the stuck requests serially)
        assert client.conn.call("ping", timeout=10.0)
        client.close()

    def test_no_retry_for_non_retryable_errors(self, served):
        tman, server = served
        calls = []
        original_handle = server._op_command

        def counting(connection, payload):
            calls.append(1)
            return original_handle(connection, payload)

        server._op_command = counting
        with RemoteTriggerManClient(*server.address, retries=5) as client:
            with pytest.raises(RemoteError):
                client.command("drop trigger nosuch")
        assert len(calls) == 1  # parse/command errors are not retried


class TestQuiesce:
    def test_quiescing_refuses_new_commands(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address, retries=0) as client:
            server._quiescing = True
            with pytest.raises(RemoteError) as excinfo:
                client.command("show triggers")
            assert excinfo.value.code == protocol.E_SHUTTING_DOWN
            assert client.ping()  # ping stays answerable during drain
            server._quiescing = False

    def test_stop_serving_drains_and_closes(self, served):
        tman, server = served
        client = RemoteTriggerManClient(*server.address)
        assert client.ping()
        stopped = tman.stop_serving()
        assert stopped is server
        assert server._stopped
        assert wait_for(lambda: client.conn.closed)
        with pytest.raises(RemoteError):
            client.command("show triggers")
        client.close()

    def test_shutdown_op_quiesces_server(self, served):
        tman, server = served
        client = RemoteTriggerManClient(*server.address)
        assert client.conn.call("shutdown") == "quiescing"
        # generous timeout: quiesce joins every connection thread, which
        # can crawl on a loaded 1-CPU runner
        assert wait_for(lambda: server._stopped, timeout=20.0)
        client.close()

    def test_double_stop_is_idempotent(self, served):
        tman, server = served
        tman.stop_serving()
        server.stop()  # second stop: no-op
        assert server._stopped

    def test_serve_twice_refused_then_allowed_after_stop(self, served):
        tman, server = served
        from repro.errors import TriggerError

        with pytest.raises(TriggerError):
            tman.serve()
        tman.stop_serving()
        second = tman.serve("127.0.0.1", 0)
        assert second.address[1] != 0
        tman.stop_serving()
