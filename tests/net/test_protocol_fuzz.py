"""Fuzz the incremental :class:`FrameDecoder` against whole-frame decode.

Both servers and the async client decode through ``FrameDecoder.feed``,
which must yield *exactly* the frame sequence that repeated
:func:`protocol.read_frame` calls produce from the same byte stream — no
matter how the transport slices it: one byte at a time, random splits,
many frames coalesced into one chunk, or an oversized frame in the
middle.  Truncation (EOF mid-frame) must raise on both paths.

Also pins the oversized-frame boundary (satellite of the async front-end
PR): a body of exactly ``max_frame`` bytes decodes, ``max_frame + 1``
yields the recoverable :class:`OversizedFrame` marker, and the decoder
resyncs onto the next frame.
"""

import io
import random
import struct

import pytest

from repro.errors import WireError
from repro.net import protocol
from repro.net.protocol import FrameDecoder, OversizedFrame


def reference_decode(stream_bytes, max_frame=protocol.MAX_FRAME):
    """The blocking-path frame sequence (OversizedFrame markers included,
    with the refused body drained just like the decoder does)."""
    stream = io.BytesIO(stream_bytes)
    frames = []
    while True:
        try:
            payload = protocol.read_frame(stream, max_frame)
        except protocol.OversizedFrameError as exc:
            stream.read(exc.length)  # drain-and-continue
            frames.append(OversizedFrame(exc.length))
            continue
        if payload is None:
            return frames
        frames.append(payload)


def normalize(frames):
    """Markers compare by declared length, payloads by value."""
    return [
        ("oversized", f.length) if isinstance(f, OversizedFrame) else f
        for f in frames
    ]


def random_payload(rng):
    kind = rng.randrange(4)
    if kind == 0:
        return protocol.request(rng.randrange(1 << 20), "ping")
    if kind == 1:
        return protocol.request(
            rng.randrange(1 << 20), "ingest",
            new={"symbol": "héllo™" * rng.randrange(4), "price": rng.random()},
            old=None,
        )
    if kind == 2:
        return protocol.ok_response(
            rng.randrange(1 << 20), [rng.randrange(100) for _ in range(10)]
        )
    return protocol.event_frame(
        {"event": "Hot", "args": [rng.random()], "pad": "x" * rng.randrange(2000)},
        rng.randrange(64),
    )


def chunked(data, rng, style):
    """Slice one byte stream the way hostile transports do."""
    if style == "bytewise":
        return [data[i:i + 1] for i in range(len(data))]
    if style == "coalesced":
        return [data]
    chunks, index = [], 0
    while index < len(data):
        step = rng.randrange(1, 17) if style == "tiny" else rng.randrange(1, 4096)
        chunks.append(data[index:index + step])
        index += step
    return chunks


class TestFuzzEquivalence:
    @pytest.mark.parametrize("style", ["bytewise", "coalesced", "tiny", "random"])
    def test_chunking_never_changes_the_frame_sequence(self, style):
        rng = random.Random(0xF57A + hash(style) % 1000)
        for trial in range(30 if style == "bytewise" else 60):
            payloads = [random_payload(rng) for _ in range(rng.randrange(1, 8))]
            stream = b"".join(protocol.encode_frame(p) for p in payloads)
            decoder = FrameDecoder()
            frames = []
            for chunk in chunked(stream, rng, style):
                frames.extend(decoder.feed(chunk))
            decoder.eof()  # stream ended exactly at a frame boundary
            assert normalize(frames) == normalize(reference_decode(stream))
            assert decoder.buffered == 0

    def test_oversized_frames_interleaved_under_random_chunking(self):
        max_frame = 256
        rng = random.Random(0xBEEF)
        for _trial in range(60):
            stream, expected = b"", []
            for _ in range(rng.randrange(2, 7)):
                if rng.random() < 0.4:
                    length = max_frame + rng.randrange(1, 2048)
                    stream += struct.pack(">I", length) + b"x" * length
                    expected.append(("oversized", length))
                else:
                    payload = protocol.request(rng.randrange(1000), "ping")
                    stream += protocol.encode_frame(payload)
                    expected.append(payload)
            decoder = FrameDecoder(max_frame)
            frames = []
            for chunk in chunked(stream, rng, "tiny"):
                frames.extend(decoder.feed(chunk))
            decoder.eof()
            assert normalize(frames) == expected
            assert normalize(frames) == normalize(
                reference_decode(stream, max_frame)
            )

    def test_truncated_streams_raise_on_eof_everywhere(self):
        payload = protocol.request(1, "command", text="create trigger ...")
        stream = protocol.encode_frame(payload)
        for cut in range(1, len(stream)):
            decoder = FrameDecoder()
            decoder.feed(stream[:cut])
            with pytest.raises(WireError):
                decoder.eof()

    def test_eof_mid_oversized_skip_raises(self):
        decoder = FrameDecoder(max_frame=64)
        frames = decoder.feed(struct.pack(">I", 1000) + b"partial body")
        assert normalize(frames) == [("oversized", 1000)]
        with pytest.raises(WireError):
            decoder.eof()

    def test_garbage_body_raises_and_consumes_the_frame(self):
        decoder = FrameDecoder()
        bad = b"not json at all"
        follow_up = protocol.request(2, "ping")
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", len(bad)) + bad)
        # framing survives: the bad frame was consumed, the next one decodes
        assert decoder.feed(protocol.encode_frame(follow_up)) == [follow_up]


class TestOversizedBoundary:
    """Pin the cap exactly: ``max_frame`` accepted, ``max_frame + 1``
    refused-but-recoverable, on both decode paths."""

    def pad_to(self, body_len):
        base = {"id": 1, "op": "ping", "pad": ""}
        overhead = len(protocol.encode_frame(base)) - protocol.HEADER_SIZE
        payload = dict(base, pad="x" * (body_len - overhead))
        frame = protocol.encode_frame(payload)
        assert len(frame) - protocol.HEADER_SIZE == body_len
        return payload, frame

    @pytest.mark.parametrize("delta", [-1, 0])
    def test_at_and_below_cap_decodes(self, delta):
        cap = 512
        payload, frame = self.pad_to(cap + delta)
        assert FrameDecoder(cap).feed(frame) == [payload]
        assert protocol.read_frame(io.BytesIO(frame), cap) == payload

    def test_one_past_cap_is_refused_but_recoverable(self):
        cap = 512
        _payload, frame = self.pad_to(cap + 1)
        follow_up = protocol.request(9, "ping")

        decoder = FrameDecoder(cap)
        frames = decoder.feed(frame + protocol.encode_frame(follow_up))
        assert normalize(frames) == [("oversized", cap + 1), follow_up]

        stream = io.BytesIO(frame + protocol.encode_frame(follow_up))
        with pytest.raises(protocol.OversizedFrameError) as excinfo:
            protocol.read_frame(stream, cap)
        stream.read(excinfo.value.length)  # drain the declared body
        assert protocol.read_frame(stream, cap) == follow_up

    def test_send_side_cap_matches(self):
        cap = 512
        payload, _frame = self.pad_to(cap + 1)
        with pytest.raises(WireError):
            protocol.encode_frame(payload, cap)
