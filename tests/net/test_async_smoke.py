"""async-net-smoke: the event-loop front end across a real process boundary.

Mirrors ``test_net_smoke`` but serves with ``--serve-async``: the same
example workload must produce the identical notification digest through
the async server as it does in-process, and SIGINT must quiesce to a
clean exit 0 — the graceful-drain path of the event loop.
"""

import signal
import subprocess
import sys

import pytest

from test_net_smoke import EXAMPLE, digest_line, example_env


@pytest.mark.slow
def test_example_identical_through_async_server():
    env = example_env()
    local = subprocess.run(
        [sys.executable, EXAMPLE],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert local.returncode == 0, local.stderr
    local_digest = digest_line(local.stdout)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve-async", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        stdin=subprocess.DEVNULL, env=env,
    )
    try:
        line = server.stdout.readline().strip()
        assert line.startswith("serving on "), line
        address = line.split()[-1]

        remote = subprocess.run(
            [sys.executable, EXAMPLE, "--connect", address],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert remote.returncode == 0, remote.stderr
        assert digest_line(remote.stdout) == local_digest
    finally:
        server.send_signal(signal.SIGINT)
        try:
            out, err = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise AssertionError("async server did not shut down on SIGINT")
    assert server.returncode == 0, (out, err)
