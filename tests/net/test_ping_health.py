"""The health-check surface: ping echo, RTT capture, and bind addresses.

``ping`` is the cluster failure detector's probe, so its contract is
pinned here: it must echo the wire protocol version and the server's
queue depth, and every completed call must surface its round-trip
latency — always on ``RemoteConnection.last_rtt_ns``, and into
``net.client.*`` histograms when the connection carries a metrics
registry.
"""

import pytest

from repro.engine.triggerman import TriggerMan
from repro.net import protocol
from repro.net.remote import RemoteTriggerManClient
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def served():
    tman = TriggerMan.in_memory()
    server = tman.serve("127.0.0.1", 0)
    yield tman, server
    tman.close()


class TestPing:
    def test_ping_echoes_protocol_version_and_queue_depth(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            hello = client.ping()
            assert hello["schema"] == protocol.WIRE_SCHEMA
            assert hello["version"] == protocol.WIRE_SCHEMA
            assert hello["engine"] == "triggerman"
            assert hello["queue_depth"] == 0
            assert hello["quiescing"] is False
            # Not clustered: no shard identity in the echo.
            assert "shard" not in hello

    def test_every_call_records_last_rtt(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            assert client.conn.last_rtt_ns is None
            client.ping()
            first = client.conn.last_rtt_ns
            assert first is not None and first > 0
            client.metrics()
            assert client.conn.last_rtt_ns is not None

    def test_rtt_histograms_when_metrics_attached(self, served):
        tman, server = served
        registry = MetricsRegistry(enabled=True, namespace="test")
        with RemoteTriggerManClient(
            *server.address, metrics=registry
        ) as client:
            client.ping()
            client.ping()
            client.metrics()
        snapshot = registry.snapshot()
        assert snapshot["net.client.rtt_ns"]["count"] == 3
        assert snapshot["net.client.ping_ns"]["count"] == 2
        assert snapshot["net.client.metrics_ns"]["count"] == 1
        assert snapshot["net.client.rtt_ns"]["min"] > 0

    def test_no_histograms_without_metrics(self, served):
        tman, server = served
        with RemoteTriggerManClient(*server.address) as client:
            client.ping()
            assert client.conn._metrics is None


class TestBindAddresses:
    def test_port_zero_reports_real_bound_port(self, served):
        tman, server = served
        host, port = server.address
        assert port != 0
        with RemoteTriggerManClient(host, port) as client:
            assert client.ping()["schema"] == protocol.WIRE_SCHEMA

    def test_connect_address_rewrites_wildcard_hosts(self):
        tman = TriggerMan.in_memory()
        try:
            server = tman.serve("0.0.0.0", 0)
            assert server.address[0] == "0.0.0.0"  # the literal bind
            host, port = server.connect_address
            assert host == "127.0.0.1"  # a dialable address
            assert port == server.address[1]
            with RemoteTriggerManClient(host, port) as client:
                assert client.ping()["engine"] == "triggerman"
        finally:
            tman.close()

    def test_connect_address_passes_through_concrete_hosts(self, served):
        tman, server = served
        assert server.connect_address == server.address
