"""CronSource schedule determinism and FileWatchSource tailing."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sources import (
    BACKOFF,
    CronSource,
    FileWatchSource,
    ManualClock,
    RetryPolicy,
    SourceRegistry,
)


class FakeSink:
    def __init__(self):
        self.rows = []

    def push(self, source, operation, new=None, old=None):
        self.rows.append(new)


def make_registry(sink, clock):
    return SourceRegistry(
        sink, clock=clock, metrics=MetricsRegistry(enabled=True, namespace="t")
    )


class TestCron:
    def test_scheduled_timestamps_not_poll_time(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource("tick", "beat", 5.0, {"src": "cron"}))
        registry.start("tick")
        clock.advance(17.0)  # pump arrives late: three firings overdue
        registry.pump()
        # backlog carries the *scheduled* times, not now=17
        assert [row["ts"] for row in sink.rows] == [5.0, 10.0, 15.0]
        assert all(row["src"] == "cron" for row in sink.rows)

    def test_no_firing_before_first_interval(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource("tick", "beat", 5.0))
        registry.start("tick")
        clock.advance(4.9)
        assert registry.pump() == 0

    def test_start_at_pins_first_firing(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource("tick", "beat", 10.0, start_at=2.0))
        registry.start("tick")
        clock.advance(2.0)
        registry.pump()
        assert [row["ts"] for row in sink.rows] == [2.0]

    def test_count_bounds_total_firings(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource("tick", "beat", 1.0, count=3))
        registry.start("tick")
        clock.advance(100.0)
        assert registry.pump() == 3
        assert registry.pump() == 0

    def test_callable_payload_gets_index_and_ts(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource(
            "tick", "beat", 2.0,
            lambda index, ts: {"n": index, "at": ts},
        ))
        registry.start("tick")
        clock.advance(4.0)
        registry.pump()
        assert sink.rows == [
            {"n": 0, "at": 2.0, "ts": 2.0},
            {"n": 1, "at": 4.0, "ts": 4.0},
        ]

    def test_restart_resumes_schedule(self):
        sink, clock = FakeSink(), ManualClock()
        registry = make_registry(sink, clock)
        registry.add(CronSource("tick", "beat", 5.0))
        registry.start("tick")
        clock.advance(5.0)
        registry.pump()
        registry.stop("tick")
        clock.advance(10.0)  # two firings missed while stopped
        registry.start("tick")
        registry.pump()
        assert [row["ts"] for row in sink.rows] == [5.0, 10.0, 15.0]

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            CronSource("tick", "beat", 0)


class TestFileWatch:
    POLICY = RetryPolicy(max_retries=3, backoff_base=1.0)

    def make(self, tmp_path):
        sink, clock = FakeSink(), ManualClock(start=50.0)
        registry = make_registry(sink, clock)
        path = tmp_path / "events.jsonl"
        source = registry.add(FileWatchSource(
            "tail", "logs", str(path), policy=self.POLICY
        ))
        registry.start("tail")
        return sink, clock, registry, source, path

    def test_missing_file_waits(self, tmp_path):
        sink, _, registry, _, path = self.make(tmp_path)
        assert registry.pump() == 0
        path.write_text(json.dumps({"k": 1}) + "\n")
        assert registry.pump() == 1
        assert sink.rows == [{"k": 1, "ts": 50.0}]  # stamped from clock

    def test_appended_lines_only(self, tmp_path):
        sink, _, registry, _, path = self.make(tmp_path)
        path.write_text('{"k": 1, "ts": 1.0}\n')
        registry.pump()
        with path.open("a") as handle:
            handle.write('{"k": 2, "ts": 2.0}\n')
        registry.pump()
        assert [row["k"] for row in sink.rows] == [1, 2]

    def test_partial_line_waits_for_newline(self, tmp_path):
        sink, _, registry, _, path = self.make(tmp_path)
        path.write_text('{"k": 2')  # writer mid-append: no newline yet
        assert registry.pump() == 0  # the partial line stays unconsumed
        with path.open("a") as handle:
            handle.write(', "ts": 2.0}\n{"k": 3')
        # complete lines flow; the new partial tail keeps waiting
        assert registry.pump() == 1
        with path.open("a") as handle:
            handle.write(', "ts": 3.0}\n')
        assert registry.pump() == 1
        assert [row["k"] for row in sink.rows] == [2, 3]

    def test_truncation_restarts_tail(self, tmp_path):
        sink, _, registry, _, path = self.make(tmp_path)
        path.write_text('{"k": 1, "ts": 1.0}\n{"k": 2, "ts": 2.0}\n')
        registry.pump()
        path.write_text('{"k": 3, "ts": 3.0}\n')  # rotated: smaller file
        registry.pump()
        assert [row["k"] for row in sink.rows] == [1, 2, 3]

    def test_bad_json_retries_without_skipping(self, tmp_path):
        sink, clock, registry, source, path = self.make(tmp_path)
        path.write_text("not json\n")
        registry.pump()
        assert source.status == BACKOFF
        assert sink.rows == []
        # the writer fixes the file; after backoff the same span re-polls
        path.write_text('{"k": 1, "ts": 1.0}\n')
        clock.advance(1.0)
        assert registry.pump() == 1
        assert sink.rows == [{"k": 1, "ts": 1.0}]

    def test_non_object_row_is_an_error(self, tmp_path):
        _, _, registry, source, path = self.make(tmp_path)
        path.write_text("[1, 2]\n")
        registry.pump()
        assert source.status == BACKOFF
        assert "objects" in source.last_error
