"""SourceRegistry lifecycle and the retry/backoff/cooldown machine.

Everything here runs against a fake sink and a ManualClock — no engine,
no sleeps, no threads."""

import pytest

from repro.errors import TriggerError
from repro.obs.metrics import MetricsRegistry
from repro.sources import (
    BACKOFF,
    COOLDOWN,
    FAILED,
    NEW,
    RUNNING,
    STOPPED,
    ManualClock,
    RetryPolicy,
    SourceAdapter,
    SourceEvent,
    SourceRegistry,
)


class FakeSink:
    """Records push() calls; raises while ``broken`` is set."""

    def __init__(self):
        self.rows = []
        self.broken = False

    def push(self, source, operation, new=None, old=None):
        if self.broken:
            raise RuntimeError("sink down")
        self.rows.append((source, operation, new))


class ScriptedSource(SourceAdapter):
    """poll() pops pre-scripted batches; a batch of ``RuntimeError`` raises."""

    kind = "scripted"

    def __init__(self, name, batches=(), **kwargs):
        super().__init__(name, **kwargs)
        self.batches = list(batches)
        self.polls = 0

    def poll(self):
        self.polls += 1
        if not self.batches:
            return []
        batch = self.batches.pop(0)
        if isinstance(batch, Exception):
            raise batch
        return [SourceEvent("s", row) for row in batch]


@pytest.fixture
def rig():
    sink = FakeSink()
    clock = ManualClock()
    metrics = MetricsRegistry(enabled=True, namespace="test")
    registry = SourceRegistry(sink, clock=clock, metrics=metrics)
    return sink, clock, metrics, registry


class TestLifecycle:
    def test_add_get_remove(self, rig):
        _, _, _, registry = rig
        adapter = registry.add(ScriptedSource("a"))
        assert adapter.registry is registry
        assert registry.get("a") is adapter
        assert "a" in registry and len(registry) == 1
        registry.remove("a")
        assert "a" not in registry
        with pytest.raises(TriggerError):
            registry.get("a")

    def test_duplicate_name_rejected(self, rig):
        _, _, _, registry = rig
        registry.add(ScriptedSource("a"))
        with pytest.raises(TriggerError, match="already exists"):
            registry.add(ScriptedSource("a"))

    def test_adapter_inherits_registry_clock(self, rig):
        _, clock, _, registry = rig
        inherits = registry.add(ScriptedSource("a"))
        own = ManualClock(start=99.0)
        explicit = registry.add(ScriptedSource("b", clock=own))
        assert inherits.clock is clock
        assert explicit.clock is own

    def test_start_stop_idempotent(self, rig):
        _, _, _, registry = rig
        registry.add(ScriptedSource("a"))
        assert registry.start("a") is True
        assert registry.get("a").status == RUNNING
        assert registry.start("a") is False  # double start: no-op
        assert registry.stop("a") is True
        assert registry.get("a").status == STOPPED
        assert registry.stop("a") is False  # double stop: no-op
        assert registry.start("a") is True  # restartable after stop

    def test_start_all_stop_all(self, rig):
        _, _, _, registry = rig
        registry.add(ScriptedSource("a"))
        registry.add(ScriptedSource("b"))
        registry.start("a")
        assert registry.start_all() == 1  # only b still startable
        assert registry.stop_all() == 2

    def test_failing_start_marks_failed_and_reraises(self, rig):
        _, _, metrics, registry = rig

        class Exploding(ScriptedSource):
            def _start(self):
                raise OSError("port taken")

        registry.add(Exploding("a"))
        with pytest.raises(OSError):
            registry.start("a")
        adapter = registry.get("a")
        assert adapter.status == FAILED
        assert "port taken" in adapter.last_error
        assert metrics.get("sources.failures").value == 1
        # FAILED is retryable: a later start may succeed
        assert adapter.startable()

    def test_stopped_adapter_not_pumped(self, rig):
        sink, _, _, registry = rig
        registry.add(ScriptedSource("a", batches=[[{"k": 1}]]))
        assert registry.pump() == 0  # NEW: never started
        registry.start("a")
        registry.stop("a")
        assert registry.pump() == 0
        assert sink.rows == []


class TestDelivery:
    def test_pump_polls_and_delivers(self, rig):
        sink, _, metrics, registry = rig
        registry.add(ScriptedSource("a", batches=[[{"k": 1}, {"k": 2}]]))
        registry.start("a")
        assert registry.pump() == 2
        assert [row for _, _, row in sink.rows] == [{"k": 1}, {"k": 2}]
        assert registry.get("a").delivered == 2
        assert metrics.get("sources.events_delivered").value == 2

    def test_status_rows(self, rig):
        _, _, _, registry = rig
        registry.add(ScriptedSource("a"))
        rows = registry.status()
        assert rows[0]["name"] == "a" and rows[0]["status"] == NEW
        assert registry.status("a")["kind"] == "scripted"

    def test_queue_depth_without_queue(self, rig):
        _, _, _, registry = rig
        assert registry.queue_depth() is None  # FakeSink has no .queue


class TestRecovery:
    POLICY = RetryPolicy(
        max_retries=2, backoff_base=1.0, backoff_factor=2.0,
        backoff_cap=100.0, cooldown=50.0,
    )

    def test_poll_error_enters_backoff_with_exponential_delay(self, rig):
        _, clock, metrics, registry = rig
        source = ScriptedSource(
            "a",
            batches=[RuntimeError("x"), RuntimeError("y"), [{"k": 1}]],
            policy=self.POLICY,
        )
        registry.add(source)
        registry.start("a")

        registry.pump()  # failure 1 -> backoff 1.0s
        assert source.status == BACKOFF
        assert source.attempts == 1
        assert source.not_before == pytest.approx(clock.now() + 1.0)
        assert metrics.get("sources.retries").value == 1

        assert registry.pump() == 0  # gated: not due yet
        assert source.polls == 1

        clock.advance(1.0)
        registry.pump()  # failure 2 -> backoff 2.0s (exponential)
        assert source.status == BACKOFF
        assert source.not_before == pytest.approx(clock.now() + 2.0)

        clock.advance(2.0)
        assert registry.pump() == 1  # recovery
        assert source.status == RUNNING
        assert source.attempts == 0 and source.last_error is None

    def test_exhausted_retries_enter_cooldown_then_fresh_round(self, rig):
        _, clock, metrics, registry = rig
        source = ScriptedSource(
            "a",
            batches=[RuntimeError(i) for i in range(4)] + [[{"k": 1}]],
            policy=self.POLICY,
        )
        registry.add(source)
        registry.start("a")

        registry.pump()  # attempt 1 -> backoff
        clock.advance(1.0)
        registry.pump()  # attempt 2 -> backoff
        clock.advance(2.0)
        registry.pump()  # attempt 3 > max_retries=2 -> cooldown
        assert source.status == COOLDOWN
        assert source.not_before == pytest.approx(clock.now() + 50.0)
        assert metrics.get("sources.cooldowns").value == 1

        clock.advance(49.0)
        assert registry.pump() == 0  # still resting
        clock.advance(1.0)
        registry.pump()  # cooldown-ending retry fails: new round, attempt 1
        assert source.status == BACKOFF and source.attempts == 1

        clock.advance(1.0)
        assert registry.pump() == 1
        assert source.status == RUNNING

    def test_sink_failure_preserves_pending_order(self, rig):
        sink, clock, _, registry = rig
        source = ScriptedSource(
            "a",
            batches=[[{"k": 1}, {"k": 2}], [{"k": 3}]],
            policy=self.POLICY,
        )
        registry.add(source)
        registry.start("a")
        sink.broken = True
        registry.pump()  # poll ok, delivery fails: both rows stay pending
        assert source.status == BACKOFF
        assert [e.new for e in source.pending] == [{"k": 1}, {"k": 2}]

        sink.broken = False
        clock.advance(1.0)
        assert registry.pump() == 3  # retried rows first, then the new poll
        assert [row for _, _, row in sink.rows] == [
            {"k": 1}, {"k": 2}, {"k": 3}
        ]

    def test_push_side_deliver_gated_by_backoff(self, rig):
        sink, clock, _, registry = rig
        source = ScriptedSource("a", policy=self.POLICY)
        registry.add(source)
        registry.start("a")
        sink.broken = True
        assert registry.deliver(source, [SourceEvent("s", {"k": 1})]) == 0
        assert source.status == BACKOFF
        # while gated, push-side events queue without a delivery attempt
        assert registry.deliver(source, [SourceEvent("s", {"k": 2})]) == 0
        assert len(source.pending) == 2
        sink.broken = False
        clock.advance(1.0)
        assert registry.deliver(source, [SourceEvent("s", {"k": 3})]) == 3
        assert [row for _, _, row in sink.rows] == [
            {"k": 1}, {"k": 2}, {"k": 3}
        ]

    def test_stop_clears_gate(self, rig):
        _, _, _, registry = rig
        source = ScriptedSource(
            "a", batches=[RuntimeError("x")], policy=self.POLICY
        )
        registry.add(source)
        registry.start("a")
        registry.pump()
        assert source.status == BACKOFF
        registry.stop("a")  # stop wins over backoff
        assert source.status == STOPPED and source.not_before == 0.0


class TestRetryPolicy:
    def test_delay_schedule(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_cap=3.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4, 9)] == [
            0.5, 1.0, 2.0, 3.0, 3.0
        ]


class TestManualClock:
    def test_monotonic_only(self):
        clock = ManualClock(start=5.0)
        clock.advance(2.5)
        assert clock.now() == 7.5
        clock.set(9.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(8.0)
