"""Declarative adapter config: build_adapter validation + load_config."""

import json

import pytest

from repro.errors import TriggerError
from repro.obs.metrics import MetricsRegistry
from repro.sources import (
    CronSource,
    FileWatchSource,
    ManualClock,
    SourceRegistry,
    WebhookSource,
)
from repro.sources.config import build_adapter, load_config


class FakeSink:
    def push(self, source, operation, new=None, old=None):
        pass


def make_registry():
    return SourceRegistry(
        FakeSink(), clock=ManualClock(),
        metrics=MetricsRegistry(enabled=False, namespace="t"),
    )


class TestBuildAdapter:
    def test_each_kind(self, tmp_path):
        hook = build_adapter({
            "kind": "webhook", "name": "h", "stream": "s",
            "secret": "top", "high_water": 7,
        })
        assert isinstance(hook, WebhookSource)
        assert hook.secret == b"top" and hook.high_water == 7

        cron = build_adapter({
            "kind": "cron", "name": "c", "stream": "s", "interval": 3,
            "payload": {"x": 1},
        })
        assert isinstance(cron, CronSource) and cron.interval == 3.0

        tail = build_adapter({
            "kind": "filewatch", "name": "f", "stream": "s",
            "path": str(tmp_path / "x.jsonl"),
        })
        assert isinstance(tail, FileWatchSource)

    def test_unknown_kind(self):
        with pytest.raises(TriggerError, match="unknown adapter kind"):
            build_adapter({"kind": "kafka", "name": "k", "stream": "s"})

    def test_unknown_key_rejected(self):
        with pytest.raises(TriggerError, match="intervall"):
            build_adapter({
                "kind": "cron", "name": "c", "stream": "s",
                "interval": 3, "intervall": 5,
            })

    def test_missing_required_fields(self):
        with pytest.raises(TriggerError, match="'name'"):
            build_adapter({"kind": "cron", "stream": "s", "interval": 1})
        with pytest.raises(TriggerError, match="'stream'"):
            build_adapter({"kind": "cron", "name": "c", "interval": 1})
        with pytest.raises(TriggerError, match="'secret'"):
            build_adapter({"kind": "webhook", "name": "h", "stream": "s"})
        with pytest.raises(TriggerError, match="'interval'"):
            build_adapter({"kind": "cron", "name": "c", "stream": "s"})
        with pytest.raises(TriggerError, match="'path'"):
            build_adapter({"kind": "filewatch", "name": "f", "stream": "s"})

    def test_policy_override(self):
        cron = build_adapter({
            "kind": "cron", "name": "c", "stream": "s", "interval": 1,
            "policy": {"max_retries": 9, "cooldown": 5.0},
        })
        assert cron.policy.max_retries == 9
        assert cron.policy.cooldown == 5.0
        with pytest.raises(TriggerError, match="bad retry policy"):
            build_adapter({
                "kind": "cron", "name": "c", "stream": "s", "interval": 1,
                "policy": {"nope": 1},
            })

    def test_explicit_clock_threaded_through(self):
        clock = ManualClock(start=9.0)
        cron = build_adapter(
            {"kind": "cron", "name": "c", "stream": "s", "interval": 1},
            clock=clock,
        )
        assert cron.clock is clock and cron._clock_explicit


class TestLoadConfig:
    CONFIG = {
        "adapters": [
            {"kind": "cron", "name": "tick", "stream": "beat", "interval": 5},
            {"kind": "filewatch", "name": "tail", "stream": "logs",
             "path": "events.jsonl"},
        ],
    }

    def test_load_from_dict(self):
        registry = make_registry()
        names = load_config(registry, self.CONFIG)
        assert names == ["tick", "tail"]
        assert registry.get("tick").status == "new"  # no "start": true

    def test_load_from_file_with_start(self, tmp_path):
        registry = make_registry()
        config = dict(self.CONFIG, start=True)
        path = tmp_path / "sources.json"
        path.write_text(json.dumps(config))
        names = load_config(registry, str(path))
        assert names == ["tick", "tail"]
        assert registry.get("tick").status == "running"

    def test_bad_shape_rejected(self):
        registry = make_registry()
        with pytest.raises(TriggerError, match="adapters"):
            load_config(registry, {"adapter": []})
        with pytest.raises(TriggerError, match="adapters"):
            load_config(registry, [1, 2])
