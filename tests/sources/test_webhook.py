"""WebhookSource: HMAC authentication, parsing, backpressure.

Most tests drive the socket-free ``handle()`` directly; one round-trip
test exercises the real HTTP shell end to end."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sources import (
    RUNNING,
    SIGNATURE_HEADER,
    ManualClock,
    SourceRegistry,
    WebhookSource,
    sign_payload,
)

SECRET = b"s3cret"


class FakeSink:
    def __init__(self):
        self.rows = []

    def push(self, source, operation, new=None, old=None):
        self.rows.append((source, operation, new))


@pytest.fixture
def rig():
    sink = FakeSink()
    metrics = MetricsRegistry(enabled=True, namespace="test")
    registry = SourceRegistry(
        sink, clock=ManualClock(start=100.0), metrics=metrics
    )
    hook = registry.add(WebhookSource("hook", "errors", SECRET))
    # handle() is socket-free; mark the adapter active without binding
    hook.status = RUNNING
    return sink, metrics, registry, hook


def post(hook, payload, signature="valid"):
    body = json.dumps(payload).encode()
    if signature == "valid":
        signature = sign_payload(SECRET, body)
    return hook.handle(body, signature)


class TestAuthentication:
    def test_valid_signature_accepted(self, rig):
        sink, _, _, hook = rig
        status, response = post(hook, {"host": "a", "code": 500})
        assert status == 202
        assert response == {"ok": True, "accepted": 1, "delivered": 1}
        assert sink.rows[0][0] == "errors"

    def test_invalid_signature_rejected(self, rig):
        sink, metrics, _, hook = rig
        status, response = post(
            hook, {"host": "a"}, signature="sha256=" + "0" * 64
        )
        assert status == 401
        assert response["error"]["code"] == "E_UNAUTHORIZED"
        assert response["error"]["retryable"] is False
        assert sink.rows == []  # nothing reached the ingest path
        assert hook.rejected == 1
        assert metrics.get("sources.rejected").value == 1

    def test_missing_signature_rejected(self, rig):
        _, _, _, hook = rig
        status, response = post(hook, {"host": "a"}, signature=None)
        assert status == 401
        assert response["error"]["code"] == "E_UNAUTHORIZED"

    def test_wrong_secret_rejected(self, rig):
        _, _, _, hook = rig
        body = json.dumps({"host": "a"}).encode()
        status, _ = hook.handle(body, sign_payload(b"other", body))
        assert status == 401


class TestParsing:
    def test_unparseable_body(self, rig):
        _, metrics, _, hook = rig
        body = b"not json"
        status, response = hook.handle(body, sign_payload(SECRET, body))
        assert status == 400
        assert response["error"]["code"] == "E_PARSE"
        assert metrics.get("sources.rejected").value == 1

    def test_non_object_rows(self, rig):
        _, _, _, hook = rig
        status, response = post(hook, [1, 2, 3])
        assert status == 400
        assert response["error"]["code"] == "E_PARSE"

    def test_list_and_rows_envelope(self, rig):
        sink, _, _, hook = rig
        status, response = post(hook, [{"k": 1}, {"k": 2}])
        assert (status, response["accepted"]) == (202, 2)
        status, response = post(hook, {"rows": [{"k": 3}]})
        assert (status, response["accepted"]) == (202, 1)
        assert [row["k"] for _, _, row in sink.rows] == [1, 2, 3]

    def test_missing_ts_stamped_from_clock(self, rig):
        sink, _, _, hook = rig
        post(hook, {"host": "a"})
        post(hook, {"host": "b", "ts": 7.0})
        assert sink.rows[0][2]["ts"] == 100.0  # ManualClock start
        assert sink.rows[1][2]["ts"] == 7.0  # sender timestamp wins


class TestBackpressure:
    def test_deep_queue_returns_retryable_503(self, rig):
        sink, _, registry, hook = rig
        hook.high_water = 5
        sink.queue = [None] * 6  # registry.queue_depth() reads len(queue)
        status, response = post(hook, {"host": "a"})
        assert status == 503
        assert response["error"]["code"] == "E_BACKPRESSURE"
        assert response["error"]["retryable"] is True
        assert sink.rows == []

    def test_shallow_queue_accepted(self, rig):
        sink, _, _, hook = rig
        hook.high_water = 5
        sink.queue = [None] * 5  # at, not over, the high water
        status, _ = post(hook, {"host": "a"})
        assert status == 202


class TestHTTPShell:
    def test_round_trip_valid_and_invalid(self):
        sink = FakeSink()
        registry = SourceRegistry(
            sink, metrics=MetricsRegistry(enabled=False, namespace="t")
        )
        hook = registry.add(WebhookSource("hook", "errors", SECRET, port=0))
        assert hook.address is None and hook.url is None
        registry.start("hook")
        try:
            body = json.dumps({"host": "a", "ts": 1.0}).encode()
            request = urllib.request.Request(
                hook.url, data=body, method="POST",
                headers={SIGNATURE_HEADER: sign_payload(SECRET, body)},
            )
            with urllib.request.urlopen(request, timeout=5) as reply:
                assert reply.status == 202
                assert json.loads(reply.read())["delivered"] == 1
            assert sink.rows[0][2]["host"] == "a"

            request = urllib.request.Request(
                hook.url, data=body, method="POST",
                headers={SIGNATURE_HEADER: "sha256=" + "f" * 64},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=5)
            assert info.value.code == 401
            assert json.loads(info.value.read())["error"]["code"] == (
                "E_UNAUTHORIZED"
            )
            assert len(sink.rows) == 1
        finally:
            registry.stop_all()
        assert hook.address is None  # socket released
