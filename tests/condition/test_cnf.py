"""Unit and property tests for CNF conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConditionError
from repro.condition.cnf import (
    clause_to_expr,
    cnf_to_expr,
    push_not_inward,
    to_cnf,
)
from repro.lang import ast
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse

E = Evaluator()


def render_cnf(clauses):
    return [sorted(a.render() for a in clause) for clause in clauses]


class TestPushNotInward:
    def test_double_negation(self):
        assert push_not_inward(parse("not not a = 1")) == parse("a = 1")

    def test_comparison_flip(self):
        assert push_not_inward(parse("not a = 1")) == parse("a <> 1")
        assert push_not_inward(parse("not a < 1")) == parse("a >= 1")
        assert push_not_inward(parse("not a >= 1")) == parse("a < 1")

    def test_de_morgan(self):
        expr = push_not_inward(parse("not (a = 1 and b = 2)"))
        assert isinstance(expr, ast.BoolOp) and expr.op == "OR"
        assert expr.args[0] == parse("a <> 1")

    def test_absorbs_into_flags(self):
        expr = push_not_inward(parse("not a in (1, 2)"))
        assert isinstance(expr, ast.InList) and expr.negated
        expr = push_not_inward(parse("not a between 1 and 2"))
        assert isinstance(expr, ast.Between) and expr.negated
        expr = push_not_inward(parse("not a is null"))
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_like_keeps_explicit_not(self):
        expr = push_not_inward(parse("not a like 'x%'"))
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"


class TestToCnf:
    def test_none_is_empty(self):
        assert to_cnf(None) == []

    def test_atom(self):
        clauses = to_cnf(parse("a = 1"))
        assert render_cnf(clauses) == [["(a = 1)"]]

    def test_conjunction_splits(self):
        clauses = to_cnf(parse("a = 1 and b = 2 and c = 3"))
        assert len(clauses) == 3
        assert all(len(c) == 1 for c in clauses)

    def test_disjunction_single_clause(self):
        clauses = to_cnf(parse("a = 1 or b = 2"))
        assert len(clauses) == 1
        assert len(clauses[0]) == 2

    def test_distribution(self):
        clauses = to_cnf(parse("a = 1 or (b = 2 and c = 3)"))
        assert len(clauses) == 2
        for clause in clauses:
            assert any(atom.render() == "(a = 1)" for atom in clause)

    def test_nested_distribution(self):
        clauses = to_cnf(parse("(a = 1 and b = 2) or (c = 3 and d = 4)"))
        assert len(clauses) == 4

    def test_duplicate_clauses_removed(self):
        clauses = to_cnf(parse("a = 1 and a = 1"))
        assert len(clauses) == 1

    def test_duplicate_atoms_in_clause_removed(self):
        clauses = to_cnf(parse("a = 1 or a = 1"))
        assert len(clauses) == 1
        assert len(clauses[0]) == 1

    def test_blowup_guard(self):
        # 2^14 clause distribution exceeds MAX_CLAUSES
        parts = [f"(a{i} = 1 and b{i} = 2)" for i in range(14)]
        with pytest.raises(ConditionError):
            to_cnf(parse(" or ".join(parts)))

    def test_roundtrip_builders(self):
        clauses = to_cnf(parse("a = 1 and (b = 2 or c = 3)"))
        rebuilt = cnf_to_expr(clauses)
        assert rebuilt is not None
        assert to_cnf(rebuilt) == clauses
        assert cnf_to_expr([]) is None
        single = to_cnf(parse("a = 1"))
        assert clause_to_expr(single[0]) == parse("a = 1")


# -- property: CNF preserves truth value under random assignments ------------

_columns = ("p", "q", "r")


@st.composite
def boolean_exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        column = draw(st.sampled_from(_columns))
        value = draw(st.integers(min_value=0, max_value=2))
        op = draw(st.sampled_from(["=", "<>", "<", ">="]))
        return ast.BinaryOp(op, ast.ColumnRef(None, column), ast.Literal(value))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return ast.UnaryOp("NOT", draw(boolean_exprs(depth=depth - 1)))
    args = draw(
        st.lists(boolean_exprs(depth=depth - 1), min_size=2, max_size=3)
    )
    return ast.BoolOp(kind.upper(), tuple(args))


@settings(max_examples=120, deadline=None)
@given(
    boolean_exprs(),
    st.tuples(*[st.integers(min_value=0, max_value=2) for _ in _columns]),
)
def test_cnf_preserves_semantics(expr, values):
    """Property: the CNF of an expression evaluates identically to the
    original under every (NULL-free) assignment."""
    bindings = Bindings({"t": dict(zip(_columns, values))})
    original = E.evaluate(expr, bindings)
    rebuilt = cnf_to_expr(to_cnf(expr))
    converted = True if rebuilt is None else E.evaluate(rebuilt, bindings)
    assert converted == original


class TestWideConjunctions:
    def test_five_thousand_conjuncts_accepted(self):
        # MAX_CLAUSES bounds only the cartesian-product (OR) branch: a pure
        # conjunction's clause count is the *sum* of its inputs, so a wide
        # AND must convert without tripping the guard.
        n = 5000
        expr = parse(" and ".join(f"c{i} = {i}" for i in range(n)))
        clauses = to_cnf(expr)
        assert len(clauses) == n
        assert all(len(clause) == 1 for clause in clauses)

    def test_or_of_wide_conjunctions_still_bounded(self):
        # ...while the distributing branch keeps its blow-up guard.
        left = " and ".join(f"a{i} = 1" for i in range(100))
        right = " and ".join(f"b{i} = 1" for i in range(100))
        expr = parse(f"({left}) or ({right})")
        with pytest.raises(ConditionError):
            to_cnf(expr)
