"""Unit and property tests for expression signatures — the paper's core
equivalence-class machinery (§5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condition.cnf import to_cnf
from repro.condition.signature import (
    EQUALITY,
    INTERVAL,
    NONE,
    RANGE,
    analyze_selection,
    generalize,
    instantiate,
    normalize_atom,
)
from repro.errors import SignatureError
from repro.lang import ast
from repro.lang.evaluator import Bindings, Evaluator
from repro.lang.exprparser import parse_expression_text as parse

E = Evaluator()


def analyze(text, operation="insert", source="emp"):
    return analyze_selection(source, operation, to_cnf(parse(text)))


class TestGeneralize:
    def test_numbering_left_to_right(self):
        gen, constants = generalize(parse("a = 1 and b = 'x' and c < 2.5"))
        assert constants == [1, "x", 2.5]
        rendered = gen.render()
        assert "CONSTANT_1" in rendered
        assert "CONSTANT_3" in rendered

    def test_null_not_generalized(self):
        gen, constants = generalize(parse("a = 1 and b is null"))
        assert constants == [1]

    def test_instantiate_roundtrip(self):
        expr = parse("a = 1 and b between 2 and 3")
        gen, constants = generalize(expr)
        assert instantiate(gen, constants) == expr

    def test_instantiate_out_of_range(self):
        gen, _ = generalize(parse("a = 1"))
        with pytest.raises(SignatureError):
            instantiate(gen, [])

    def test_placeholder_not_evaluable(self):
        gen, _ = generalize(parse("a = 1"))
        from repro.errors import ConditionError

        with pytest.raises(ConditionError):
            E.evaluate(gen, Bindings({"t": {"a": 1}}))


class TestNormalizeAtom:
    def test_constant_left_flipped(self):
        assert normalize_atom(parse("5 < a")) == parse("a > 5")
        assert normalize_atom(parse("5 = a")) == parse("a = 5")
        assert normalize_atom(parse("5 >= a")) == parse("a <= 5")

    def test_column_left_unchanged(self):
        assert normalize_atom(parse("a < 5")) == parse("a < 5")


class TestEquivalenceClasses:
    def test_same_structure_different_constants(self):
        a = analyze("emp.salary > 80000")
        b = analyze("emp.salary > 50000")
        assert a.signature == b.signature
        assert a.constants != b.constants

    def test_different_operator_different_signature(self):
        assert analyze("salary > 1").signature != analyze("salary < 1").signature

    def test_different_column_different_signature(self):
        assert analyze("salary > 1").signature != analyze("age > 1").signature

    def test_different_operation_different_signature(self):
        a = analyze("salary > 1", operation="insert")
        b = analyze("salary > 1", operation="delete")
        assert a.signature != b.signature

    def test_different_source_different_signature(self):
        a = analyze("salary > 1", source="emp")
        b = analyze("salary > 1", source="mgr")
        assert a.signature != b.signature

    def test_conjunct_order_irrelevant(self):
        a = analyze("dept = 'toys' and salary > 10")
        b = analyze("salary > 20 and dept = 'shoes'")
        assert a.signature == b.signature

    def test_alias_irrelevant(self):
        a = analyze("e.salary > 10")
        b = analyze("emp.salary > 20")
        assert a.signature == b.signature

    def test_comparison_orientation_irrelevant(self):
        a = analyze("80000 < emp.salary")
        b = analyze("emp.salary > 70000")
        assert a.signature == b.signature
        assert a.constants == (80000,)

    def test_string_vs_number_same_structure(self):
        # Signatures are structural: the constant's value (and type) is data.
        a = analyze("dept = 'toys'")
        b = analyze("dept = 'shoes'")
        assert a.signature == b.signature


class TestIndexableSplit:
    def test_single_equality(self):
        a = analyze("name = 'bob'")
        sig = a.signature
        assert sig.indexable.kind == EQUALITY
        assert sig.indexable.columns == ("name",)
        assert a.indexable_constants == ("bob",)
        assert a.residual is None

    def test_composite_equality(self):
        a = analyze("dept = 'toys' and name = 'bob'")
        assert a.signature.indexable.kind == EQUALITY
        assert a.signature.indexable.columns == ("dept", "name")
        assert a.indexable_constants == ("toys", "bob")

    def test_equality_beats_range(self):
        a = analyze("salary > 100 and dept = 'toys'")
        assert a.signature.indexable.kind == EQUALITY
        assert a.signature.indexable.columns == ("dept",)
        assert a.residual is not None
        assert "salary" in a.residual.render()

    def test_range_when_no_equality(self):
        a = analyze("salary > 100")
        assert a.signature.indexable.kind == RANGE
        assert a.signature.indexable.op == ">"
        assert a.indexable_constants == (100,)

    def test_between_preferred_over_range(self):
        a = analyze("salary > 100 and age between 20 and 30")
        assert a.signature.indexable.kind == INTERVAL
        assert a.signature.indexable.columns == ("age",)
        assert a.indexable_constants == (20, 30)

    def test_nothing_indexable(self):
        a = analyze("name like '%x%'")
        assert a.signature.indexable.kind == NONE
        assert a.indexable_constants == ()
        assert a.residual is not None

    def test_disjunctive_clause_not_indexable(self):
        a = analyze("salary > 10 or dept = 'toys'")
        assert a.signature.indexable.kind == NONE

    def test_trivial_predicate(self):
        a = analyze_selection("emp", "insert", [])
        assert a.signature.text == "TRUE"
        assert a.signature.num_constants == 0
        assert a.signature.indexable.kind == NONE
        assert a.residual is None

    def test_residual_instantiation_matches(self):
        a = analyze("dept = 'toys' and salary > 123 and name like 'A%'")
        residual = a.residual.render()
        assert "123" in residual
        assert "'A%'" in residual
        assert "'toys'" not in residual  # indexable part excluded

    def test_full_expr_reconstruction(self):
        a = analyze("dept = 'toys' and salary > 123")
        full = a.full_expr()
        bindings = Bindings({"emp": {"dept": "toys", "salary": 200.0}})
        assert E.matches(full, bindings)
        bindings = Bindings({"emp": {"dept": "toys", "salary": 1.0}})
        assert not E.matches(full, bindings)


class TestConstantNumbering:
    def test_indexable_constants_numbered_first(self):
        a = analyze("salary > 99 and dept = 'toys'")
        sig = a.signature
        # dept equality is the indexable part: its constant must be #1
        assert sig.indexable.constant_numbers == (1,)
        assert a.constants[0] == "toys"
        assert a.constants[1] == 99

    def test_num_constants(self):
        a = analyze("a = 1 and b = 2 and c like 'x%'")
        assert a.signature.num_constants == 3


# -- property tests ----------------------------------------------------------

_atoms = st.sampled_from(
    [
        ("salary", ">", st.integers(0, 10**6)),
        ("salary", "<", st.integers(0, 10**6)),
        ("age", "=", st.integers(18, 70)),
        ("dept", "=", st.sampled_from(["a", "b", "c"])),
    ]
)


@st.composite
def predicates(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for _ in range(n):
        column, op, values = draw(_atoms)
        value = draw(values)
        rendered = f"'{value}'" if isinstance(value, str) else str(value)
        parts.append(f"{column} {op} {rendered}")
    return " and ".join(parts)


@settings(max_examples=80, deadline=None)
@given(predicates(), st.integers(0, 10**6), st.integers(18, 70),
       st.sampled_from(["a", "b", "c"]))
def test_signature_roundtrip_preserves_semantics(text, salary, age, dept):
    """Property: full_expr() (signature + constants) evaluates exactly like
    the original predicate on random rows."""
    original = parse(text)
    analyzed = analyze_selection("emp", "insert", to_cnf(original))
    row = {"salary": salary, "age": age, "dept": dept}
    bindings = Bindings({"emp": row})
    assert E.matches(analyzed.full_expr(), bindings) == E.matches(
        original, bindings
    )


@settings(max_examples=60, deadline=None)
@given(predicates(), predicates())
def test_structural_equality_iff_same_signature(a_text, b_text):
    """Property: two predicates share a signature iff their constant-blinded
    canonical forms coincide."""
    a = analyze_selection("emp", "insert", to_cnf(parse(a_text)))
    b = analyze_selection("emp", "insert", to_cnf(parse(b_text)))
    same_structure = a.signature.text == b.signature.text
    assert (a.signature == b.signature) == same_structure
