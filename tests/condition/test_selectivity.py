"""Unit tests for the selectivity heuristics."""

import pytest

from repro.condition.cnf import to_cnf
from repro.condition.selectivity import (
    atom_selectivity,
    clause_selectivity,
    most_selective_index,
)
from repro.lang.exprparser import parse_expression_text as parse


def atom(text):
    return parse(text)


class TestAtomSelectivity:
    def test_equality_most_selective(self):
        kinds = [
            atom("a = 1"),
            atom("a between 1 and 2"),
            atom("a like 'x%'"),
            atom("a > 1"),
            atom("a like '%x%'"),
            atom("a <> 1"),
        ]
        values = [atom_selectivity(k) for k in kinds]
        assert values == sorted(values)

    def test_in_scales_with_items(self):
        small = atom_selectivity(atom("a in (1)"))
        large = atom_selectivity(atom("a in (1,2,3,4)"))
        assert small < large

    def test_negation_complements(self):
        sel = atom_selectivity(atom("a between 1 and 2"))
        neg = atom_selectivity(atom("a not between 1 and 2"))
        assert abs((sel + neg) - 1.0) < 1e-9

    def test_is_null(self):
        assert atom_selectivity(atom("a is null")) < atom_selectivity(
            atom("a is not null")
        )

    def test_unknown_defaults(self):
        assert atom_selectivity(atom("f(a)")) == 0.5


class TestClauseSelectivity:
    def test_disjunction_less_selective(self):
        single = to_cnf(parse("a = 1"))[0]
        double = to_cnf(parse("a = 1 or b = 2"))[0]
        assert clause_selectivity(single) < clause_selectivity(double)

    def test_most_selective_index(self):
        clauses = tuple(to_cnf(parse("a > 1 and b = 2 and c like '%x%'")))
        # clause with b = 2 wins
        best = most_selective_index(clauses)
        assert "b" in clauses[best][0].render()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            most_selective_index(())
