"""Unit tests for conjunct grouping and the trigger condition graph."""

import pytest

from repro.errors import ConditionError
from repro.condition.classify import (
    build_condition_graph,
    resolve_unqualified,
    tuple_variables_of,
)
from repro.lang import ast
from repro.lang.exprparser import parse_expression_text as parse


class TestTupleVariables:
    def test_qualified(self):
        assert tuple_variables_of(parse("a.x = 1 and b.y = 2")) == {"a", "b"}

    def test_unqualified_ignored(self):
        assert tuple_variables_of(parse("x = 1")) == set()

    def test_unknown_tvar_rejected(self):
        with pytest.raises(ConditionError):
            tuple_variables_of(parse("z.x = 1"), known={"a", "b"})

    def test_params_counted(self):
        assert tuple_variables_of(parse(":NEW.emp.salary > 1")) == {"emp"}


class TestResolveUnqualified:
    COLS = {"e": ("name", "salary"), "d": ("dname", "budget")}

    def test_resolves_unique(self):
        expr = resolve_unqualified(parse("salary > 1 and budget < 2"), self.COLS)
        assert tuple_variables_of(expr) == {"e", "d"}

    def test_ambiguous_rejected(self):
        cols = {"a": ("x",), "b": ("x",)}
        with pytest.raises(ConditionError):
            resolve_unqualified(parse("x = 1"), cols)

    def test_unknown_rejected(self):
        with pytest.raises(ConditionError):
            resolve_unqualified(parse("bogus = 1"), self.COLS)

    def test_validates_qualified(self):
        with pytest.raises(ConditionError):
            resolve_unqualified(parse("e.bogus = 1"), self.COLS)
        with pytest.raises(ConditionError):
            resolve_unqualified(parse("zz.name = 1"), self.COLS)

    def test_keeps_valid_qualified(self):
        expr = resolve_unqualified(parse("e.salary > 1"), self.COLS)
        assert expr == parse("e.salary > 1")


class TestConditionGraph:
    def test_iris_example(self):
        when = parse("s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno")
        graph = build_condition_graph(["s", "h", "r"], when)
        assert set(graph.nodes) == {"s"}
        assert graph.selection_expr("s").render() == "(s.name = 'Iris')"
        assert graph.join_for("s", "r")
        assert graph.join_for("r", "h")
        assert not graph.join_for("s", "h")
        assert graph.neighbors("r") == ["h", "s"]
        assert graph.is_connected()

    def test_selection_only(self):
        graph = build_condition_graph(["e"], parse("e.salary > 10"))
        assert graph.selection_for("e")
        assert not graph.edges
        assert graph.is_connected()

    def test_no_condition(self):
        graph = build_condition_graph(["e"], None)
        assert graph.selection_for("e") == []
        assert graph.selection_expr("e") is None

    def test_trivial_goes_to_catch_all(self):
        graph = build_condition_graph(["e"], parse("1 = 1 and e.x = 2"))
        assert len(graph.catch_all) == 1
        assert len(graph.selection_for("e")) == 1

    def test_hyper_join_goes_to_catch_all(self):
        when = parse("a.x + b.y = c.z")
        graph = build_condition_graph(["a", "b", "c"], when)
        assert len(graph.catch_all) == 1
        assert not graph.edges

    def test_disconnected_detected(self):
        when = parse("a.x = b.y")
        graph = build_condition_graph(["a", "b", "c"], when)
        assert not graph.is_connected()

    def test_mixed_clause_classification(self):
        when = parse(
            "e.salary > 10 and e.dept = d.dname and d.budget < 5 and 2 > 1"
        )
        graph = build_condition_graph(["e", "d"], when)
        assert len(graph.selection_for("e")) == 1
        assert len(graph.selection_for("d")) == 1
        assert len(graph.join_for("e", "d")) == 1
        assert len(graph.catch_all) == 1

    def test_disjunction_spanning_two_tvars_is_join(self):
        when = parse("a.x = 1 or b.y = 2")
        graph = build_condition_graph(["a", "b"], when)
        assert len(graph.join_for("a", "b")) == 1
        assert not graph.nodes
