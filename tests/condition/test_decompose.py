"""Unit tests for tagged-execution disjunct decomposition and the
cost-aware conjunct choice (§5.2)."""

from repro.condition.cnf import to_cnf
from repro.condition.selectivity import (
    KIND_PROBE_RANK,
    UNINDEXABLE_RANK,
    conjunct_cost_key,
)
from repro.condition.signature import (
    EQUALITY,
    NONE,
    analyze_selection,
    decompose_selection,
)
from repro.lang.exprparser import parse_expression_text as parse


def arms_of(text, operation="insert"):
    return decompose_selection("emp", operation, to_cnf(parse(text)))


class TestConjunctCostKey:
    def test_equality_beats_everything(self):
        assert conjunct_cost_key("equality", 0.9) < conjunct_cost_key(
            "range", 0.0001
        )

    def test_rank_order_follows_probe_cost(self):
        ranks = [
            KIND_PROBE_RANK[k]
            for k in ("equality", "set", "interval", "range")
        ]
        assert ranks == sorted(ranks)

    def test_unindexable_sorts_last(self):
        assert conjunct_cost_key("none", 0.0) > conjunct_cost_key(
            "range", 1.0
        )
        assert conjunct_cost_key("none", 0.5)[0] == UNINDEXABLE_RANK

    def test_selectivity_breaks_ties_within_kind(self):
        assert conjunct_cost_key("equality", 0.1) < conjunct_cost_key(
            "equality", 0.2
        )


class TestCostAwareConjunctChoice:
    def test_equality_chosen_over_more_selective_range(self):
        # Raw selectivity would pick the range atom; probe cost picks the
        # equality atom (an index lookup beats a range scan §5.2).
        analyzed = analyze_selection(
            "emp", "insert", to_cnf(parse("dept = 'x' and salary > 10"))
        )
        assert analyzed.signature.indexable.kind == EQUALITY


class TestDecomposeSelection:
    def test_indexable_predicate_is_not_decomposed(self):
        arms = arms_of("dept = 'x' or salary > 10")
        # the clause has an unindexable shape overall only when every atom
        # is checked; here the baseline is NONE so it decomposes — contrast
        # with a conjunction that is already indexable:
        arms_conj = arms_of("(dept = 'x' or salary > 10) and name = 'b'")
        assert len(arms_conj) == 1
        assert arms_conj[0].arm_of is None
        assert arms_conj[0].analyzed.signature.indexable.kind == EQUALITY
        assert len(arms) == 2

    def test_two_equality_arms(self):
        arms = arms_of("dept = 'toys' or name = 'bob'")
        assert [a.arm_of for a in arms] == [0, 0]
        kinds = [a.analyzed.signature.indexable.kind for a in arms]
        assert kinds == [EQUALITY, EQUALITY]
        consts = sorted(a.analyzed.indexable_constants for a in arms)
        assert consts == [("bob",), ("toys",)]

    def test_mixed_kind_arms(self):
        arms = arms_of("dept = 'toys' or salary > 100")
        kinds = sorted(a.analyzed.signature.indexable.kind for a in arms)
        assert kinds == ["equality", "range"]

    def test_residual_preserved_in_each_arm(self):
        arms = arms_of("(dept = 'a' or name = 'b') and salary like '%x%'")
        assert len(arms) == 2
        for arm in arms:
            assert arm.analyzed.signature.residual_template is not None

    def test_unindexable_atom_blocks_decomposition(self):
        # `name like ...` cannot be indexed, so the whole clause stays one
        # residual-scanned signature.
        arms = arms_of("dept = 'a' or name like '%x%'")
        assert len(arms) == 1
        assert arms[0].arm_of is None
        assert arms[0].analyzed.signature.indexable.kind == NONE

    def test_too_many_arms_blocks_decomposition(self):
        text = " or ".join(f"dept = 'd{i}'" for i in range(20))
        arms = decompose_selection(
            "emp", "insert", to_cnf(parse(text)), max_arms=16
        )
        assert len(arms) == 1
        assert arms[0].arm_of is None

    def test_at_most_one_clause_decomposed(self):
        arms = arms_of(
            "(dept = 'a' or dept = 'b') and (name = 'x' or name = 'y')"
        )
        assert len(arms) == 2
        chosen = {a.arm_of for a in arms}
        assert len(chosen) == 1
        # the un-chosen disjunction survives in each arm's residual
        for arm in arms:
            assert arm.analyzed.signature.residual_template is not None

    def test_arm_signatures_are_interned_per_shape(self):
        a = arms_of("dept = 'a' or name = 'b'")
        b = arms_of("dept = 'zz' or name = 'qq'")
        sigs_a = sorted(arm.analyzed.signature.text for arm in a)
        sigs_b = sorted(arm.analyzed.signature.text for arm in b)
        assert sigs_a == sigs_b  # constants generalized away
